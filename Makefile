# Development convenience targets.

PYTHON ?= python

.PHONY: install test test-slow coverage bench experiments report examples clean all

install:
	pip install -e .[test]

test:
	$(PYTHON) -m pytest tests/

test-slow:
	$(PYTHON) -m pytest tests/ -m slow --override-ini "addopts="

coverage:  # needs pytest-cov (pip install -e .[cov])
	$(PYTHON) -m pytest tests/ --cov=repro.network --cov=repro.faults \
		--cov-report=term-missing --cov-fail-under=85

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner --out results/

report:
	$(PYTHON) -m repro.experiments.runner --report results/report.txt

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

all: test bench experiments

clean:
	rm -rf results/ .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
