"""Benchmark regenerating Table 1 (raw MIPS, SIMD vs MIMD).

Runs the instruction-level micro engine: 16 PEs executing repeated
straight-line blocks from the Fetch Unit Queue and from main memory.
"""

from conftest import report

from repro.experiments import run_table1
from repro.machine import PrototypeConfig


def bench_table1(benchmark):
    result = benchmark.pedantic(
        run_table1, args=(PrototypeConfig.calibrated(),),
        rounds=2, iterations=1,
    )
    report(result)
    for _, simd, mimd, ratio in result.rows:
        assert simd > mimd
