"""Benchmark regenerating Figure 11 (efficiency vs problem size, p=4)."""

from conftest import report

from repro.core import DecouplingStudy
from repro.experiments import run_fig11


def bench_fig11(benchmark):
    def run():
        return run_fig11(DecouplingStudy())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    report(result)
    n, simd, smimd, mimd = result.rows[-1]
    assert simd > 1.0  # superlinear SIMD
    assert abs(smimd - 0.96) < 0.02
    assert abs(mimd - 0.87) < 0.02
