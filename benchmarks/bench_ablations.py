"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation switches one calibrated mechanism off (or sweeps it) and
reports how the paper's effects move — evidence that the reproduced
phenomena come from the modelled mechanisms, not incidental constants:

* **queue wait-state advantage** — removing it erases most of SIMD's
  superlinearity;
* **DRAM refresh** — a second-order contribution to the same effect;
* **multiplier entropy (b_max)** — moves the Figure 7 crossover;
* **status-poll cost** — moves the MIMD efficiency gap;
* **network byte latency** — moves everyone's communication, not the gap.
"""

import pytest

from repro.core import DecouplingStudy, find_crossover
from repro.machine import ExecutionMode, PrototypeConfig
from repro.memory import RefreshModel

BASE = PrototypeConfig.calibrated()


def _efficiency(cfg, mode, n=256, p=4, **study_kw):
    study = DecouplingStudy(cfg, **study_kw)
    return study.efficiency(mode, n, p, engine="macro")


def bench_ablation_queue_wait_states(benchmark):
    """SIMD superlinearity ablation: no fetch advantage, no refresh."""

    def run():
        base = _efficiency(BASE, ExecutionMode.SIMD)
        flat_cfg = BASE.with_overrides(
            ws_main=0, ws_queue=0, refresh=RefreshModel(250, 0)
        )
        flat = _efficiency(flat_cfg, ExecutionMode.SIMD)
        return base, flat

    base, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSIMD efficiency n=256: calibrated={base:.3f}, "
          f"no-fetch-advantage={flat:.3f}")
    # Without the fetch advantage, superlinearity shrinks substantially
    # (control overlap alone keeps it slightly above the async modes).
    assert flat < base


def bench_ablation_multiplier_entropy(benchmark):
    """Crossover vs b_max: more multiplier entropy, earlier crossover."""

    def run():
        points = []
        for b_max in (16, 64, 256, 65536):
            study = DecouplingStudy(BASE, b_max=b_max)
            res = find_crossover(study, n=64, p=4, max_multiplies=60)
            points.append((b_max, res.crossover))
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncrossover vs b_max: " + ", ".join(
        f"{bm}->{x:.1f}" for bm, x in points))
    xs = [x for _, x in points]
    assert xs[-1] < xs[0]  # full-width data decouples earliest


def bench_ablation_status_poll_cost(benchmark):
    """MIMD-vs-S/MIMD efficiency gap vs the calibrated poll cost."""

    def run():
        gaps = []
        for ws_status in (1, 104):
            cfg = BASE.with_overrides(ws_status=ws_status)
            smimd = _efficiency(cfg, ExecutionMode.SMIMD)
            mimd = _efficiency(cfg, ExecutionMode.MIMD)
            gaps.append((ws_status, smimd - mimd))
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nS/MIMD−MIMD efficiency gap: " + ", ".join(
        f"ws_status={w}: {g:.3f}" for w, g in gaps))
    assert gaps[1][1] > gaps[0][1]


def bench_ablation_network_latency(benchmark):
    """Byte latency hits all parallel modes' communication, roughly alike."""

    def run():
        out = {}
        for latency in (24, 200):
            cfg = BASE.with_overrides(net_byte_latency=latency)
            study = DecouplingStudy(cfg)
            out[latency] = {
                mode.value: study.run(mode, 64, 4, engine="macro").cycles
                for mode in (ExecutionMode.SIMD, ExecutionMode.SMIMD)
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    slow, fast = out[200], out[24]
    print(f"\nn=64 cycles at latency 24 vs 200: {fast} vs {slow}")
    assert slow["simd"] > fast["simd"]
    assert slow["smimd"] > fast["smimd"]


def bench_ablation_refresh(benchmark):
    """DRAM refresh contributes a measurable slice of the SIMD advantage."""

    def run():
        noref = BASE.with_overrides(refresh=RefreshModel(250, 0))
        return (
            _efficiency(BASE, ExecutionMode.SIMD),
            _efficiency(noref, ExecutionMode.SIMD),
        )

    with_ref, without_ref = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSIMD efficiency with/without refresh: {with_ref:.4f} / "
          f"{without_ref:.4f}")
    assert with_ref >= without_ref
