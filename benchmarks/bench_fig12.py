"""Benchmark regenerating Figure 12 (efficiency vs number of PEs, n=64)."""

from conftest import report

from repro.core import DecouplingStudy
from repro.experiments import run_fig12


def bench_fig12(benchmark):
    def run():
        return run_fig12(DecouplingStudy())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    report(result)
    for col in (1, 2, 3):
        vals = [row[col] for row in result.rows]
        assert vals == sorted(vals, reverse=True)  # efficiency falls with p
