"""Benchmark regenerating Figure 7 (the decoupling crossover, n=64, p=4)."""

from conftest import report

from repro.core import DecouplingStudy
from repro.experiments import run_fig7


def bench_fig7(benchmark):
    def run():
        return run_fig7(DecouplingStudy())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    report(result)
    assert result.rows[0][3] == "SIMD"
    assert result.rows[-1][3] == "S/MIMD"
