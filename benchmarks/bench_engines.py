"""Engine benchmarks: how fast do the micro and macro engines run, and
how much simulated work does each second of benchmarking buy?

Not a paper exhibit, but the number that justifies the two-engine design:
the micro engine simulates ~10⁵ instructions/s, the macro engine
evaluates a full n=256 configuration in milliseconds.
"""

import numpy as np

from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.programs import build_matmul, generate_matrices
from repro.programs.loader import run_matmul
from repro.timing_model import predict_matmul

CFG = PrototypeConfig.calibrated()


def bench_micro_engine_simd_n16(benchmark):
    a, b = generate_matrices(16)
    bundle = build_matmul(
        ExecutionMode.SIMD, 16, 4, device_symbols=CFG.device_symbols()
    )

    def run():
        machine = PASMMachine(CFG, partition_size=4)
        return run_matmul(machine, bundle, a, b)

    run_result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert run_result.result.instructions > 20_000


def bench_micro_engine_mimd_n16(benchmark):
    a, b = generate_matrices(16)
    bundle = build_matmul(
        ExecutionMode.MIMD, 16, 4, device_symbols=CFG.device_symbols()
    )

    def run():
        machine = PASMMachine(CFG, partition_size=4)
        return run_matmul(machine, bundle, a, b)

    benchmark.pedantic(run, rounds=2, iterations=1)


def bench_macro_engine_n256(benchmark):
    _, b = generate_matrices(256)

    def run():
        return predict_matmul(ExecutionMode.SIMD, CFG, 256, 16, b=b)

    pred = benchmark(run)
    assert np.isfinite(pred.cycles)
