"""Engine benchmarks: how fast do the micro and macro engines run, and
how much simulated work does each second of benchmarking buy?

Not a paper exhibit, but the number that justifies the two-engine design:
the micro engine simulates ~10⁵ instructions/s, the macro engine
evaluates a full n=256 configuration in milliseconds.

``bench_micro_fastpath_speedup`` additionally measures the local-time
fast path against the pure-event reference schedule (same interpreter,
``fast_path=False``) on the micro-engine matmul workload, asserts the
cycle counts are identical, and records the wall times into
``BENCH_micro.json`` at the repo root — the file the CI perf-smoke job
compares against.  ``bench_micro_lockstep_speedup`` does the same for
the batched lockstep engine against the local-time fast path
(``vs_fastpath`` section).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.programs import build_matmul, generate_matrices
from repro.programs.loader import run_matmul
from repro.timing_model import predict_matmul

CFG = PrototypeConfig.calibrated()
MICRO_OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_micro.json"


def bench_micro_engine_simd_n16(benchmark):
    a, b = generate_matrices(16)
    bundle = build_matmul(
        ExecutionMode.SIMD, 16, 4, device_symbols=CFG.device_symbols()
    )

    def run():
        machine = PASMMachine(CFG, partition_size=4)
        return run_matmul(machine, bundle, a, b)

    run_result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert run_result.result.instructions > 20_000


def bench_micro_engine_mimd_n16(benchmark):
    a, b = generate_matrices(16)
    bundle = build_matmul(
        ExecutionMode.MIMD, 16, 4, device_symbols=CFG.device_symbols()
    )

    def run():
        machine = PASMMachine(CFG, partition_size=4)
        return run_matmul(machine, bundle, a, b)

    benchmark.pedantic(run, rounds=2, iterations=1)


def bench_micro_engine_serial_n16(benchmark):
    a, b = generate_matrices(16)
    bundle = build_matmul(
        ExecutionMode.SERIAL, 16, 1, device_symbols=CFG.device_symbols()
    )

    def run():
        machine = PASMMachine(CFG, partition_size=1)
        return run_matmul(machine, bundle, a, b)

    run_result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert run_result.result.instructions > 15_000


def _micro_run(mode, p, fast_path, lockstep=None, m=0, vectorized=None):
    """One micro-engine matmul; returns (cycles, process-CPU seconds)."""
    bundle = build_matmul(mode, 16, p, added_multiplies=m,
                          device_symbols=CFG.device_symbols())
    a, b = generate_matrices(16)
    machine = PASMMachine(CFG, partition_size=p, fast_path=fast_path,
                          lockstep=lockstep, vectorized=vectorized)
    t0 = time.process_time()
    run = run_matmul(machine, bundle, a, b)
    return run.result.cycles, time.process_time() - t0


def _merge_bench_section(key, section):
    """Rewrite BENCH_micro.json with ``section`` under ``key``, keeping
    every other recorded section (the benches each own one section)."""
    out = {
        "workload": "16x16 matmul on the instruction-level (micro) engine, "
                    "calibrated prototype config",
        "cpus": os.cpu_count(),
    }
    if MICRO_OUT_PATH.exists():
        old = json.loads(MICRO_OUT_PATH.read_text())
        for other in ("vs_pure", "vs_seed", "vs_fastpath"):
            if other != key and other in old:
                out[other] = old[other]
    out[key] = section
    MICRO_OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")


def bench_micro_fastpath_speedup(benchmark):
    """Fast path vs pure-event schedule per mode; refresh BENCH_micro.json.

    The recorded ``vs_pure`` section isolates what local-time execution
    buys over pushing every charge through the event queue, with the
    interpreter held constant; the ``vs_seed`` section (measured once
    against the pre-fast-path interpreter and preserved across
    re-recordings) is the end-to-end speed-up of the whole change.
    """
    modes = [(ExecutionMode.SERIAL, 1), (ExecutionMode.SIMD, 4),
             (ExecutionMode.MIMD, 4)]
    record: dict[str, dict] = {}
    for mode, p in modes:
        pure_cycles = fast_cycles = None
        pure_best = fast_best = float("inf")
        for _ in range(2):
            pure_cycles, t = _micro_run(mode, p, fast_path=False)
            pure_best = min(pure_best, t)
            fast_cycles, t = _micro_run(mode, p, fast_path=True,
                                        lockstep=False)
            fast_best = min(fast_best, t)
        assert fast_cycles == pure_cycles, (
            f"{mode.name}: fast path diverged "
            f"({fast_cycles} != {pure_cycles} cycles)")
        record[mode.name] = {
            "cycles": pure_cycles,
            "pure_events_s": round(pure_best, 3),
            "fast_s": round(fast_best, 3),
            "speedup": round(pure_best / fast_best, 2),
        }

    def rerun_serial():
        return _micro_run(ExecutionMode.SERIAL, 1, fast_path=True,
                          lockstep=False)

    benchmark.pedantic(rerun_serial, rounds=2, iterations=1)

    _merge_bench_section("vs_pure", record)
    print()
    for name, row in record.items():
        print(f"{name:7s} pure-events={row['pure_events_s']}s "
              f"fast={row['fast_s']}s speedup={row['speedup']}x")
    print(f"-> {MICRO_OUT_PATH.name}")


def bench_micro_lockstep_speedup(benchmark):
    """Lockstep batching vs the plain local-time fast path; record the
    ``vs_fastpath`` section of ``BENCH_micro.json``.

    SIMD is where lockstep earns its keep — the broadcast rendezvous is
    computed (max over stamped arrivals) instead of discovered by event
    interleaving, and the mask-completing PE streams through whole
    blocks without touching the heap.  The added-multiplies row widens
    per-instruction timing variance (the Figure 7 knob), which lockstep
    absorbs at no extra cost while the event engines pay for every
    re-rendezvous.  SERIAL (single PE, no rendezvous to batch) and MIMD
    (chained superinstructions either way) are included to show the
    lockstep bookkeeping does not tax them.
    """
    rows = [("SERIAL", ExecutionMode.SERIAL, 1, 0),
            ("SIMD", ExecutionMode.SIMD, 4, 0),
            ("SIMD_m5", ExecutionMode.SIMD, 4, 5),
            ("SIMD_p8", ExecutionMode.SIMD, 8, 0),
            ("MIMD", ExecutionMode.MIMD, 4, 0)]
    record: dict[str, dict] = {
        "note": "Lockstep engine (REPRO_LOCKSTEP, default on) vs the "
                "local-time fast path alone, best-of-3 process-CPU time. "
                "The issue's aspirational 3x SIMD target was not reached: "
                "profiling shows per-instruction execution (decode "
                "dispatch, handlers, timing arithmetic) is shared by both "
                "engines and dominates; lockstep removes only the "
                "rendezvous/event machinery (~30% of the local-time "
                "SIMD run), so its ratio grows with timing variance "
                "(SIMD_m5) and with problem size, not without bound. "
                "vec_speedup adds the vectorized tier (REPRO_VECTORIZED, "
                "decode-once broadcast batches over numpy state) on the "
                "same workload: it removes per-PE interpretation too, "
                "but the per-word batch bookkeeping is amortized over "
                "only p lanes, so at the prototype-sized rows recorded "
                "here (p=4..8) it stays under the 2x target and under "
                "scalar lockstep; the ratio grows with the partition "
                "size — 1.6x vs fastpath and ahead of scalar lockstep "
                "at p=64 on a scaled 64-PE config (n=64 matmul).",
    }
    for name, mode, p, m in rows:
        fast_cycles = lock_cycles = vec_cycles = None
        fast_best = lock_best = vec_best = float("inf")
        vec = mode is ExecutionMode.SIMD
        for _ in range(3):
            fast_cycles, t = _micro_run(mode, p, fast_path=True,
                                        lockstep=False, m=m)
            fast_best = min(fast_best, t)
            lock_cycles, t = _micro_run(mode, p, fast_path=True,
                                        lockstep=True, vectorized=False,
                                        m=m)
            lock_best = min(lock_best, t)
            if vec:
                vec_cycles, t = _micro_run(mode, p, fast_path=True,
                                           lockstep=True, vectorized=True,
                                           m=m)
                vec_best = min(vec_best, t)
        assert lock_cycles == fast_cycles, (
            f"{name}: lockstep diverged "
            f"({lock_cycles} != {fast_cycles} cycles)")
        record[name] = {
            "cycles": lock_cycles,
            "fastpath_s": round(fast_best, 3),
            "lockstep_s": round(lock_best, 3),
            "speedup": round(fast_best / lock_best, 2),
        }
        if vec:
            assert vec_cycles == fast_cycles, (
                f"{name}: vectorized diverged "
                f"({vec_cycles} != {fast_cycles} cycles)")
            record[name]["vectorized_s"] = round(vec_best, 3)
            record[name]["vec_speedup"] = round(fast_best / vec_best, 2)

    def rerun_simd():
        return _micro_run(ExecutionMode.SIMD, 4, fast_path=True,
                          lockstep=True, vectorized=True)

    benchmark.pedantic(rerun_simd, rounds=2, iterations=1)

    _merge_bench_section("vs_fastpath", record)
    print()
    for name, row in record.items():
        if name == "note":
            continue
        vec = (f" vectorized={row['vectorized_s']}s "
               f"vec_speedup={row['vec_speedup']}x"
               if "vec_speedup" in row else "")
        print(f"{name:8s} fastpath={row['fastpath_s']}s "
              f"lockstep={row['lockstep_s']}s speedup={row['speedup']}x"
              f"{vec}")
    print(f"-> {MICRO_OUT_PATH.name}")


def bench_macro_engine_n256(benchmark):
    _, b = generate_matrices(256)

    def run():
        return predict_matmul(ExecutionMode.SIMD, CFG, 256, 16, b=b)

    pred = benchmark(run)
    assert np.isfinite(pred.cycles)
