"""Engine benchmarks: how fast do the micro and macro engines run, and
how much simulated work does each second of benchmarking buy?

Not a paper exhibit, but the number that justifies the two-engine design:
the micro engine simulates ~10⁵ instructions/s, the macro engine
evaluates a full n=256 configuration in milliseconds.

``bench_micro_fastpath_speedup`` additionally measures the local-time
fast path against the pure-event reference schedule (same interpreter,
``fast_path=False``) on the micro-engine matmul workload, asserts the
cycle counts are identical, and records the wall times into
``BENCH_micro.json`` at the repo root — the file the CI perf-smoke job
compares against.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.programs import build_matmul, generate_matrices
from repro.programs.loader import run_matmul
from repro.timing_model import predict_matmul

CFG = PrototypeConfig.calibrated()
MICRO_OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_micro.json"


def bench_micro_engine_simd_n16(benchmark):
    a, b = generate_matrices(16)
    bundle = build_matmul(
        ExecutionMode.SIMD, 16, 4, device_symbols=CFG.device_symbols()
    )

    def run():
        machine = PASMMachine(CFG, partition_size=4)
        return run_matmul(machine, bundle, a, b)

    run_result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert run_result.result.instructions > 20_000


def bench_micro_engine_mimd_n16(benchmark):
    a, b = generate_matrices(16)
    bundle = build_matmul(
        ExecutionMode.MIMD, 16, 4, device_symbols=CFG.device_symbols()
    )

    def run():
        machine = PASMMachine(CFG, partition_size=4)
        return run_matmul(machine, bundle, a, b)

    benchmark.pedantic(run, rounds=2, iterations=1)


def bench_micro_engine_serial_n16(benchmark):
    a, b = generate_matrices(16)
    bundle = build_matmul(
        ExecutionMode.SERIAL, 16, 1, device_symbols=CFG.device_symbols()
    )

    def run():
        machine = PASMMachine(CFG, partition_size=1)
        return run_matmul(machine, bundle, a, b)

    run_result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert run_result.result.instructions > 15_000


def _micro_run(mode, p, fast_path):
    """One micro-engine matmul; returns (cycles, process-CPU seconds)."""
    bundle = build_matmul(mode, 16, p, device_symbols=CFG.device_symbols())
    a, b = generate_matrices(16)
    machine = PASMMachine(CFG, partition_size=p, fast_path=fast_path)
    t0 = time.process_time()
    run = run_matmul(machine, bundle, a, b)
    return run.result.cycles, time.process_time() - t0


def bench_micro_fastpath_speedup(benchmark):
    """Fast path vs pure-event schedule per mode; refresh BENCH_micro.json.

    The recorded ``vs_pure`` section isolates what local-time execution
    buys over pushing every charge through the event queue, with the
    interpreter held constant; the ``vs_seed`` section (measured once
    against the pre-fast-path interpreter and preserved across
    re-recordings) is the end-to-end speed-up of the whole change.
    """
    modes = [(ExecutionMode.SERIAL, 1), (ExecutionMode.SIMD, 4),
             (ExecutionMode.MIMD, 4)]
    record: dict[str, dict] = {}
    for mode, p in modes:
        pure_cycles = fast_cycles = None
        pure_best = fast_best = float("inf")
        for _ in range(2):
            pure_cycles, t = _micro_run(mode, p, fast_path=False)
            pure_best = min(pure_best, t)
            fast_cycles, t = _micro_run(mode, p, fast_path=True)
            fast_best = min(fast_best, t)
        assert fast_cycles == pure_cycles, (
            f"{mode.name}: fast path diverged "
            f"({fast_cycles} != {pure_cycles} cycles)")
        record[mode.name] = {
            "cycles": pure_cycles,
            "pure_events_s": round(pure_best, 3),
            "fast_s": round(fast_best, 3),
            "speedup": round(pure_best / fast_best, 2),
        }

    def rerun_serial():
        return _micro_run(ExecutionMode.SERIAL, 1, fast_path=True)

    benchmark.pedantic(rerun_serial, rounds=2, iterations=1)

    out = {
        "workload": "16x16 matmul on the instruction-level (micro) engine, "
                    "calibrated prototype config",
        "cpus": os.cpu_count(),
        "vs_pure": record,
    }
    if MICRO_OUT_PATH.exists():  # keep the one-off seed baseline section
        old = json.loads(MICRO_OUT_PATH.read_text())
        if "vs_seed" in old:
            out["vs_seed"] = old["vs_seed"]
    MICRO_OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print()
    for name, row in record.items():
        print(f"{name:7s} pure-events={row['pure_events_s']}s "
              f"fast={row['fast_s']}s speedup={row['speedup']}x")
    print(f"-> {MICRO_OUT_PATH.name}")


def bench_macro_engine_n256(benchmark):
    _, b = generate_matrices(256)

    def run():
        return predict_matmul(ExecutionMode.SIMD, CFG, 256, 16, b=b)

    pred = benchmark(run)
    assert np.isfinite(pred.cycles)
