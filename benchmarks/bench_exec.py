"""Microbenchmark for the execution engine's pooled scheduler.

Runs one batch of instruction-level (micro-engine) jobs — the expensive
kind the pool exists for — once serially and once through the process
pool, asserts the payloads are byte-identical, and records the measured
speed-up into ``BENCH_exec.json`` at the repo root.

The recorded ``cpus`` field matters when reading the number: on a
single-core machine the pool is pure oversubscription and the "speed-up"
is honestly below 1.  Set ``REPRO_BENCH_JOBS`` to change the pool width
(default: one worker per available core, like the library default).
"""

import json
import os
import time
from pathlib import Path

from repro.exec import ExecutionEngine, matmul_spec
from repro.machine import ExecutionMode
from repro.perf import percentile

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_exec.json"
POOL_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", 0)
                or (os.cpu_count() or 1))

#: Independent micro-engine jobs, each a few hundred ms of simulation.
SPECS = (
    [matmul_spec(mode, 16, p, engine="micro")
     for mode in (ExecutionMode.SIMD, ExecutionMode.SMIMD, ExecutionMode.MIMD)
     for p in (4, 8, 16)]
    + [matmul_spec(ExecutionMode.SERIAL, 16, 1, engine="micro")]
)


def bench_exec_pool_speedup(benchmark):
    serial_engine = ExecutionEngine(jobs=1)
    t0 = time.perf_counter()
    serial_payloads = serial_engine.run(SPECS)
    t_serial = time.perf_counter() - t0
    walls = [w for b in serial_engine.stats.by_bucket.values()
             for w in b.walls]

    best_pool = [float("inf")]

    def pooled():
        start = time.perf_counter()
        payloads = ExecutionEngine(jobs=POOL_JOBS).run(SPECS)
        best_pool[0] = min(best_pool[0], time.perf_counter() - start)
        return payloads

    pooled_payloads = benchmark.pedantic(pooled, rounds=2, iterations=1)
    assert (json.dumps(pooled_payloads, sort_keys=True)
            == json.dumps(serial_payloads, sort_keys=True))

    record = {
        "job_count": len(SPECS),
        "jobs_pool": POOL_JOBS,
        "cpus": os.cpu_count(),
        "t_serial_s": round(t_serial, 3),
        "t_pool_s": round(best_pool[0], 3),
        "speedup": round(t_serial / best_pool[0], 3),
        # Per-job wall-time distribution of the serial pass: the pool's
        # best case is bounded by the p100 job, not the mean.
        "job_wall_p50_s": round(percentile(walls, 50), 3),
        "job_wall_p95_s": round(percentile(walls, 95), 3),
        "job_wall_max_s": round(max(walls, default=0.0), 3),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(f"pool speed-up vs --jobs 1: {record['speedup']}x "
          f"({len(SPECS)} micro jobs, {POOL_JOBS} workers, "
          f"{record['cpus']} cpu(s)) -> {OUT_PATH.name}")


def bench_exec_warm_cache(benchmark, tmp_path_factory):
    """A warm cache turns the whole batch into disk reads."""
    from repro.exec import ResultCache

    root = tmp_path_factory.mktemp("bench-exec-cache")
    ExecutionEngine(jobs=1, cache=ResultCache(root, version="bench")).run(SPECS)

    def warm():
        engine = ExecutionEngine(
            jobs=1, cache=ResultCache(root, version="bench"))
        engine.run(SPECS)
        return engine.stats

    stats = benchmark(warm)
    assert stats.computed == 0
    assert stats.cache_hits == len(SPECS)
