#!/usr/bin/env python
"""Open-loop load generator for the serving layer — single host or fleet.

Single-instance mode embeds a full service
(:class:`repro.serve.ServerThread`) on an ephemeral port and drives it
with ``ServeClient`` the way real traffic would:

* **interactive** — distinct jobs arrive at a fixed rate regardless of
  completions (open loop, so queueing delay is *measured*, not hidden
  by back-to-back submission), each long-polled to completion;
* **dedup** — K clients concurrently request one identical spec; the
  single-flight contract says exactly one simulation runs;
* **warm** — the interactive set resubmitted; every answer must come
  from the memo/disk cache without touching the pool.

``--fleet N`` launches N real ``pasm-serve`` OS processes sharing one
content-addressed store plus a ``pasm-router`` front door, runs the
same open-loop workload through the router, and reports aggregate
throughput and latency against a single-instance baseline measured in
the same run with the same workload.  The fleet phases also assert the
fleet-wide contracts: one computation for K identical submissions
through the router, and a warm re-run served without recomputing.

Latency percentiles (p50/p95/p99, cold and warm separately),
throughput and dedup/cache hit rates are recorded into
``BENCH_serve.json`` under a ``quick``/``full``/``fleetN`` profile
key.  Correctness failures (wrong payloads, broken single-flight) exit
non-zero; a p95 latency drift beyond 25 % of the committed record only
warns — wall times do not transfer between machines — unless
``REPRO_PERF_STRICT=1``.

Usage::

    python benchmarks/bench_serve.py --quick
    python benchmarks/bench_serve.py            # full profile
    python benchmarks/bench_serve.py --fleet 4  # fleet vs baseline
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.exec import SimJobSpec  # noqa: E402
from repro.perf import percentile  # noqa: E402
from repro.serve import ServeClient, ServeConfig, ServerThread  # noqa: E402

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
REGRESSION_THRESHOLD = 0.25  #: fractional p95 drift vs the committed record

PROFILES = {
    "quick": {"unique_jobs": 24, "rate_hz": 60.0, "dedup_clients": 8,
              "pool_jobs": 2},
    "full": {"unique_jobs": 96, "rate_hz": 120.0, "dedup_clients": 32,
             "pool_jobs": 4},
}

#: The fleet workload: fixed-service-time jobs (50 ms holds on a pool
#: worker) arriving faster than one instance can serve them, so the
#: throughput ceiling — not the arrival rate — is what gets measured.
FLEET_KNOBS = {
    "unique_jobs": 48,
    "rate_hz": 400.0,
    "work_s": 0.05,
    "pool_jobs": 2,
    "dedup_clients": 40,
}


def _spec(value, seconds: float = 0.0) -> SimJobSpec:
    params = {"action": "sleep", "value": value, "seconds": seconds} \
        if seconds else {"action": "echo", "value": value}
    return SimJobSpec(program="_test", mode="serial", n=1, p=1,
                      engine="micro", params=tuple(sorted(params.items())))


def _metric(text: str, name: str) -> float:
    """Sum every series of one metric in a Prometheus text page."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith(name + "_"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def _run_open_loop(port, specs, rate_hz):
    """Submit specs at a fixed arrival rate; return per-job latencies."""
    interval = 1.0 / rate_hz
    latencies = []
    failures = []

    def one(item):
        i, spec = item
        client = ServeClient(port=port, max_retries=8,
                             backoff_base=0.02, backoff_cap=0.5, timeout=60)
        target = start + i * interval
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        t0 = time.perf_counter()
        payload = client.run(spec, timeout=120)
        latencies.append(time.perf_counter() - t0)
        if payload.get("value") != dict(spec.params)["value"]:
            failures.append((spec.params, payload))

    start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(min(64, len(specs))) as pool:
        list(pool.map(one, enumerate(specs)))
    wall = time.perf_counter() - start
    return latencies, wall, failures


def _pcts(latencies) -> dict:
    """p50/p95/p99/max of a latency sample, in milliseconds."""
    return {
        "p50_ms": round(1e3 * percentile(latencies, 50), 2),
        "p95_ms": round(1e3 * percentile(latencies, 95), 2),
        "p99_ms": round(1e3 * percentile(latencies, 99), 2),
        "max_ms": round(1e3 * max(latencies), 2),
    }


def run_profile(name: str) -> tuple[dict, list[str]]:
    knobs = PROFILES[name]
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        config = ServeConfig(port=0, jobs=knobs["pool_jobs"],
                             cache_dir=cache_dir, queue_limit=512)
        with ServerThread(config) as server:
            probe = ServeClient(port=server.port)

            # Phase 1: open-loop distinct jobs (cold) --------------------
            specs = [_spec(f"{name}-job-{i}")
                     for i in range(knobs["unique_jobs"])]
            latencies, wall, bad = _run_open_loop(
                server.port, specs, knobs["rate_hz"])
            if bad:
                failures.append(f"{len(bad)} wrong payload(s) in open loop")

            # Phase 2: dedup fan-in --------------------------------------
            before = _metric(probe.metrics(), "pasm_serve_computed_total")
            shared = _spec(f"{name}-shared", seconds=0.2)

            def fan_in(_):
                client = ServeClient(port=server.port, max_retries=8,
                                     timeout=60)
                return client.run(shared, timeout=60)

            with concurrent.futures.ThreadPoolExecutor(
                    knobs["dedup_clients"]) as pool:
                payloads = list(pool.map(fan_in,
                                         range(knobs["dedup_clients"])))
            if any(p != payloads[0] for p in payloads):
                failures.append("dedup fan-in payloads differ")
            text = probe.metrics()
            computed = _metric(text, "pasm_serve_computed_total") - before
            if computed != 1:
                failures.append(
                    f"single-flight broken: {computed:g} computations for "
                    f"{knobs['dedup_clients']} identical requests")
            dedup_rate = 1.0 - computed / knobs["dedup_clients"]

            # Phase 3: warm re-run of the open-loop set ------------------
            warm_before = _metric(probe.metrics(),
                                  "pasm_serve_computed_total")
            warm_lat, _, bad = _run_open_loop(server.port, specs,
                                              knobs["rate_hz"])
            if bad:
                failures.append(f"{len(bad)} wrong payload(s) in warm loop")
            warm_computed = _metric(probe.metrics(),
                                    "pasm_serve_computed_total") - warm_before
            if warm_computed != 0:
                failures.append(
                    f"warm re-run recomputed {warm_computed:g} job(s)")
            hit_ratio = _metric(probe.metrics(), "pasm_serve_cache_hit_ratio")

    cold = _pcts(latencies)
    warm = _pcts(warm_lat)
    record = {
        "pool_jobs": knobs["pool_jobs"],
        "cpus": os.cpu_count(),
        "unique_jobs": knobs["unique_jobs"],
        "rate_hz": knobs["rate_hz"],
        "dedup_clients": knobs["dedup_clients"],
        "wall_s": round(wall, 3),
        "throughput_hz": round(len(specs) / wall, 1),
        "latency_p50_ms": cold["p50_ms"],
        "latency_p95_ms": cold["p95_ms"],
        "latency_p99_ms": cold["p99_ms"],
        "latency_max_ms": cold["max_ms"],
        "warm_p50_ms": warm["p50_ms"],
        "warm_p95_ms": warm["p95_ms"],
        "warm_p99_ms": warm["p99_ms"],
        "cold_vs_warm_p50": round(cold["p50_ms"] / max(warm["p50_ms"],
                                                       1e-6), 2),
        "dedup_rate": round(dedup_rate, 4),
        "cache_hit_ratio": round(hit_ratio, 4),
    }
    return record, failures


# ---------------------------------------------------------------------------
# Fleet mode: N pasm-serve OS processes + pasm-router, one shared store
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(module: str, *args: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", module, *args],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_healthy(port: int, timeout_s: float = 120.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            ServeClient(port=port, max_retries=0, timeout=5).healthz()
            return
        except Exception:
            time.sleep(0.2)
    raise TimeoutError(f"port {port} not healthy after {timeout_s:g}s")


class Fleet:
    """N ``pasm-serve`` subprocesses + one ``pasm-router`` subprocess."""

    def __init__(self, n: int, store_dir: str, pool_jobs: int) -> None:
        self.ports = [_free_port() for _ in range(n)]
        self.procs = [
            _spawn("repro.serve.app",
                   "--port", str(port), "--jobs", str(pool_jobs),
                   "--cache-dir", store_dir, "--queue-limit", "512",
                   "--name", f"fleet-{i}")
            for i, port in enumerate(self.ports)
        ]
        self.router_port = _free_port()
        self.router = _spawn(
            "repro.serve.router", "--port", str(self.router_port),
            "--instance", ",".join(f"http://127.0.0.1:{p}"
                                   for p in self.ports),
        )

    def wait_ready(self) -> None:
        for port in self.ports:
            _wait_healthy(port)
        _wait_healthy(self.router_port)

    def stop(self) -> None:
        for proc in [self.router, *self.procs]:
            if proc.poll() is None:
                proc.terminate()
        for proc in [self.router, *self.procs]:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def run_fleet_profile(n: int) -> tuple[dict, list[str]]:
    knobs = FLEET_KNOBS
    failures: list[str] = []
    specs = [_spec(f"fleet-job-{i}", seconds=knobs["work_s"])
             for i in range(knobs["unique_jobs"])]

    # Baseline: one instance, same workload, driven directly ------------
    with tempfile.TemporaryDirectory(prefix="bench-base-") as base_dir:
        fleet = Fleet(1, base_dir, knobs["pool_jobs"])
        try:
            fleet.wait_ready()
            _, base_wall, bad = _run_open_loop(
                fleet.ports[0], specs, knobs["rate_hz"])
            if bad:
                failures.append(f"{len(bad)} wrong payload(s) in baseline")
        finally:
            fleet.stop()

    # The fleet: N instances behind the router, one shared store --------
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as store_dir:
        fleet = Fleet(n, store_dir, knobs["pool_jobs"])
        try:
            fleet.wait_ready()
            probe = ServeClient(port=fleet.router_port, timeout=60)

            cold_lat, wall, bad = _run_open_loop(
                fleet.router_port, specs, knobs["rate_hz"])
            if bad:
                failures.append(f"{len(bad)} wrong payload(s) via router")

            # Fleet-wide single flight: K clients, one computation.
            before = _metric(probe.metrics(), "pasm_serve_computed_total")
            shared = _spec("fleet-shared", seconds=0.2)

            def fan_in(_):
                client = ServeClient(port=fleet.router_port, max_retries=8,
                                     timeout=60)
                return client.run(shared, timeout=60)

            with concurrent.futures.ThreadPoolExecutor(
                    knobs["dedup_clients"]) as pool:
                payloads = list(pool.map(fan_in,
                                         range(knobs["dedup_clients"])))
            if any(p != payloads[0] for p in payloads):
                failures.append("fleet dedup fan-in payloads differ")
            computed = _metric(probe.metrics(),
                               "pasm_serve_computed_total") - before
            if computed != 1:
                failures.append(
                    f"fleet single-flight broken: {computed:g} computations "
                    f"for {knobs['dedup_clients']} identical requests")
            dedup_rate = 1.0 - computed / knobs["dedup_clients"]

            # Warm re-run through the router: the shared store and the
            # per-instance registries must serve everything.
            warm_before = _metric(probe.metrics(),
                                  "pasm_serve_computed_total")
            warm_lat, _, bad = _run_open_loop(
                fleet.router_port, specs, knobs["rate_hz"])
            if bad:
                failures.append(f"{len(bad)} wrong warm payload(s)")
            warm_computed = _metric(probe.metrics(),
                                    "pasm_serve_computed_total") - warm_before
            if warm_computed != 0:
                failures.append(
                    f"fleet warm re-run recomputed {warm_computed:g} job(s)")
        finally:
            fleet.stop()

    cold = _pcts(cold_lat)
    warm = _pcts(warm_lat)
    throughput = len(specs) / wall
    baseline = len(specs) / base_wall
    record = {
        "instances": n,
        "pool_jobs": knobs["pool_jobs"],
        "cpus": os.cpu_count(),
        "unique_jobs": knobs["unique_jobs"],
        "rate_hz": knobs["rate_hz"],
        "work_ms": round(1e3 * knobs["work_s"], 1),
        "dedup_clients": knobs["dedup_clients"],
        "wall_s": round(wall, 3),
        "throughput_hz": round(throughput, 1),
        "baseline_throughput_hz": round(baseline, 1),
        "speedup_vs_single": round(throughput / baseline, 2),
        "dedup_rate": round(dedup_rate, 4),
        "latency_p50_ms": cold["p50_ms"],
        "latency_p95_ms": cold["p95_ms"],
        "latency_p99_ms": cold["p99_ms"],
        "warm_p50_ms": warm["p50_ms"],
        "warm_p95_ms": warm["p95_ms"],
        "warm_p99_ms": warm["p99_ms"],
        "cold_vs_warm_p50": round(cold["p50_ms"] / max(warm["p50_ms"],
                                                       1e-6), 2),
    }
    return record, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop load benchmark of the pasm-serve layer.")
    parser.add_argument("--quick", action="store_true",
                        help="small profile for CI smoke (fewer jobs, "
                             "fewer clients)")
    parser.add_argument("--fleet", type=int, default=None, metavar="N",
                        help="benchmark N pasm-serve processes behind "
                             "pasm-router against a single-instance "
                             "baseline (same workload, same run)")
    parser.add_argument("--no-record", action="store_true",
                        help="measure and report only; leave "
                             "BENCH_serve.json untouched")
    args = parser.parse_args(argv)
    strict = os.environ.get("REPRO_PERF_STRICT", "") == "1"

    reference = (json.loads(BENCH_PATH.read_text())
                 if BENCH_PATH.exists() else {})

    if args.fleet is not None:
        if args.fleet < 2:
            parser.error("--fleet needs N >= 2")
        profile = f"fleet{args.fleet}"
        record, failures = run_fleet_profile(args.fleet)
        print(f"profile={profile} instances={record['instances']} "
              f"pool={record['pool_jobs']}/instance cpus={record['cpus']}")
        print(f"  baseline  : {record['baseline_throughput_hz']}/s "
              f"(1 instance, same workload)")
        print(f"  fleet     : {record['throughput_hz']}/s -> "
              f"{record['speedup_vs_single']}x, "
              f"p50 {record['latency_p50_ms']}ms, "
              f"p95 {record['latency_p95_ms']}ms, "
              f"p99 {record['latency_p99_ms']}ms")
        print(f"  dedup     : {record['dedup_clients']} clients through "
              f"the router -> rate {record['dedup_rate']:.2%}")
        print(f"  warm      : p50 {record['warm_p50_ms']}ms, "
              f"p95 {record['warm_p95_ms']}ms, "
              f"p99 {record['warm_p99_ms']}ms "
              f"(cold/warm p50 {record['cold_vs_warm_p50']}x)")
    else:
        profile = "quick" if args.quick else "full"
        record, failures = run_profile(profile)
        print(f"profile={profile} pool={record['pool_jobs']} "
              f"cpus={record['cpus']}")
        print(f"  open loop : {record['unique_jobs']} jobs @ "
              f"{record['rate_hz']:g}/s -> p50 {record['latency_p50_ms']}ms, "
              f"p95 {record['latency_p95_ms']}ms, "
              f"p99 {record['latency_p99_ms']}ms, "
              f"{record['throughput_hz']}/s served")
        print(f"  warm loop : p50 {record['warm_p50_ms']}ms, "
              f"p95 {record['warm_p95_ms']}ms, "
              f"p99 {record['warm_p99_ms']}ms "
              f"(cold/warm p50 {record['cold_vs_warm_p50']}x, "
              f"0 recomputed)")
        print(f"  dedup     : {record['dedup_clients']} clients -> "
              f"rate {record['dedup_rate']:.2%}, "
              f"service hit ratio {record['cache_hit_ratio']:.2%}")

    if failures:
        print("\nFAIL (correctness):")
        for f in failures:
            print(f"  {f}")
        return 1

    warned = False
    ref_p95 = reference.get(profile, {}).get("latency_p95_ms")
    if ref_p95:
        drift = record["latency_p95_ms"] / ref_p95 - 1.0
        verdict = "ok" if drift <= REGRESSION_THRESHOLD else "SLOW"
        print(f"  drift     : p95 {record['latency_p95_ms']}ms vs recorded "
              f"{ref_p95}ms ({drift:+.0%}) [{verdict}]")
        warned = drift > REGRESSION_THRESHOLD

    if not args.no_record:
        reference[profile] = record
        BENCH_PATH.write_text(json.dumps(reference, indent=2,
                                         sort_keys=True) + "\n")
        print(f"  recorded  -> {BENCH_PATH.name}")

    if warned:
        what = ("strict: failing" if strict
                else "warn-only; set REPRO_PERF_STRICT=1 to fail")
        print(f"\np95 latency drifted beyond "
              f"{REGRESSION_THRESHOLD:.0%} ({what})")
        return 1 if strict else 0
    print("\nserve bench: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
