"""Benchmarks regenerating Figures 8, 9 and 10 (component breakdowns)."""

import pytest
from conftest import report

from repro.core import DecouplingStudy
from repro.experiments import run_breakdown_figure


@pytest.mark.parametrize("figure", ["fig8", "fig9", "fig10"])
def bench_breakdowns(benchmark, figure):
    def run():
        return run_breakdown_figure(figure, DecouplingStudy())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    report(result)
    big = result.rows[-1]
    if figure == "fig8":
        assert big[4] > big[1]  # S/MIMD mult larger at 0 added multiplies
    else:
        assert big[4] < big[1]  # ... smaller at/after the crossover
