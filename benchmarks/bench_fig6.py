"""Benchmark regenerating Figure 6 (execution time vs problem size, p=8)."""

from conftest import report

from repro.core import DecouplingStudy
from repro.experiments import run_fig6


def bench_fig6(benchmark):
    def run():
        # Fresh study: benchmark the full sweep, not the memo cache.
        return run_fig6(DecouplingStudy())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    report(result)
    n, sisd, simd, smimd, mimd = result.rows[-1]
    assert simd < smimd < mimd < sisd
