"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's exhibits and prints the
same rows/series the paper reports (run with ``-s`` or check
``bench_output.txt``).  A single study instance is shared so the serial
baselines are computed once; it routes through a session-scoped
execution-engine handle, so ``REPRO_JOBS=4 pytest benchmarks/`` fans the
simulation jobs out across worker processes.
"""

import pytest

from repro.core import DecouplingStudy
from repro.exec import ExecutionEngine


@pytest.fixture(scope="session")
def exec_engine():
    """Execution-engine handle shared by every benchmark.

    Honors ``$REPRO_JOBS`` (default 1: the serial in-process path, which
    keeps the benchmark numbers comparable with the seed's).
    """
    return ExecutionEngine()


@pytest.fixture(scope="session")
def study(exec_engine):
    return DecouplingStudy(exec_engine=exec_engine)


def report(result) -> None:
    """Print a reproduced exhibit beneath its benchmark."""
    print()
    print(result.render(plot=False))
