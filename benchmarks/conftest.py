"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's exhibits and prints the
same rows/series the paper reports (run with ``-s`` or check
``bench_output.txt``).  A single study instance is shared so the serial
baselines are computed once.
"""

import pytest

from repro.core import DecouplingStudy


@pytest.fixture(scope="session")
def study():
    return DecouplingStudy()


def report(result) -> None:
    """Print a reproduced exhibit beneath its benchmark."""
    print()
    print(result.render(plot=False))
