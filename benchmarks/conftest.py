"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's exhibits and prints the
same rows/series the paper reports (run with ``-s`` or check
``bench_output.txt``).  A single study instance is shared so the serial
baselines are computed once; it routes through a session-scoped
execution-engine handle, so ``REPRO_JOBS=4 pytest benchmarks/`` fans the
simulation jobs out across worker processes.
"""

import os

import pytest

from repro.core import DecouplingStudy
from repro.exec import ExecutionEngine


@pytest.fixture(scope="session")
def exec_engine():
    """Execution-engine handle shared by every benchmark.

    Honors ``$REPRO_JOBS`` but pins the default to 1 (the serial
    in-process path) rather than the library's all-cores default:
    benchmarks measure wall time, and the numbers only compare against
    the seed's when the schedule matches.
    """
    return ExecutionEngine(jobs=os.environ.get("REPRO_JOBS") or 1)


@pytest.fixture(scope="session")
def study(exec_engine):
    return DecouplingStudy(exec_engine=exec_engine)


def report(result) -> None:
    """Print a reproduced exhibit beneath its benchmark."""
    print()
    print(result.render(plot=False))
