#!/usr/bin/env python
"""Perf smoke: pinned micro workload — determinism blocks, slowness warns.

Run as a plain script (``python benchmarks/perf_smoke.py``); exits
non-zero on any *correctness* failure:

* run-to-run determinism: the pinned workload simulated twice must give
  identical cycle counts;
* golden cycles: each mode's cycle count must equal the committed
  constant (the same simulation the golden-exhibit suite locks down,
  restated here so a perf-motivated change can't drift timing);
* engine equivalence: a small matmul must produce the same schedule bit
  for bit on all four engine tiers — pure events, the local-time fast
  path, the batched lockstep engine, and the vectorized broadcast
  engine (the machine default, so the golden-cycle check above already
  runs with lockstep + vectorized on).

Wall time is then compared against the committed ``BENCH_micro.json``
(``vs_fastpath.<MODE>.lockstep_s``, falling back to
``vs_pure.<MODE>.fast_s``), and the lockstep engine's SIMD speed-up
over the plain fast path is held to a floor
(``LOCKSTEP_SIMD_FLOOR``).  A regression beyond either threshold only
*warns* by default — absolute wall seconds and wall-time ratios do not
transfer between a contributor's laptop, this repo's recording machine,
and a shared CI runner — and fails the run only under
``REPRO_PERF_STRICT=1`` (for a pinned, quiet runner).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig  # noqa: E402
from repro.programs.data import generate_matrices  # noqa: E402
from repro.programs.loader import build_matmul, run_matmul  # noqa: E402

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_micro.json"
REGRESSION_THRESHOLD = 0.25  #: fractional slowdown vs BENCH_micro.json
#: Minimum lockstep-over-fast-path SIMD wall-time ratio.  Recorded best
#: is ~1.4x (BENCH_micro.json vs_fastpath); the floor is set well under
#: it so only a genuine loss of the batching trips it, not runner noise.
LOCKSTEP_SIMD_FLOOR = 1.15
#: Minimum vectorized-over-fast-path SIMD wall-time ratio.  At the
#: pinned p=4 workload the recorded ratio is only ~1.1x — the per-word
#: batch bookkeeping amortizes over just 4 lanes; the ratio grows with
#: partition size (see BENCH_micro.json's vs_fastpath note).  The
#: floor guards against the tier becoming a net loss, not against
#: missing a speed-up it never had at this size.
VECTORIZED_SIMD_FLOOR = 1.0

#: The pinned workload: 16x16 matmul, calibrated config, default data
#: seed — and the cycle counts it must produce, forever.
GOLDEN_CYCLES = {
    "SERIAL": 362_528.0,
    "SIMD": 116_989.0,
    "MIMD": 290_407.0,
}
PARTITION = {"SERIAL": 1, "SIMD": 4, "MIMD": 4}

CFG = PrototypeConfig.calibrated()


def run_mode(name: str, fast_path: bool | None = None,
             lockstep: bool | None = None,
             vectorized: bool | None = None):
    """Simulate the pinned workload; return (cycles, matrix, wall_s)."""
    mode = ExecutionMode[name]
    p = PARTITION[name]
    bundle = build_matmul(mode, 16, p, device_symbols=CFG.device_symbols())
    a, b = generate_matrices(16)
    machine = PASMMachine(CFG, partition_size=p, fast_path=fast_path,
                          lockstep=lockstep, vectorized=vectorized)
    t0 = time.process_time()
    run = run_matmul(machine, bundle, a, b)
    wall = time.process_time() - t0
    return run.result.cycles, run.product, wall


def main() -> int:
    failures: list[str] = []
    warnings: list[str] = []
    reference = (json.loads(BENCH_PATH.read_text())
                 if BENCH_PATH.exists() else {})
    ref_modes = reference.get("vs_pure", {})
    ref_lockstep = reference.get("vs_fastpath", {})
    strict = os.environ.get("REPRO_PERF_STRICT", "") == "1"

    for name, golden in GOLDEN_CYCLES.items():
        cycles_1, product_1, wall_1 = run_mode(name)
        cycles_2, product_2, wall_2 = run_mode(name)
        wall = min(wall_1, wall_2)

        if cycles_1 != cycles_2 or (product_1 != product_2).any():
            failures.append(
                f"{name}: NON-DETERMINISTIC ({cycles_1} then {cycles_2} cycles)")
            continue
        if cycles_1 != golden:
            failures.append(
                f"{name}: cycle drift — got {cycles_1}, golden {golden}")
            continue

        ref = (ref_lockstep.get(name, {}).get("lockstep_s")
               or ref_modes.get(name, {}).get("fast_s"))
        if ref:
            slowdown = wall / ref - 1.0
            verdict = "ok" if slowdown <= REGRESSION_THRESHOLD else "SLOW"
            line = (f"{name}: {cycles_1:.0f} cycles ok, wall {wall:.3f}s "
                    f"vs recorded {ref:.3f}s ({slowdown:+.0%}) [{verdict}]")
            print(line)
            if slowdown > REGRESSION_THRESHOLD:
                warnings.append(line)
        else:
            print(f"{name}: {cycles_1:.0f} cycles ok, wall {wall:.3f}s "
                  "(no recorded reference)")

    # Every engine tier must match the pure-event schedule bit for bit.
    for name in GOLDEN_CYCLES:
        pure = run_mode(name, fast_path=False)
        for engine, kwargs in [
            ("fast path", {"fast_path": True, "lockstep": False}),
            ("lockstep", {"fast_path": True, "lockstep": True,
                          "vectorized": False}),
            ("vectorized", {"fast_path": True, "lockstep": True,
                            "vectorized": True}),
        ]:
            got = run_mode(name, **kwargs)
            if got[0] != pure[0] or (got[1] != pure[1]).any():
                failures.append(
                    f"{name}: {engine} diverged from pure events "
                    f"({got[0]} vs {pure[0]} cycles)")
            else:
                print(f"{name}: {engine} == pure events "
                      f"({got[0]:.0f} cycles)")

    # The lockstep batching and the vectorized tier must actually be
    # buying time on SIMD.  Interleaved best-of-3: alternating the
    # engines keeps slow drift of a shared runner from landing entirely
    # on one side of the ratio.
    fast_wall = lock_wall = vec_wall = float("inf")
    for _ in range(3):
        fast_wall = min(fast_wall,
                        run_mode("SIMD", fast_path=True, lockstep=False)[2])
        lock_wall = min(lock_wall,
                        run_mode("SIMD", fast_path=True, lockstep=True,
                                 vectorized=False)[2])
        vec_wall = min(vec_wall,
                       run_mode("SIMD", fast_path=True, lockstep=True,
                                vectorized=True)[2])
    for engine, wall, floor in [
        ("lockstep", lock_wall, LOCKSTEP_SIMD_FLOOR),
        ("vectorized", vec_wall, VECTORIZED_SIMD_FLOOR),
    ]:
        ratio = fast_wall / wall if wall else float("inf")
        line = (f"SIMD: {engine} {wall:.3f}s vs fast path "
                f"{fast_wall:.3f}s ({ratio:.2f}x, floor {floor:.2f}x)")
        print(line)
        if ratio < floor:
            warnings.append(line + " [BELOW FLOOR]")

    if failures:
        print("\nFAIL (correctness):")
        for f in failures:
            print(f"  {f}")
        return 1
    if warnings:
        what = ("strict: failing" if strict
                else "warn-only; set REPRO_PERF_STRICT=1 to fail")
        print(f"\nwall-time regressions (slowdown beyond "
              f"{REGRESSION_THRESHOLD:.0%} or an engine's SIMD ratio "
              f"below its floor) ({what}):")
        for w in warnings:
            print(f"  {w}")
        return 1 if strict else 0
    print("\nperf smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
