#!/usr/bin/env python3
"""Quickstart: multiply two matrices on the simulated PASM prototype in
all four execution modes and compare them.

Runs the instruction-level micro engine at n=16 (verifying the numeric
product against numpy) and the macro performance model at n=256 (the
paper's largest size), printing speed-up and efficiency for each mode.

    python examples/quickstart.py
"""

from repro.core import DecouplingStudy
from repro.machine import ExecutionMode
from repro.utils import format_table

MODES = (ExecutionMode.SIMD, ExecutionMode.SMIMD, ExecutionMode.MIMD)


def report(study: DecouplingStudy, n: int, p: int, engine: str) -> None:
    serial = study.serial_baseline(n, engine=engine)
    rows = [("SISD", serial.seconds, 1.0, 1.0 / p, serial.engine, "-")]
    for mode in MODES:
        res = study.run(mode, n, p, engine=engine)
        rows.append(
            (
                mode.label,
                res.seconds,
                serial.cycles / res.cycles,
                study.efficiency(mode, n, p, engine=engine),
                res.engine,
                "exact product verified" if res.verified else "model",
            )
        )
    print(
        format_table(
            ["mode", "time (s)", "speed-up", "efficiency", "engine", "check"],
            rows,
            title=f"\n{n}x{n} matrix multiplication on {p} PEs",
        )
    )


def main() -> None:
    study = DecouplingStudy()
    # Small problem: full instruction-level simulation, results verified.
    report(study, n=16, p=4, engine="micro")
    # Paper-scale problem: the validated macro performance model.
    report(study, n=256, p=4, engine="macro")
    print(
        "\nNote the paper's headline effects: SIMD is superlinear "
        "(efficiency > 1/p·p = 1) at large n thanks to queue fetches and "
        "MC control overlap; S/MIMD tracks SIMD closely by replacing "
        "polling with queue barriers; pure MIMD pays for its polling."
    )


if __name__ == "__main__":
    main()
