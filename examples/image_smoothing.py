#!/usr/bin/env python3
"""Image smoothing on the simulated PASM prototype.

PASM was "a partitionable SIMD/MIMD system for image processing and
pattern recognition"; this example runs one of its motivating workloads —
a vertical two-point smoothing filter — as hand-written MC68000 assembly
on the simulated machine, using the S/MIMD idiom the paper advocates:
barrier-synchronize once, then exchange boundary rows over the
circuit-switched network as plain moves, then compute asynchronously.

Each of the 4 PEs holds a horizontal strip of the image.  Smoothing row r
needs row r+1, so every PE ships its *first* row to its upper neighbour
(logical PE i → i−1, the same single circuit setting the paper's matrix
multiplication uses) and computes (row[r] + row[r+1]) >> 1 with wraparound.

    python examples/image_smoothing.py
"""

import numpy as np

from repro.m68k.assembler import assemble
from repro.machine import PASMMachine, PrototypeConfig
from repro.utils.rng import make_rng

HEIGHT, WIDTH = 16, 12  # image strip: HEIGHT/p rows per PE
P = 4
IMG = 0x4000  # my strip, row-major
HALO = 0x6000  # received boundary row
OUT = 0x7000  # smoothed strip


def pe_program(config: PrototypeConfig, rows: int, width: int):
    """One PE's program (identical text on every PE)."""
    source = f"""
        ; ---- exchange boundary rows (S/MIMD style: barrier, then moves)
        .timecat sync
        MOVE.W  SIMDSPACE,D5        ; barrier: all PEs ready to exchange
        .timecat comm
        LEA     {IMG},A4            ; my first row goes out
        LEA     {HALO},A5           ; neighbour's first row comes in
        MOVE.W  #{width - 1},D2
    xfer:
        MOVE.W  (A4)+,D0
        MOVE.B  D0,NETTX
        LSR.W   #8,D0
        MOVE.B  D0,NETTX
        MOVE.B  NETRX,D3
        MOVE.B  NETRX,D4
        LSL.W   #8,D4
        MOVE.B  D3,D4
        MOVE.W  D4,(A5)+
        DBRA    D2,xfer

        ; ---- smooth: out[r] = (img[r] + img[r+1]) >> 1, last row uses halo
        .timecat other
        LEA     {IMG},A0            ; current row cursor
        LEA     {IMG + 2 * width},A1 ; next row cursor
        LEA     {OUT},A2
        MOVE.W  #{(rows - 1) * width - 1},D2
    body:
        MOVE.W  (A0)+,D0
        ADD.W   (A1)+,D0
        LSR.W   #1,D0
        MOVE.W  D0,(A2)+
        DBRA    D2,body
        ; last row pairs with the received halo row
        LEA     {HALO},A1
        MOVE.W  #{width - 1},D2
    last:
        MOVE.W  (A0)+,D0
        ADD.W   (A1)+,D0
        LSR.W   #1,D0
        MOVE.W  D0,(A2)+
        DBRA    D2,last
        HALT
    """
    return assemble(source, predefined=config.device_symbols())


def main() -> None:
    config = PrototypeConfig.calibrated()
    rng = make_rng(7, "image")
    image = rng.integers(0, 4096, size=(HEIGHT, WIDTH), dtype=np.uint16)

    machine = PASMMachine(config, partition_size=P)
    machine.connect_shift_circuit()
    rows = HEIGHT // P
    program = pe_program(config, rows, WIDTH)
    for lp in range(P):
        strip = image[lp * rows : (lp + 1) * rows]
        machine.pe(lp).memory.write_words(IMG, strip.ravel())
    result = machine.run_smimd([program] * P, sync_words=1)

    smoothed = np.vstack(
        [
            machine.pe(lp).memory.read_words(OUT, rows * WIDTH).reshape(
                rows, WIDTH
            )
            for lp in range(P)
        ]
    )
    expected = (
        (image.astype(np.uint32) + np.roll(image, -1, axis=0)) >> 1
    ).astype(np.uint16)
    assert np.array_equal(smoothed, expected), "smoothing result mismatch"

    cycles_per_pixel = result.cycles / (HEIGHT * WIDTH)
    print(f"smoothed a {HEIGHT}x{WIDTH} image on {P} PEs in "
          f"{result.cycles:.0f} cycles ({result.seconds * 1e3:.2f} ms "
          f"at 8 MHz; {cycles_per_pixel:.1f} cycles/pixel)")
    print("breakdown:",
          {k: round(v) for k, v in result.breakdown().items()})
    print("result verified against numpy reference")


if __name__ == "__main__":
    main()
