#!/usr/bin/env python3
"""Exploring the SIMD→MIMD decoupling tradeoff beyond the paper's single
operating point.

The paper measured one crossover: ≈14 added multiplies at n=64, p=4.
With a model instead of a lab machine we can map the whole frontier —
how the minimum profitable decoupling granularity moves with problem
size, machine size, and the entropy of the data driving the
variable-length instructions — and compare it against the first-order
analytic prediction from the multiply-time order statistics.

    python examples/crossover_exploration.py
"""

from repro.analysis import predicted_crossover
from repro.core import DecouplingStudy, find_crossover
from repro.machine import PrototypeConfig
from repro.utils import format_table


def sweep_problem_size(study: DecouplingStudy) -> None:
    rows = []
    for n in (16, 32, 64, 128, 256):
        res = find_crossover(study, n=n, p=4, max_multiplies=60)
        rows.append(
            (n, n // 4, f"{res.crossover:.1f}" if res.found else "> 60")
        )
    print(format_table(
        ["n", "columns/PE", "crossover (added multiplies)"], rows,
        title="\nCrossover vs problem size (p=4) — more columns per PE "
              "weaken the per-step re-coupling, so decoupling pays sooner",
    ))


def sweep_machine_size(study: DecouplingStudy) -> None:
    rows = []
    for p in (4, 8, 16):
        res = find_crossover(study, n=64, p=p, max_multiplies=60)
        rows.append((p, f"{res.crossover:.1f}" if res.found else "> 60"))
    print(format_table(
        ["p", "crossover (added multiplies)"], rows,
        title="\nCrossover vs machine size (n=64) — the max over more PEs "
              "grows, but so does the per-step skew the barrier re-couples",
    ))


def sweep_data_entropy(config: PrototypeConfig) -> None:
    rows = []
    for b_max in (16, 64, 256, 4096, 65536):
        study = DecouplingStudy(config, b_max=b_max)
        res = find_crossover(study, n=64, p=4, max_multiplies=80)
        pred = predicted_crossover(config, b_max=b_max, p=4, cols=16)
        rows.append(
            (
                b_max,
                f"{res.crossover:.1f}" if res.found else "> 80",
                f"{pred.crossover:.1f}",
                f"{pred.benefit_per_multiply:.2f}",
            )
        )
    print(format_table(
        ["B value range", "model crossover", "analytic estimate",
         "benefit/multiply (cycles)"],
        rows,
        title="\nCrossover vs multiplier entropy — the more the multiply "
              "time varies, the earlier asynchronous execution wins",
    ))


def main() -> None:
    config = PrototypeConfig.calibrated()
    study = DecouplingStudy(config)
    print("Paper's operating point: n=64, p=4 →",
          f"crossover at {find_crossover(study).crossover:.1f} added "
          "multiplies (paper: ≈14)")
    sweep_problem_size(study)
    sweep_machine_size(study)
    sweep_data_entropy(config)


if __name__ == "__main__":
    main()
