#!/usr/bin/env python3
"""Partitioned operation: independent virtual machines on one PASM.

The "partitionable" in PASM: the 16 PEs and 4 MCs divide into independent
virtual machines of various sizes and modes.  This example runs, *at the
same simulated time on the same physical machine*:

* VM A — MCs 0–1 (8 PEs): a 16×16 S/MIMD matrix multiplication;
* VM B — MC 2 (4 PEs): an 8×8 SIMD matrix multiplication;
* VM C — MC 3 (4 PEs): a MIMD ring token-exchange written in assembly.

Both products are verified, and VM A's timing is shown to be identical to
running it alone — the virtual machines really are independent.

    python examples/partitioned_machine.py
"""

import numpy as np

from repro.machine import (
    ExecutionMode,
    PASMMachine,
    PartitionedMachine,
    PrototypeConfig,
)
from repro.m68k.assembler import assemble
from repro.programs import build_matmul, expected_product, generate_matrices
from repro.programs.data import assemble_result, load_pe_matrices, read_pe_result

CFG = PrototypeConfig.calibrated()

RING_SRC = """
        MOVE.W  #PEID,D0
        ADD.W   #$500,D0
        MOVE.W  SIMDSPACE,D7    ; barrier
        MOVE.B  D0,NETTX
        LSR.W   #8,D0
        MOVE.B  D0,NETTX
        MOVE.B  NETRX,D3
        MOVE.B  NETRX,D4
        LSL.W   #8,D4
        MOVE.B  D3,D4
        MOVE.W  D4,$4000
        HALT
"""


def arm_matmul(pm, vm, mode, n, seed):
    a, b = generate_matrices(n, seed=seed)
    bundle = build_matmul(mode, n, vm.p, device_symbols=CFG.device_symbols())
    for logical in range(vm.p):
        load_pe_matrices(vm.pe(logical).memory, bundle.layout, logical, a, b)
    vm.connect_shift_circuit()
    if mode is ExecutionMode.SIMD:
        pm.start(vm, mode, bundle.simd.mc_program, bundle.simd.blocks,
                 bundle.simd.data_programs)
    else:
        pm.start(vm, mode, bundle.programs, bundle.sync_words)
    return bundle, a, b


def main() -> None:
    pm = PartitionedMachine(CFG)
    vm_a = pm.new_vm(8, first_mc=0)
    vm_b = pm.new_vm(4, first_mc=2)
    vm_c = pm.new_vm(4, first_mc=3)

    bun_a, a1, b1 = arm_matmul(pm, vm_a, ExecutionMode.SMIMD, 16, seed=41)
    bun_b, a2, b2 = arm_matmul(pm, vm_b, ExecutionMode.SIMD, 8, seed=42)

    ring_programs = []
    for logical in range(4):
        symbols = dict(CFG.device_symbols())
        symbols["PEID"] = logical
        ring_programs.append(assemble(RING_SRC, predefined=symbols))
    vm_c.connect_shift_circuit()
    pm.start(vm_c, ExecutionMode.SMIMD, ring_programs, 1)

    results = pm.run_all()

    got_a = assemble_result(
        [read_pe_result(vm_a.pe(i).memory, bun_a.layout) for i in range(8)]
    )
    got_b = assemble_result(
        [read_pe_result(vm_b.pe(i).memory, bun_b.layout) for i in range(4)]
    )
    assert np.array_equal(got_a, expected_product(a1, b1))
    assert np.array_equal(got_b, expected_product(a2, b2))
    tokens = [vm_c.pe(lp).memory.read(0x4000, 2) for lp in range(4)]
    assert tokens == [0x501, 0x502, 0x503, 0x500]

    for idx, label in ((0, "A: 16x16 S/MIMD on 8 PEs"),
                       (1, "B:  8x8  SIMD  on 4 PEs"),
                       (2, "C:  ring exchange on 4 PEs")):
        r = results[idx]
        print(f"VM {label}: {r.cycles:>9.0f} cycles "
              f"({r.seconds * 1e3:6.2f} ms), verified")

    # Independence: VM A alone takes exactly as long.
    alone = PASMMachine(CFG, partition_size=8, first_mc=0)
    bundle = build_matmul(ExecutionMode.SMIMD, 16, 8,
                          device_symbols=CFG.device_symbols())
    for logical in range(8):
        load_pe_matrices(alone.pe(logical).memory, bundle.layout, logical,
                         a1, b1)
    alone.connect_shift_circuit()
    alone_result = alone.run_smimd(bundle.programs, bundle.sync_words)
    assert alone_result.cycles == results[0].cycles
    print(f"\nVM A alone: {alone_result.cycles:.0f} cycles — identical to "
          "its co-resident run: the partitions are independent.")


if __name__ == "__main__":
    main()
