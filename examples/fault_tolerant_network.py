#!/usr/bin/env python3
"""The Extra-Stage Cube's fault tolerance, demonstrated.

The prototype's interconnection network is "a circuit-switched Extra-Stage
Cube network, which is a fault-tolerant variation of the multistage cube
network".  This example shows what the extra stage buys:

1. route the matrix-multiplication shift permutation on a healthy network;
2. fail an interior interchange box on one of its paths — the plain cube
   is now stuck, the ESC reroutes through the exchanged extra-stage entry;
3. verify single-fault tolerance exhaustively: any single interior box
   fault leaves every source/destination pair connectable;
4. run an actual byte transfer across the rerouted circuit in the event
   simulation.

    python examples/fault_tolerant_network.py
"""

from repro.errors import NetworkFaultError
from repro.network import (
    CircuitSwitchedNetwork,
    ExtraStageCubeTopology,
    Fault,
    FaultKind,
    NetworkFabric,
    route,
)
from repro.sim import Environment

N = 16


def main() -> None:
    topo = ExtraStageCubeTopology(N)
    print(topo.describe())

    # 1. Healthy network: the algorithm's shift permutation in one setting.
    net = CircuitSwitchedNetwork(topo)
    shift = {i: (i - 1) % N for i in range(N)}
    circuits = net.allocate_permutation(shift)
    print(f"\nhealthy: shift permutation routed, {len(circuits)} circuits, "
          "zero conflicts")
    net.release_all()

    # 2. Fail a box on PE 5 -> PE 4's path.
    victim = route(topo, 5, 4)
    stage = 2  # an interior stage
    fault = Fault(FaultKind.BOX, *topo.box_of(stage, victim.lines[stage]))
    print(f"\ninjecting fault: interchange box {fault.stage}/{fault.line}")
    try:
        route(topo, 5, 4, faults={fault})
        raise AssertionError("plain cube should be blocked")
    except NetworkFaultError:
        print("  plain cube (extra stage bypassed): 5 -> 4 unroutable")
    detour = route(topo, 5, 4, faults={fault}, extra_stage_enabled=True)
    print(f"  extra stage enabled: rerouted via "
          f"{'exchanged' if detour.extra_exchanged else 'straight'} entry, "
          f"lines {list(detour.lines)}")

    # 3. Exhaustive single-fault tolerance over interior boxes.
    checked = 0
    for stage in range(1, topo.n_stages - 1):
        for box in topo.boxes(stage):
            f = Fault(FaultKind.BOX, *box)
            for s in range(N):
                for d in range(N):
                    route(topo, s, d, faults={f}, extra_stage_enabled=True)
                    checked += 1
    print(f"\nsingle-fault tolerance: {checked} (fault, src, dst) "
          "combinations all routable")

    # 4. Byte transfer across the rerouted circuit, in simulated time.
    env = Environment()
    esc = CircuitSwitchedNetwork(topo, extra_stage_enabled=True,
                                 faults={fault})
    fabric = NetworkFabric(env, esc, byte_latency=24)
    fabric.connect(5, 4)

    def sender():
        yield from fabric.ports[5].write_tx(0xAB)

    def receiver():
        value = yield from fabric.ports[4].read_rx()
        return value, env.now

    env.process(sender())
    value, t = env.run(until=env.process(receiver()))
    print(f"\ntransfer over the detour: byte {value:#04x} delivered at "
          f"t={t:.0f} cycles")


if __name__ == "__main__":
    main()
