#!/usr/bin/env python3
"""Looking inside a SIMD run: traces, queue occupancy, and the overlap
that makes superlinear speed-up possible.

The paper's superlinearity argument rests on a machine-level invariant:
"If the queue can remain non-empty and non-full at all times, it should be
possible to eliminate all of the time required for the control
operations."  This example runs a small SIMD matrix multiplication on the
instruction-level engine with full tracing and shows that invariant
holding: the Fetch Unit Queue's occupancy stays off the floor after
start-up, the PEs' activity timeline shows no control-category time at
all (the MCs run it), and the per-instruction trace exposes the
data-dependent multiply times directly.

    python examples/inspect_simd_overlap.py
"""

from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.m68k.disasm import disassemble
from repro.programs import build_matmul, generate_matrices
from repro.programs.loader import run_matmul
from repro.programs.parallel import build_parallel_programs
from repro.programs.data import MatmulLayout
from repro.trace import activity_gantt, format_trace, queue_occupancy

CFG = PrototypeConfig.calibrated()
N, P = 16, 4


def main() -> None:
    a, b = generate_matrices(N)
    machine = PASMMachine(CFG, partition_size=P)
    bundle = build_matmul(
        ExecutionMode.SIMD, N, P, device_symbols=CFG.device_symbols()
    )
    for pe in machine.pes:
        pe.cpu.trace = True
    run = run_matmul(machine, bundle, a, b)

    print(f"SIMD {N}x{N} matmul on {P} PEs: {run.result.cycles:.0f} cycles")
    print("PE-side breakdown:",
          {k: round(v) for k, v in run.result.breakdown().items()})
    print("(control ≈ 0: every loop ran on the MC, overlapped)\n")

    # The queue invariant.
    queue = machine.queues[0]
    stats = queue_occupancy(
        queue.occupancy_samples, CFG.queue_capacity_words,
        end=run.result.cycles,
    )
    print(stats)
    print(f"MC busy {machine.mcs[0].busy_cycles:.0f} of "
          f"{run.result.cycles:.0f} cycles — the rest of its control work "
          "hid behind the queue\n")

    # A slice of PE0's instruction trace around the inner loop.
    records = machine.pe(0).cpu.trace_records
    inner = [r for r in records if r.instr.mnemonic == "MULU"][:6]
    print("first data-dependent multiplies on PE0 (elapsed varies with "
          "the broadcast max):")
    print(format_trace(inner, limit=6))
    print()

    # Activity timeline for all four PEs (a sample of the run).
    traces = {
        f"PE{lp}": machine.pe(lp).cpu.trace_records for lp in range(P)
    }
    print(activity_gantt(traces, width=70))
    print()

    # What the PEs were actually fed: the MIMD text for comparison.
    mimd = build_parallel_programs(
        MatmulLayout(N, P), added_multiplies=0, barrier=False,
        device_symbols=CFG.device_symbols(),
    )[0]
    listing = disassemble(mimd, device_symbols=CFG.device_symbols())
    print("for reference, the equivalent MIMD program (first 12 lines):")
    print("\n".join(listing.splitlines()[:12]))


if __name__ == "__main__":
    main()
