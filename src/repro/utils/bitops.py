"""Bit-level helpers used by the MC68000 timing model and data paths.

The data-dependent instruction times at the heart of the paper reduce to two
bit-counting primitives on the 16-bit multiplier operand:

* ``ones_count`` — number of 1 bits; drives ``MULU`` (38 + 2*ones cycles).
* ``transitions_count`` — number of 01/10 adjacent pairs in the operand with
  a 0 appended at the least-significant end; drives ``MULS``.

Both accept plain ints and numpy arrays so the macro timing model can apply
them to whole matrices at once.
"""

from __future__ import annotations

import numpy as np

#: Bit masks for the three MC68000 operand sizes, keyed by size in bytes.
SIZE_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFF_FFFF}


def bit_length_mask(bits: int) -> int:
    """Return a mask with the low ``bits`` bits set (``bits`` >= 0)."""
    if bits < 0:
        raise ValueError(f"bit count must be non-negative, got {bits}")
    return (1 << bits) - 1


def ones_count(value, width: int = 16):
    """Count 1 bits in ``value`` masked to ``width`` bits.

    Accepts an int (returns int) or a numpy integer array (returns an array
    of the same shape).  This is the ``n`` of the MC68000 ``MULU`` timing
    formula ``38 + 2n``.
    """
    mask = bit_length_mask(width)
    if isinstance(value, np.ndarray):
        v = value.astype(np.uint64) & np.uint64(mask)
        return _popcount_array(v)
    return (int(value) & mask).bit_count()


def _popcount_array(v: np.ndarray) -> np.ndarray:
    """Vectorized population count for uint64 arrays."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(v).astype(np.int64)
    out = np.zeros(v.shape, dtype=np.int64)
    v = v.copy()
    while np.any(v):
        out += (v & np.uint64(1)).astype(np.int64)
        v >>= np.uint64(1)
    return out


def transitions_count(value, width: int = 16):
    """Count adjacent-bit transitions for the ``MULS`` timing formula.

    The MC68000 signed multiply takes ``38 + 2n`` cycles where ``n`` is the
    number of 10 or 01 patterns in the source operand after appending a 0 to
    its least-significant end (equivalently, transitions in the
    ``width + 1``-bit string ``value << 1``).

    Accepts ints or numpy arrays, mirroring :func:`ones_count`.
    """
    mask = bit_length_mask(width)
    if isinstance(value, np.ndarray):
        v = (value.astype(np.uint64) & np.uint64(mask)) << np.uint64(1)
        x = v ^ (v >> np.uint64(1))
        # v has width+1 significant bits; transitions live in the low `width` bits
        return _popcount_array(x & np.uint64(bit_length_mask(width)))
    v = (int(value) & mask) << 1
    x = v ^ (v >> 1)
    return (x & bit_length_mask(width)).bit_count()


def sign_extend(value: int, width: int) -> int:
    """Sign-extend the low ``width`` bits of ``value`` to a Python int."""
    mask = bit_length_mask(width)
    value &= mask
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_signed(value: int, size: int) -> int:
    """Interpret ``value`` as a signed integer of ``size`` bytes."""
    return sign_extend(value, size * 8)


def to_unsigned(value: int, size: int) -> int:
    """Truncate ``value`` to an unsigned integer of ``size`` bytes."""
    return value & SIZE_MASKS[size]


def byte_swap16(value: int) -> int:
    """Swap the two bytes of a 16-bit value (used by network byte framing)."""
    value &= 0xFFFF
    return ((value >> 8) | (value << 8)) & 0xFFFF
