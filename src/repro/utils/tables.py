"""Plain-text table and chart rendering for experiment reports.

The benchmark harness prints the same rows/series the paper reports; these
helpers render them as aligned monospace tables and simple ASCII line plots
so results are readable in a terminal and in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        str_rows.append(cells)
    widths = [len(h) for h in headers]
    for cells in str_rows:
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for cells in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
) -> str:
    """Render named ``(x, y)`` series as an ASCII scatter/line chart.

    Each series is drawn with a distinct marker; a legend maps markers back
    to series names.  Intended for the figure-reproduction scripts, which
    care about curve *shape* (orderings and crossings), not print quality.
    """
    markers = "*o+x#@%&"
    points = []
    for name, pts in series.items():
        for x, y in pts:
            points.append((float(x), float(y)))
    if not points:
        return "(empty plot)"

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    def ty(y: float) -> float:
        return math.log10(y) if logy else y

    xs = [tx(p[0]) for p in points]
    ys = [ty(p[1]) for p in points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(markers, series.items()):
        for x, y in pts:
            col = int(round((tx(x) - xmin) / xspan * (width - 1)))
            row = int(round((ty(y) - ymin) / yspan * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    top = f"{(10 ** ymax if logy else ymax):.4g}"
    bottom = f"{(10 ** ymin if logy else ymin):.4g}"
    lines.append(f"y max = {top}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    left = f"{(10 ** xmin if logx else xmin):.4g}"
    right = f"{(10 ** xmax if logx else xmax):.4g}"
    lines.append(f"y min = {bottom}; x: {left} .. {right}")
    for marker, name in zip(markers, series.keys()):
        lines.append(f"  {marker} = {name}")
    return "\n".join(lines)
