"""Randomness policy.

All stochastic inputs in the library (the random B matrices, fault
injection, Monte-Carlo sampling in the macro model) flow through seeded
:class:`numpy.random.Generator` instances created here, so that

* experiments are exactly reproducible given a seed, and
* the micro (instruction-level) and macro (vectorized) engines can be fed
  the *same* data set for a given ``(experiment, n, p, seed)`` tuple, as the
  paper did ("the same data sets were used on all versions of the
  algorithm with the same value of n and p").
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used by experiments when the caller does not supply one.
DEFAULT_SEED = 19880815  # ICPP 1988


def derive_seed(root_seed: int, *components) -> int:
    """Derive a stable 63-bit child seed from a root seed and labels.

    The derivation hashes the textual representation of all components, so
    ``derive_seed(s, "fig7", n, p)`` is stable across processes and Python
    versions (unlike ``hash``).
    """
    text = ":".join([str(int(root_seed))] + [repr(c) for c in components])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def make_rng(root_seed: int, *components) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for a namespaced purpose."""
    return np.random.default_rng(derive_seed(root_seed, *components))
