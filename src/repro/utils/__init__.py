"""Shared low-level helpers: bit manipulation, RNG policy, table formatting."""

from repro.utils.bitops import (
    bit_length_mask,
    byte_swap16,
    ones_count,
    sign_extend,
    to_signed,
    to_unsigned,
    transitions_count,
)
from repro.utils.rng import derive_seed, make_rng
from repro.utils.tables import ascii_plot, format_table

__all__ = [
    "bit_length_mask",
    "byte_swap16",
    "ones_count",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "transitions_count",
    "derive_seed",
    "make_rng",
    "format_table",
    "ascii_plot",
]
