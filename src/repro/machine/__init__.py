"""The PASM prototype machine model.

Composes the substrates — MC68000 CPUs, memory system, Extra-Stage Cube
network, Fetch Units — into a runnable machine supporting the four
execution modes the paper compares: serial (SISD), SIMD, MIMD, and
barrier-synchronized S/MIMD.
"""

from repro.machine.config import PrototypeConfig
from repro.machine.partition import Partition
from repro.machine.pasm import MachineResult, PASMMachine
from repro.machine.modes import ExecutionMode
from repro.machine.multivm import PartitionedMachine

__all__ = [
    "PrototypeConfig",
    "Partition",
    "PASMMachine",
    "MachineResult",
    "ExecutionMode",
    "PartitionedMachine",
]
