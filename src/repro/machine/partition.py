"""Virtual-machine partitioning.

PASM partitions its N PEs into independent virtual machines.  PE *p*
belongs to MC *p mod Q*; a virtual machine is a set of MCs together with
all their PEs, so machine sizes are multiples of N/Q.  The experiments use
p = 4 (one MC), p = 8 (two MCs), and p = 16 (all four MCs).

Logical numbering is *blocked by MC*: logical PEs ``[m*(N/Q), (m+1)*(N/Q))``
live on the m-th MC of the partition.  This keeps each Fetch Unit's mask a
contiguous logical range and — verified by test — keeps the algorithm's
shift permutation cube-admissible in a single circuit setting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.machine.config import PrototypeConfig


@dataclass(frozen=True)
class Partition:
    """A virtual machine: ``size`` logical PEs over ``mcs`` Micro Controllers."""

    config: PrototypeConfig
    size: int
    first_mc: int = 0

    def __post_init__(self) -> None:
        cfg = self.config
        if self.size < 1 or self.size & (self.size - 1):
            raise PartitionError(f"partition size must be a power of two, {self.size}")
        if self.size > cfg.n_pes:
            raise PartitionError(
                f"partition of {self.size} PEs exceeds machine size {cfg.n_pes}"
            )
        if self.size < cfg.pes_per_mc and self.size != 1:
            raise PartitionError(
                f"partitions smaller than one MC group ({cfg.pes_per_mc} PEs) "
                "are not supported (except size 1 for the serial baseline)"
            )
        if self.first_mc + self.n_mcs_used > cfg.n_mcs:
            raise PartitionError(
                f"partition needs MCs [{self.first_mc}, "
                f"{self.first_mc + self.n_mcs_used}) but machine has "
                f"{cfg.n_mcs}"
            )

    @property
    def n_mcs_used(self) -> int:
        return max(1, self.size // self.config.pes_per_mc)

    @property
    def mcs(self) -> list[int]:
        return list(range(self.first_mc, self.first_mc + self.n_mcs_used))

    @property
    def pes_per_mc_used(self) -> int:
        """Logical PEs per MC (= N/Q except for the serial size-1 case)."""
        return self.size // self.n_mcs_used

    def physical_pe(self, logical: int) -> int:
        """Map a logical PE number to its physical PE number."""
        if not 0 <= logical < self.size:
            raise PartitionError(f"logical PE {logical} out of range [0, {self.size})")
        mc = self.first_mc + logical // self.pes_per_mc_used
        slot = logical % self.pes_per_mc_used
        return mc + slot * self.config.n_mcs

    def logical_pe(self, physical: int) -> int:
        """Inverse of :meth:`physical_pe`."""
        mc = physical % self.config.n_mcs
        slot = physical // self.config.n_mcs
        logical = (mc - self.first_mc) * self.pes_per_mc_used + slot
        if not 0 <= logical < self.size or self.physical_pe(logical) != physical:
            raise PartitionError(f"physical PE {physical} not in partition")
        return logical

    def mc_of_logical(self, logical: int) -> int:
        return self.config.mc_of_pe(self.physical_pe(logical))

    def logical_pes_of_mc(self, mc: int) -> list[int]:
        """Logical PE numbers controlled by partition MC ``mc``."""
        base = (mc - self.first_mc) * self.pes_per_mc_used
        return list(range(base, base + self.pes_per_mc_used))

    def shift_permutation(self) -> dict[int, int]:
        """Physical source→dest map for logical PE i → PE (i-1) mod size.

        This is the single network setting the matrix-multiplication
        algorithm holds for its entire run.
        """
        return {
            self.physical_pe(i): self.physical_pe((i - 1) % self.size)
            for i in range(self.size)
        }
