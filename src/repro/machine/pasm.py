"""The PASM machine: partitioned PEs, MCs, network, and the four run modes.

A :class:`PASMMachine` instance owns one simulation environment and one
virtual machine (partition).  The mode runners return a
:class:`MachineResult` with the makespan, per-PE and per-category cycle
breakdowns (the data behind the paper's Figures 6–12), and queue/network
statistics.

Timing convention: PEs start executing at t = 0 and the result's ``cycles``
is the time the *last* PE halts, matching the paper's measurement of total
execution time with the MC68230 interval timers.  The one-time network
circuit set-up is reported separately (``net_setup_cycles``) and not
included, as in the paper ("the measurements made do not reflect any
significant influence from network reconfiguration overhead").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, DeadlockError, PEFailStopError
from repro.faults.plan import FaultPlan
from repro.fetch_unit import FetchUnitController, FetchUnitQueue, MaskRegister, sync_item
from repro.m68k.assembler import AssembledProgram
from repro.m68k.instructions import Instruction
from repro.m68k.timing import CYCLE_SECONDS
from repro.machine.config import PrototypeConfig
from repro.machine.modes import ExecutionMode
from repro.machine.partition import Partition
from repro.mc import MCOp, MicroController
from repro.network import CircuitSwitchedNetwork, ExtraStageCubeTopology, NetworkFabric
from repro.pe import ProcessingElement
from repro.sim import AllOf, Environment
from repro.sim.localtime import resolve_fast_path
from repro.sim.lockstep import resolve_lockstep
from repro.sim.vectorized import VectorExecutor, resolve_vectorized


class _FailStopSignal(BaseException):
    """Internal kill signal thrown into a fail-stopped PE's process.

    A BaseException so no ``except Exception`` handler on the PE's
    execution path can accidentally resurrect a dead board.
    """


@dataclass
class MachineResult:
    """Outcome of one machine run."""

    mode: ExecutionMode
    p: int
    cycles: float
    per_pe_cycles: dict[int, float]
    per_pe_categories: dict[int, dict[str, float]]
    instructions: int
    queue_stats: dict[int, dict[str, float]] = field(default_factory=dict)
    net_setup_cycles: float = 0.0
    mc_stats: dict[int, dict[str, float]] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Makespan in wall seconds on the 8 MHz prototype."""
        return self.cycles * CYCLE_SECONDS

    def breakdown(self) -> dict[str, float]:
        """Mean per-PE cycles by timing category.

        The categories sum (plus idle/stall skew) to roughly the makespan;
        this is the quantity plotted in the paper's Figures 8–10.
        """
        if not self.per_pe_categories:
            return {}
        cats: dict[str, float] = {}
        for per_cat in self.per_pe_categories.values():
            for cat, cyc in per_cat.items():
                cats[cat] = cats.get(cat, 0.0) + cyc
        n = len(self.per_pe_categories)
        return {cat: cyc / n for cat, cyc in cats.items()}


class PASMMachine:
    """One virtual machine on the simulated prototype."""

    def __init__(
        self,
        config: PrototypeConfig | None = None,
        partition_size: int = 4,
        first_mc: int = 0,
        *,
        shared=None,
        fault_plan: FaultPlan | None = None,
        fast_path: bool | None = None,
        lockstep: bool | None = None,
        vectorized: bool | None = None,
    ) -> None:
        """``shared`` (env, network, fabric) lets several virtual machines
        coexist on one physical machine — see
        :class:`repro.machine.multivm.PartitionedMachine`.

        ``fast_path`` selects local-time execution for the PE and MC buses
        (see :mod:`repro.sim.localtime`); ``None`` defers to
        ``$REPRO_PURE_EVENTS`` (default: enabled).  ``lockstep`` selects
        the batched SIMD-rendezvous tier on top of it (see
        :mod:`repro.sim.lockstep`); ``None`` defers to ``$REPRO_LOCKSTEP``
        (default: enabled; forced off without the fast path).
        ``vectorized`` selects batched numpy execution of broadcast
        blocks on top of lockstep (see :mod:`repro.sim.vectorized`);
        ``None`` defers to ``$REPRO_VECTORIZED`` (default: enabled when
        lockstep is; off without it, and *requesting* it without
        lockstep raises :class:`~repro.errors.ConfigurationError`).
        Results are bit-identical across all four tiers.

        ``fault_plan`` injects failures into this run: its network faults
        are applied to the circuit allocator (with the extra stage
        enabled/bypassed per the plan, and the extra-stage transit
        penalty charged on every byte when enabled), and its fail-stopped
        PEs go silent at their strike times — detected at the next
        synchronization point within ``fault_plan.failstop_timeout``
        cycles via :class:`~repro.errors.PEFailStopError`."""
        self.config = config or PrototypeConfig.calibrated()
        self.partition = Partition(self.config, partition_size, first_mc)
        self.fault_plan = fault_plan
        self.fast_path = fast_path
        self.lockstep = resolve_lockstep(lockstep, resolve_fast_path(fast_path))
        self.vectorized = resolve_vectorized(vectorized, self.lockstep)
        if fault_plan is not None and fault_plan.failstops:
            physical = {
                self.partition.physical_pe(logical)
                for logical in range(self.partition.size)
            }
            outside = sorted(
                fs.pe for fs in fault_plan.failstops if fs.pe not in physical
            )
            if outside:
                raise ConfigurationError(
                    f"fail-stopped PE(s) {outside} are not in this "
                    f"partition (physical PEs {sorted(physical)})"
                )
        if shared is not None:
            if fault_plan is not None:
                raise ConfigurationError(
                    "fault plans apply to a whole physical machine; pass "
                    "the plan to the owner of the shared environment"
                )
            self.env, self.network, self.fabric = shared
        else:
            self.env = Environment()
            topo = ExtraStageCubeTopology(self.config.n_pes)
            extra_enabled = (fault_plan.extra_stage_enabled
                             if fault_plan is not None else False)
            byte_latency = self.config.net_byte_latency
            if extra_enabled:
                byte_latency += self.config.net_extra_stage_cycles
            self.network = CircuitSwitchedNetwork(
                topo,
                extra_stage_enabled=extra_enabled,
                faults=set(fault_plan.network_faults())
                if fault_plan is not None else set(),
                setup_cycles=self.config.net_setup_cycles,
            )
            self.fabric = NetworkFabric(
                self.env, self.network, byte_latency=byte_latency,
            )

        # Fetch Units and MCs, one per partition MC.
        self.masks: dict[int, MaskRegister] = {}
        self.queues: dict[int, FetchUnitQueue] = {}
        self.controllers: dict[int, FetchUnitController] = {}
        self.mcs: dict[int, MicroController] = {}
        for mc in self.partition.mcs:
            slots = tuple(self.partition.logical_pes_of_mc(mc))
            mask = MaskRegister(slots)
            queue = FetchUnitQueue(
                self.env, self.config.queue_capacity_words, name=f"fuq{mc}",
                lockstep=self.lockstep,
            )
            controller = FetchUnitController(
                self.env,
                queue,
                mask,
                cycles_per_word=self.config.controller_cycles_per_word,
                name=f"fuc{mc}",
            )
            self.masks[mc] = mask
            self.queues[mc] = queue
            self.controllers[mc] = controller
            self.mcs[mc] = MicroController(
                self.env, self.config, mask, controller, name=f"MC{mc}",
                batch_charges=self.lockstep,
            )

        # PEs, indexed by logical number.
        self.pes: list[ProcessingElement] = []
        for logical in range(self.partition.size):
            physical = self.partition.physical_pe(logical)
            mc = self.partition.mc_of_logical(logical)
            self.pes.append(
                ProcessingElement(
                    self.env,
                    self.config,
                    physical,
                    port=self.fabric.ports[physical],
                    queue=self.queues[mc],
                    pe_slot=logical,
                    fast_path=fast_path,
                    lockstep=self.lockstep,
                )
            )
        if self.vectorized:
            # Attach one vector executor per Fetch Unit Queue, holding
            # that queue's PE group keyed by logical slot.
            groups: dict[int, dict[int, ProcessingElement]] = {}
            for logical, pe in enumerate(self.pes):
                mc = self.partition.mc_of_logical(logical)
                groups.setdefault(mc, {})[logical] = pe
            for mc, pes in groups.items():
                self.queues[mc]._vec = VectorExecutor(
                    self.queues[mc], pes, self.config
                )
        self._net_setup_cycles = 0.0

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        return self.partition.size

    def pe(self, logical: int) -> ProcessingElement:
        return self.pes[logical]

    def enable_tracing(self) -> None:
        """Arm per-instruction and bus-wait tracing on every PE.

        Turns on :attr:`repro.m68k.cpu.CPU.trace` (per-instruction
        :class:`~repro.m68k.cpu.InstructionRecord` s) and the PE bus's
        wait-span recording, the data behind the exported per-PE trace
        lanes (see :mod:`repro.obs.simtrace`).  Call before running a
        workload; off by default because the record lists cost memory
        and per-instruction appends.
        """
        for pe in self.pes:
            pe.cpu.trace = True
            pe.bus.trace_waits = True

    def connect_shift_circuit(self) -> None:
        """Establish the algorithm's single network setting.

        PE i sends to PE (i-1) mod p for the whole run; the set-up cost is
        recorded but, as in the paper, excluded from execution time.
        """
        mapping = self.partition.shift_permutation()
        self._circuits = self.fabric.connect_permutation(mapping)
        self._net_setup_cycles = self.network.setup_cycles

    def connect_logical_permutation(self, mapping: dict[int, int]) -> None:
        """Establish circuits for a logical-PE permutation (one setting)."""
        physical = {
            self.partition.physical_pe(src): self.partition.physical_pe(dst)
            for src, dst in mapping.items()
        }
        self._circuits = self.fabric.connect_permutation(physical)
        self._net_setup_cycles += self.network.setup_cycles

    def disconnect_circuits(self) -> None:
        """Tear down the current circuit setting (must be idle)."""
        for circuit in getattr(self, "_circuits", []):
            self.fabric.disconnect(circuit)
        self._circuits = []

    def run_staged_smimd(
        self,
        stages: list[tuple[list[AssembledProgram], dict[int, int], int]],
        *,
        charge_setup: bool = True,
    ) -> MachineResult:
        """Run S/MIMD stages with network reconfiguration between them.

        Each stage is ``(per-PE programs, logical permutation,
        sync_words)``.  Unlike the matrix multiplication — designed so one
        circuit setting lasts the whole run — staged algorithms (e.g.
        recursive doubling) pay the circuit-switched network's set-up cost
        at every stage; with ``charge_setup`` the cost is charged in
        simulated time, making the paper's "time consuming operation"
        remark measurable.  PE *memory* carries across stages (registers
        are reset with each stage's program load).

        Returns one result for the whole staged run; its ``cycles`` is the
        wall makespan including the reconfiguration windows, and
        ``net_setup_cycles`` totals the charged set-up time.
        """
        setup_charged = 0.0
        self._staged = True
        for programs, mapping, sync_words in stages:
            self.disconnect_circuits()
            if charge_setup and mapping:
                self.env.run(until=self.env.timeout(
                    self.config.net_setup_cycles))
                setup_charged += self.config.net_setup_cycles
            if mapping:
                self.connect_logical_permutation(mapping)
            done = self.start_smimd(programs, sync_words)
            self._watched_run(done)
        result = self._collect(ExecutionMode.SMIMD)
        result.cycles = self.env.now  # wall time incl. reconfiguration
        result.net_setup_cycles = setup_charged
        return result

    # ------------------------------------------------------------------
    def _collect(self, mode: ExecutionMode) -> MachineResult:
        per_pe_cycles = {}
        per_pe_categories = {}
        instructions = 0
        for logical, pe in enumerate(self.pes):
            per_pe_categories[logical] = dict(pe.cpu.category_cycles)
            per_pe_cycles[logical] = sum(pe.cpu.category_cycles.values())
            instructions += pe.cpu.instruction_count
        queue_stats = {
            mc: {
                "releases": q.releases,
                "words_enqueued": q.words_enqueued,
                "high_water": q.high_water,
                "empty_stall_cycles": q.empty_stall_cycles,
            }
            for mc, q in self.queues.items()
        }
        mc_stats = {
            mc: {"busy_cycles": m.busy_cycles, "blocked_cycles": m.blocked_cycles}
            for mc, m in self.mcs.items()
        }
        return MachineResult(
            mode=mode,
            p=self.p,
            # The makespan is the last PE's finish time (== env.now for a
            # single VM, but not when other virtual machines share the
            # environment).
            cycles=max(per_pe_cycles.values(), default=self.env.now),
            per_pe_cycles=per_pe_cycles,
            per_pe_categories=per_pe_categories,
            instructions=instructions,
            queue_stats=queue_stats,
            net_setup_cycles=self._net_setup_cycles,
            mc_stats=mc_stats,
        )

    @property
    def rerouted_circuits(self) -> int:
        """Circuits of the current setting routed via the exchanged extra
        stage — non-zero only in degraded (fault-routing) operation."""
        return sum(
            1 for c in getattr(self, "_circuits", [])
            if c.path.extra_exchanged
        )

    def _start_pes(self):
        if getattr(self, "_started", False) and not getattr(
            self, "_staged", False
        ):
            raise ConfigurationError(
                "this PASMMachine already ran a workload; simulated time "
                "is monotonic — create a fresh machine per run (or use "
                "run_staged_smimd / PartitionedMachine for multi-phase work)"
            )
        self._started = True
        strikes: dict[int, float] = {}
        if self.fault_plan is not None:
            strikes = {fs.pe: fs.at for fs in self.fault_plan.failstops}
        procs = []
        for pe in self.pes:
            at = strikes.get(pe.physical_id)
            if at is None:
                procs.append(pe.run_process())
                continue
            proc = self.env.process(
                self._mortal(pe), name=f"PE{pe.physical_id}"
            )
            self.env.process(
                self._assassin(proc, at, pe),
                name=f"failstop:PE{pe.physical_id}",
            )
            procs.append(proc)
        return AllOf(self.env, procs)

    def _mortal(self, pe: ProcessingElement):
        """Run a PE that may fail-stop: after the kill signal the board goes
        silent forever (its process never completes, and any stale event
        callback that still resumes it is absorbed without side effects)."""
        try:
            yield from pe.cpu.run()
        except _FailStopSignal:
            while True:
                yield self.env.event(name=f"dead:PE{pe.physical_id}")

    def _assassin(self, proc, at: float, pe: ProcessingElement):
        yield self.env.timeout(at)
        if not proc.triggered:
            queue = pe.bus.queue
            if self.lockstep and queue is not None and queue._vec is not None:
                # Deliver any live vector batch *before* the strike: the
                # victim — still alive — re-parks at its exact stamp, so
                # the queue and PE state the fail-stop semantics below
                # operate on is the scalar-lockstep state, word for word.
                queue._vec.flush(queue)
            proc.interrupt(_FailStopSignal())
            if self.lockstep and queue is not None:
                # A stamped request whose arrival lies beyond the strike
                # never registered in the event schedule (the PE died
                # mid-charge): withdraw it so it cannot complete a mask.
                queue.cancel_lockstep_request(pe.bus.pe_slot, after=at)

    def _watched_run(self, done) -> None:
        """Advance the simulation to ``done``, bounding the wait on dead PEs.

        Without fail-stops this is exactly ``env.run(until=done)``.  With
        them, a dead PE poisons the next synchronization point (SIMD
        broadcast, S/MIMD barrier, blocking transfer) and the run would
        either deadlock or spin on housekeeping events forever; this loop
        detects both — the event queue draining, or simulated time passing
        the last strike plus ``failstop_timeout`` — and raises a
        structured :class:`~repro.errors.PEFailStopError` instead.
        """
        plan = self.fault_plan
        if plan is None or not plan.failstops:
            self.env.run(until=done)
            return
        env = self.env
        deadline = max(fs.at for fs in plan.failstops) + plan.failstop_timeout
        while not done.processed:
            nxt = env.peek()
            if nxt == float("inf") or nxt > deadline:
                if nxt == float("inf"):
                    # Lockstep: surviving PEs' unflushed arrivals are real
                    # time in the event schedule (their flush sleeps would
                    # have advanced the clock before the heap drained).
                    virtual = env.now
                    for q in self.queues.values():
                        a = q.pending_arrival_max()
                        if a > virtual:
                            virtual = a
                        h = q.stall_horizon()
                        if h > virtual:
                            virtual = h
                    detected = deadline if virtual > deadline else virtual
                else:
                    detected = deadline
                dead = tuple(sorted(
                    fs.pe for fs in plan.failstops if fs.at <= detected
                ))
                if not dead:  # quiescent before any strike: a real deadlock
                    raise DeadlockError(
                        f"simulation deadlocked waiting for {done!r} "
                        f"at t={env.now}"
                    )
                names = ", ".join(f"PE{pe}" for pe in dead)
                raise PEFailStopError(
                    f"fail-stopped {names} never reached the next "
                    f"synchronization point (detected at t={detected:.0f}, "
                    f"bounded wait {plan.failstop_timeout:.0f} cycles past "
                    f"the last strike)",
                    pes=dead,
                    detected_at=detected,
                    timeout=plan.failstop_timeout,
                )
            env.step()
        if not done.ok:
            raise done.value

    def _run(self, mode: ExecutionMode, done) -> MachineResult:
        self._watched_run(done)
        return self._collect(mode)

    # ------------------------------------------------------------------
    # start_* methods load a workload and return its completion event
    # without advancing simulated time, so several virtual machines can be
    # armed on a shared environment before anything runs.  The run_*
    # convenience wrappers start, run to completion, and collect.
    def start_serial(self, program: AssembledProgram):
        if self.p != 1:
            raise ConfigurationError(
                f"serial runs use a size-1 partition, not {self.p}"
            )
        self.pes[0].load_program(program)
        return self._start_pes()

    def run_serial(self, program: AssembledProgram) -> MachineResult:
        """SISD baseline: the whole problem on one PE."""
        return self._run(ExecutionMode.SERIAL, self.start_serial(program))

    def start_mimd(self, programs: list[AssembledProgram]):
        self._check_program_count(programs)
        for pe, prog in zip(self.pes, programs):
            pe.load_program(prog)
        return self._start_pes()

    def run_mimd(self, programs: list[AssembledProgram]) -> MachineResult:
        """Pure MIMD: every PE runs its own program asynchronously."""
        return self._run(ExecutionMode.MIMD, self.start_mimd(programs))

    def start_smimd(self, programs: list[AssembledProgram], sync_words: int):
        self._check_program_count(programs)
        for pe, prog in zip(self.pes, programs):
            pe.load_program(prog)
        for mc in self.partition.mcs:
            queue = self.queues[mc]
            mask = self.masks[mc]
            remaining = sync_words
            while remaining and queue.try_enqueue(sync_item(mask.enabled)):
                remaining -= 1
            if remaining:
                self.env.process(
                    self._sync_feeder(queue, mask, remaining),
                    name=f"syncfeed{mc}",
                )
        return self._start_pes()

    def run_smimd(
        self, programs: list[AssembledProgram], sync_words: int
    ) -> MachineResult:
        """Hybrid S/MIMD: MIMD programs + queue-based barriers.

        ``sync_words`` barrier tokens per MC group are made available
        (pre-enqueued up to queue capacity, topped up by a zero-cost feeder
        standing in for the otherwise-idle MC, as Section 3 describes).
        """
        return self._run(
            ExecutionMode.SMIMD, self.start_smimd(programs, sync_words)
        )

    def _sync_feeder(self, queue, mask, remaining: int):
        for _ in range(remaining):
            yield from queue.enqueue(sync_item(mask.enabled))

    def start_simd(
        self,
        mc_program: list[MCOp] | tuple[MCOp, ...],
        blocks: dict[str, list[Instruction]],
        data_programs: list[AssembledProgram] | None = None,
    ):
        if data_programs is not None:
            self._check_program_count(data_programs)
            for pe, prog in zip(self.pes, data_programs):
                pe.bus.load_program(prog)
        for controller in self.controllers.values():
            for name, instrs in blocks.items():
                controller.register_block(name, instrs)
        for pe in self.pes:
            pe.enter_simd_mode()
        for mc_id in self.partition.mcs:
            mc = self.mcs[mc_id]
            self.env.process(mc.run_program(mc_program), name=f"MC{mc_id}")
        return self._start_pes()

    def start_simd_assembly(
        self,
        mc_program: AssembledProgram,
        blocks: dict[str, list[Instruction]],
        block_ids: dict[int, str],
        data_programs: list[AssembledProgram] | None = None,
    ):
        """Arm a SIMD run whose MCs execute *real assembled 68000 code*.

        ``mc_program`` drives the Fetch Unit through the memory-mapped
        registers of :mod:`repro.mc.assembly_mc`; ``block_ids`` maps the
        program's FUCTRL values to registered block names.
        """
        from repro.mc.assembly_mc import AssemblyMicroController

        if data_programs is not None:
            self._check_program_count(data_programs)
            for pe, prog in zip(self.pes, data_programs):
                pe.bus.load_program(prog)
        for controller in self.controllers.values():
            for name, instrs in blocks.items():
                controller.register_block(name, instrs)
        for pe in self.pes:
            pe.enter_simd_mode()
        self.assembly_mcs = {}
        for mc_id in self.partition.mcs:
            amc = AssemblyMicroController(
                self.env, self.config, self.masks[mc_id],
                self.controllers[mc_id], block_ids, name=f"MCasm{mc_id}",
                fast_path=self.fast_path,
            )
            amc.load_program(mc_program)
            amc.run_process()
            self.assembly_mcs[mc_id] = amc
        return self._start_pes()

    def run_simd_assembly(
        self,
        mc_program: AssembledProgram,
        blocks: dict[str, list[Instruction]],
        block_ids: dict[int, str],
        data_programs: list[AssembledProgram] | None = None,
    ) -> MachineResult:
        """SIMD with MCs running assembled code; see start_simd_assembly."""
        return self._run(
            ExecutionMode.SIMD,
            self.start_simd_assembly(mc_program, blocks, block_ids,
                                     data_programs),
        )

    def run_simd(
        self,
        mc_program: list[MCOp] | tuple[MCOp, ...],
        blocks: dict[str, list[Instruction]],
        data_programs: list[AssembledProgram] | None = None,
    ) -> MachineResult:
        """SIMD: PEs consume broadcast instructions; MCs run control flow.

        Parameters
        ----------
        mc_program:
            The control program, executed identically by every partition MC
            (each drives its own Fetch Unit, so groups may drift by data-
            dependent amounts — exactly as on the prototype).
        blocks:
            Straight-line instruction blocks to register in Fetch Unit RAM.
        data_programs:
            Optional per-PE programs whose *data segments* are loaded into
            PE memory (their text, if any, is ignored by SIMD execution).
        """
        return self._run(
            ExecutionMode.SIMD,
            self.start_simd(mc_program, blocks, data_programs),
        )

    def _check_program_count(self, programs) -> None:
        if len(programs) != self.p:
            raise ConfigurationError(
                f"need {self.p} per-PE programs, got {len(programs)}"
            )
