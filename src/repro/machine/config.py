"""Machine configuration: the calibrated physical constants of the prototype.

First-principles values (the MC68000 manual, the paper's Section 3) are
defaults here; the handful of constants the paper does not publish (queue
depth, network transport latency, refresh residue) are *calibrated* by
:mod:`repro.timing_model.calibration` so the model reproduces the paper's
reported shapes, and the calibrated values are frozen into
:func:`PrototypeConfig.calibrated`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.memory.dram import RefreshModel
from repro.memory.map import MemoryMap, Region, RegionKind


@dataclass(frozen=True)
class PrototypeConfig:
    """Physical parameters of the simulated PASM prototype.

    Attributes
    ----------
    n_pes, n_mcs:
        Parallel Computation Unit size.  The prototype: N=16, Q=4 (each MC
        controls N/Q = 4 PEs; PE *p* belongs to MC *p mod Q*).
    ws_main:
        Wait states per 16-bit access to PE/MC main memory (DRAM).  The
        Fetch Unit Queue is static RAM needing "one less wait state", i.e.
        ``ws_queue = ws_main - 1`` in the prototype.
    ws_queue:
        Wait states per queue fetch access.
    ws_device:
        Wait states on memory-mapped device accesses (network registers,
        timer).
    refresh:
        Residual visible DRAM refresh (mostly hidden by the hardware).
    queue_capacity_words:
        Fetch Unit Queue depth in 16-bit words.
    controller_cycles_per_word:
        Fetch Unit Controller transfer rate from Fetch Unit RAM.
    net_byte_latency:
        Transport cycles for one byte through an established circuit.
    net_extra_stage_cycles:
        Extra transport cycles per byte when the Extra Stage is enabled
        (degraded, fault-routing operation) instead of bypassed.
    net_setup_cycles:
        One-time circuit establishment cost ("a time consuming operation",
        but incurred once per run by the algorithm's design).
    ram_size:
        Per-PE main memory size in bytes.
    """

    n_pes: int = 16
    n_mcs: int = 4
    ws_main: int = 1
    ws_queue: int = 0
    ws_device: int = 1
    # Effective cost of reading the network status register, in wait
    # states.  The prototype's MIMD programs poll this port before every
    # network access; its access time is not published and is calibrated
    # against the paper's reported MIMD efficiency: with 104 the model
    # gives MIMD ≈ 0.871 and S/MIMD ≈ 0.963 at n=256, p=4, matching the
    # paper's 87% / 96%.  See EXPERIMENTS.md for the fit.
    ws_status: int = 104
    refresh: RefreshModel = field(default_factory=lambda: RefreshModel(250, 2))
    queue_capacity_words: int = 128
    controller_cycles_per_word: int = 4
    net_byte_latency: int = 24
    # Additional transport cycles per byte when the Extra Stage is enabled
    # rather than bypassed: the byte traverses one more active interchange
    # box.  Charged by both engines in degraded (fault-routing) operation.
    net_extra_stage_cycles: int = 4
    net_setup_cycles: int = 2000
    ram_size: int = 0x8_0000  # 512 KiB
    # The SIMD space is generous because the PE's PC walks forward through
    # it while consuming broadcast instructions (the queue ignores the
    # address); 8 MiB covers every micro-engine run by a wide margin.
    simd_space_base: int = 0x40_0000
    simd_space_size: int = 0x80_0000
    net_tx_addr: int = 0xF0_0000
    net_rx_addr: int = 0xF0_0002
    net_status_addr: int = 0xF0_0004
    timer_addr: int = 0xF1_0000

    def __post_init__(self) -> None:
        if self.n_pes % self.n_mcs:
            raise ConfigurationError(
                f"n_pes ({self.n_pes}) must be a multiple of n_mcs ({self.n_mcs})"
            )
        if self.n_pes & (self.n_pes - 1):
            raise ConfigurationError(f"n_pes must be a power of two, {self.n_pes}")
        if self.ws_queue > self.ws_main:
            raise ConfigurationError(
                "queue cannot be slower than main memory (ws_queue > ws_main)"
            )

    @property
    def pes_per_mc(self) -> int:
        return self.n_pes // self.n_mcs

    def mc_of_pe(self, physical_pe: int) -> int:
        """The MC controlling a physical PE (PE p belongs to MC p mod Q)."""
        return physical_pe % self.n_mcs

    def pes_of_mc(self, mc: int) -> list[int]:
        return [mc + k * self.n_mcs for k in range(self.pes_per_mc)]

    def memory_map(self) -> MemoryMap:
        """The PE-visible address map."""
        return MemoryMap(
            [
                Region(RegionKind.MAIN_RAM, 0, self.ram_size, self.ws_main),
                Region(
                    RegionKind.SIMD_SPACE,
                    self.simd_space_base,
                    self.simd_space_base + self.simd_space_size,
                    self.ws_queue,
                ),
                Region(RegionKind.NET_TX, self.net_tx_addr,
                       self.net_tx_addr + 2, self.ws_device),
                Region(RegionKind.NET_RX, self.net_rx_addr,
                       self.net_rx_addr + 2, self.ws_device),
                Region(RegionKind.NET_STATUS, self.net_status_addr,
                       self.net_status_addr + 2, self.ws_status),
                Region(RegionKind.TIMER, self.timer_addr,
                       self.timer_addr + 4, self.ws_device),
            ]
        )

    def device_symbols(self) -> dict[str, int]:
        """Symbols predefined for assembly programs."""
        return {
            "NETTX": self.net_tx_addr,
            "NETRX": self.net_rx_addr,
            "NETSTAT": self.net_status_addr,
            "SIMDSPACE": self.simd_space_base,
            "TIMER": self.timer_addr,
        }

    def with_overrides(self, **kwargs) -> "PrototypeConfig":
        """A copy with some parameters replaced (for sweeps/ablations)."""
        return replace(self, **kwargs)

    @classmethod
    def calibrated(cls) -> "PrototypeConfig":
        """The configuration calibrated against the paper's reported shapes.

        See ``repro.timing_model.calibration`` and EXPERIMENTS.md for the
        fitting procedure and targets.
        """
        return cls()
