"""Execution-mode enumeration shared across the library."""

from __future__ import annotations

import enum


class ExecutionMode(enum.Enum):
    """The four modes the paper compares (Sections 5–6)."""

    SERIAL = "serial"  #: SISD baseline on one PE
    SIMD = "simd"  #: broadcast instructions through the Fetch Unit Queue
    MIMD = "mimd"  #: fully asynchronous PEs, polled network transfers
    SMIMD = "smimd"  #: MIMD compute + SIMD-queue barrier synchronization

    @property
    def is_parallel(self) -> bool:
        return self is not ExecutionMode.SERIAL

    @property
    def label(self) -> str:
        return {
            ExecutionMode.SERIAL: "SISD",
            ExecutionMode.SIMD: "SIMD",
            ExecutionMode.MIMD: "MIMD",
            ExecutionMode.SMIMD: "S/MIMD",
        }[self]
