"""Partitioned operation: independent virtual machines on one PASM.

"The PASM (partitionable SIMD/MIMD) system is a dynamically reconfigurable
architecture in which the processors may be partitioned to form
independent virtual SIMD and/or MIMD machines of various sizes."  This
module provides that: a :class:`PartitionedMachine` owns the physical
substrate (one simulation environment, one Extra-Stage Cube fabric) and
hosts several :class:`~repro.machine.pasm.PASMMachine` virtual machines on
disjoint MC groups, running *concurrently* in simulated time.

Independence is architectural, not merely asserted: each VM has its own
MCs, Fetch Units, and PEs, and the cube network routes both VMs' circuits
simultaneously without conflict (tested), so co-resident workloads do not
change each other's timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.machine.config import PrototypeConfig
from repro.machine.modes import ExecutionMode
from repro.machine.pasm import MachineResult, PASMMachine
from repro.network import CircuitSwitchedNetwork, ExtraStageCubeTopology, NetworkFabric
from repro.sim import AllOf, Environment


@dataclass
class _Pending:
    vm: PASMMachine
    mode: ExecutionMode
    done: object


class PartitionedMachine:
    """The physical machine, hosting multiple virtual machines."""

    def __init__(self, config: PrototypeConfig | None = None) -> None:
        self.config = config or PrototypeConfig.calibrated()
        self.env = Environment()
        topo = ExtraStageCubeTopology(self.config.n_pes)
        self.network = CircuitSwitchedNetwork(
            topo, setup_cycles=self.config.net_setup_cycles
        )
        self.fabric = NetworkFabric(
            self.env, self.network, byte_latency=self.config.net_byte_latency
        )
        self.vms: list[PASMMachine] = []
        self._pending: list[_Pending] = []

    # ------------------------------------------------------------------
    def new_vm(self, size: int, first_mc: int) -> PASMMachine:
        """Create a virtual machine of ``size`` PEs starting at ``first_mc``.

        MC groups must not overlap an existing VM's.
        """
        candidate = PASMMachine(
            self.config, size, first_mc,
            shared=(self.env, self.network, self.fabric),
        )
        new_mcs = set(candidate.partition.mcs)
        for vm in self.vms:
            overlap = new_mcs & set(vm.partition.mcs)
            if overlap:
                raise PartitionError(
                    f"MC group(s) {sorted(overlap)} already belong to a "
                    "virtual machine"
                )
        self.vms.append(candidate)
        return candidate

    # ------------------------------------------------------------------
    def start(self, vm: PASMMachine, mode: ExecutionMode, *args, **kwargs):
        """Arm a workload on ``vm`` without advancing simulated time."""
        if vm not in self.vms:
            raise PartitionError("virtual machine does not belong here")
        starter = {
            ExecutionMode.SERIAL: vm.start_serial,
            ExecutionMode.MIMD: vm.start_mimd,
            ExecutionMode.SMIMD: vm.start_smimd,
            ExecutionMode.SIMD: vm.start_simd,
        }[mode]
        done = starter(*args, **kwargs)
        self._pending.append(_Pending(vm=vm, mode=mode, done=done))

    def run_all(self) -> dict[int, MachineResult]:
        """Run every armed workload to completion, concurrently.

        Returns results keyed by the VM's index in :attr:`vms`.
        """
        if not self._pending:
            raise PartitionError("no workloads armed; call start() first")
        self.env.run(
            until=AllOf(self.env, [p.done for p in self._pending])
        )
        results: dict[int, MachineResult] = {}
        for pending in self._pending:
            idx = self.vms.index(pending.vm)
            results[idx] = pending.vm._collect(pending.mode)
        self._pending.clear()
        return results
