"""Reproduction of every table and figure in the paper's evaluation.

One module per exhibit:

======== ====================================================== ===========
Exhibit  Content                                                Module
======== ====================================================== ===========
Table 1  Prototype raw performance (MIPS, SIMD vs MIMD)         table1
Fig. 6   Execution time vs problem size (p=8)                   fig6
Fig. 7   Execution time vs added multiplies (n=64, p=4)         fig7
Fig. 8   Time breakdown, 1 multiply per inner loop (p=4)        fig8_10
Fig. 9   Time breakdown at the crossover (p=4)                  fig8_10
Fig. 10  Time breakdown, 30 added multiplies (p=4)              fig8_10
Fig. 11  Efficiency vs problem size (p=4)                       fig11
Fig. 12  Efficiency vs number of PEs (n=64)                     fig12
======== ====================================================== ===========

Each experiment returns an :class:`~repro.experiments.results
.ExperimentResult` carrying the rows/series the paper reports plus
paper-vs-measured comparison notes; ``python -m repro.experiments.runner``
(or the ``pasm-experiments`` script) regenerates everything.

Figures use the macro engine (validated against the instruction-level
micro engine by the cross-engine test suite); Table 1 runs the micro
engine directly.
"""

from repro.experiments.faults_exhibit import run_ext_faults
from repro.experiments.results import ExperimentResult
from repro.experiments.sweeps import (
    crossover_confidence,
    sweep,
    sweep_to_csv,
)
from repro.experiments.table1 import run_table1
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8_10 import run_breakdown_figure
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12

__all__ = [
    "ExperimentResult",
    "run_table1",
    "run_fig6",
    "run_fig7",
    "run_breakdown_figure",
    "run_ext_faults",
    "run_fig11",
    "run_fig12",
    "sweep",
    "sweep_to_csv",
    "crossover_confidence",
]
