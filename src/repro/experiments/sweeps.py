"""Generic parameter sweeps and seed-replication utilities.

The paper reports single measurements; a model can do better.  This module
provides:

* :func:`sweep` — run a cartesian product of (mode, n, p, m) cells on a
  study and return long-format records ready for CSV/analysis;
* :func:`crossover_confidence` — replicate the Figure 7 crossover over
  independent data seeds and report the spread (the number we quote in
  EXPERIMENTS.md as "13.4 (12.7–13.9 across seeds)").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from statistics import mean, stdev

from repro.core import DecouplingStudy, find_crossover
from repro.machine import ExecutionMode, PrototypeConfig


@dataclass(frozen=True)
class SweepRecord:
    """One cell of a sweep, in long format."""

    mode: str
    n: int
    p: int
    added_multiplies: int
    cycles: float
    seconds: float
    engine: str
    breakdown: dict[str, float] = field(hash=False, default_factory=dict)


def sweep(
    study: DecouplingStudy,
    *,
    modes: tuple[ExecutionMode, ...] = (
        ExecutionMode.SIMD, ExecutionMode.SMIMD, ExecutionMode.MIMD,
    ),
    sizes: tuple[int, ...] = (16, 64, 256),
    processor_counts: tuple[int, ...] = (4,),
    added_multiplies: tuple[int, ...] = (0,),
    engine: str = "macro",
) -> list[SweepRecord]:
    """Run every (mode, n, p, m) combination; skip infeasible cells."""
    cells = []
    for mode, n, p, m in product(modes, sizes, processor_counts,
                                 added_multiplies):
        pp = 1 if mode is ExecutionMode.SERIAL else p
        if n < pp or n % pp:
            continue
        cells.append((mode, n, pp, m))
    # One batch through the execution engine: the whole cartesian product
    # fans out across cores when the study carries a pooled handle.
    study.prefetch((mode, n, pp, m, engine) for mode, n, pp, m in cells)
    records: list[SweepRecord] = []
    for mode, n, pp, m in cells:
        res = study.run(mode, n, pp, added_multiplies=m, engine=engine)
        records.append(
            SweepRecord(
                mode=mode.value, n=n, p=pp, added_multiplies=m,
                cycles=res.cycles, seconds=res.seconds,
                engine=res.engine, breakdown=dict(res.breakdown),
            )
        )
    return records


def sweep_to_csv(records: list[SweepRecord]) -> str:
    """Long-format CSV with one breakdown column per category."""
    categories = sorted({c for r in records for c in r.breakdown})
    header = ["mode", "n", "p", "added_multiplies", "cycles", "seconds",
              "engine"] + [f"cycles_{c}" for c in categories]
    lines = [",".join(header)]
    for r in records:
        row = [r.mode, r.n, r.p, r.added_multiplies, f"{r.cycles:.1f}",
               f"{r.seconds:.6f}", r.engine]
        row += [f"{r.breakdown.get(c, 0.0):.1f}" for c in categories]
        lines.append(",".join(str(x) for x in row))
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class CrossoverConfidence:
    """Crossover replicated over independent data seeds."""

    n: int
    p: int
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def std(self) -> float:
        return stdev(self.values) if len(self.values) > 1 else 0.0

    @property
    def spread(self) -> tuple[float, float]:
        return min(self.values), max(self.values)

    def __str__(self) -> str:
        lo, hi = self.spread
        return (
            f"crossover at n={self.n}, p={self.p}: {self.mean:.1f} ± "
            f"{self.std:.1f} added multiplies ({lo:.1f}–{hi:.1f} over "
            f"{len(self.values)} data seeds)"
        )


def crossover_confidence(
    config: PrototypeConfig | None = None,
    *,
    n: int = 64,
    p: int = 4,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 19880815),
    max_multiplies: int = 60,
    exec_engine=None,
) -> CrossoverConfidence:
    """Replicate the Figure 7 crossover over independent B data sets."""
    config = config or PrototypeConfig.calibrated()
    values = []
    for seed in seeds:
        study = DecouplingStudy(config, seed=seed, exec_engine=exec_engine)
        result = find_crossover(study, n=n, p=p,
                                max_multiplies=max_multiplies)
        if result.found:
            values.append(result.crossover)
    if not values:
        raise RuntimeError(
            f"no crossover found for any seed within {max_multiplies} "
            "added multiplies"
        )
    return CrossoverConfidence(n=n, p=p, values=tuple(values))
