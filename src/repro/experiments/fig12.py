"""Figure 12: efficiency vs number of processors, n=64, one multiply per
inner loop.

"Efficiency drops as the number of processors utilized increases": n/p
falls, so inter-processor communication and other non-serial costs loom
larger against each PE's shrinking computation share.
"""

from __future__ import annotations

from repro.core import DecouplingStudy
from repro.experiments.results import ExperimentResult
from repro.machine import ExecutionMode

PROCESSOR_COUNTS = (4, 8, 16)
MODES = (ExecutionMode.SIMD, ExecutionMode.SMIMD, ExecutionMode.MIMD)


def run_fig12(
    study: DecouplingStudy | None = None,
    *,
    n: int = 64,
    engine: str = "macro",
) -> ExperimentResult:
    study = study or DecouplingStudy()
    study.prefetch(
        [(ExecutionMode.SERIAL, n, 1, 0, engine)]
        + [(mode, n, p, 0, engine)
           for p in PROCESSOR_COUNTS for mode in MODES]
    )
    rows = []
    series: dict[str, list[tuple[float, float]]] = {m.label: [] for m in MODES}
    for p in PROCESSOR_COUNTS:
        row: list[object] = [p]
        for mode in MODES:
            eff = study.efficiency(mode, n, p, engine=engine)
            series[mode.label].append((p, eff))
            row.append(round(eff, 3))
        rows.append(tuple(row))

    return ExperimentResult(
        experiment_id="fig12",
        title=f"Efficiency vs number of PEs, n={n}, one multiply per inner loop",
        headers=["p", "SIMD", "S/MIMD", "MIMD"],
        rows=rows,
        series=series,
        paper_says=(
            "efficiency drops as p increases: n/p falls, making "
            "communication and other non-serial factors more significant"
        ),
        we_measure=(
            "every mode's efficiency is monotonically decreasing in p: "
            + "; ".join(
                f"{mode.label} {rows[0][i+1]} -> {rows[-1][i+1]}"
                for i, mode in enumerate(MODES)
            )
        ),
    )
