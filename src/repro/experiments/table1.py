"""Table 1: prototype raw performance in MIPS, SIMD vs MIMD.

The paper measured "repeated blocks of straight line code ... large enough
to make the loop control overlap insignificant" for two instruction
types.  We reproduce the measurement on the micro engine with 16 PEs:
register-to-register ``ADD.W`` and memory-to-register ``MOVE.W d(An),Dn``
blocks, executed from the Fetch Unit Queue (SIMD) and from PE main memory
(MIMD).

The published table's absolute numbers are not recoverable from the text
(the table is an image in surviving copies); the reproduced *shape* — SIMD
faster than MIMD for both instruction types, by more for memory-touching
instructions in relative fetch terms — is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from repro.experiments.results import ExperimentResult
from repro.m68k.assembler import assemble
from repro.m68k.timing import CLOCK_HZ
from repro.machine import PASMMachine, PrototypeConfig
from repro.mc import EnqueueBlock, Loop

#: Instruction types measured (label, one-instruction source).
INSTRUCTION_TYPES = (
    ("ADD.W Dn,Dn (register)", "        ADD.W D1,D2"),
    ("MOVE.W d(An),Dn (memory)", "        MOVE.W 2(A0),D2"),
)

#: Straight-line repetitions per measurement block.
BLOCK_REPEATS = 64
#: Blocks issued per run.
BLOCKS = 8


def _measure_simd(config: PrototypeConfig, source: str) -> float:
    """Instructions per second across all PEs, SIMD broadcast."""
    machine = PASMMachine(config, partition_size=config.n_pes)
    block = assemble(source * 1, predefined=config.device_symbols())
    instrs = block.instruction_list() * BLOCK_REPEATS
    blocks = {
        "meas": instrs,
        "fini": assemble("        HALT").instruction_list(),
    }
    result = machine.run_simd(
        [Loop(BLOCKS, (EnqueueBlock("meas"),)), EnqueueBlock("fini")], blocks
    )
    executed = BLOCK_REPEATS * BLOCKS * config.n_pes
    return executed / result.seconds


def _measure_mimd(config: PrototypeConfig, source: str) -> float:
    """Instructions per second across all PEs, MIMD from main memory."""
    machine = PASMMachine(config, partition_size=config.n_pes)
    body = (source + "\n") * (BLOCK_REPEATS * BLOCKS)
    program = assemble(
        body + "        HALT", predefined=config.device_symbols()
    )
    result = machine.run_mimd([program] * config.n_pes)
    # Exclude the HALT from the count, as the paper's loop control was.
    executed = BLOCK_REPEATS * BLOCKS * config.n_pes
    halt_share = 1 / (BLOCK_REPEATS * BLOCKS + 1)
    return executed / (result.seconds * (1 - halt_share))


def run_table1(config: PrototypeConfig | None = None) -> ExperimentResult:
    """Reproduce Table 1 (MIPS = millions of instructions per second)."""
    config = config or PrototypeConfig.calibrated()
    rows = []
    for label, source in INSTRUCTION_TYPES:
        simd_mips = _measure_simd(config, source) / 1e6
        mimd_mips = _measure_mimd(config, source) / 1e6
        rows.append(
            (label, round(simd_mips, 2), round(mimd_mips, 2),
             round(simd_mips / mimd_mips, 3))
        )
    peak = config.n_pes * CLOCK_HZ / 4 / 1e6  # 4-cycle instructions
    return ExperimentResult(
        experiment_id="table1",
        title=f"Prototype raw performance, {config.n_pes} PEs "
              f"(theoretical register-op peak {peak:.0f} MIPS)",
        headers=["instruction type", "SIMD MIPS", "MIMD MIPS", "SIMD/MIMD"],
        rows=rows,
        paper_says=(
            "SIMD outperforms MIMD for both instruction types: queue "
            "fetches need one less wait state and see no DRAM refresh."
        ),
        we_measure=(
            f"SIMD/MIMD = {rows[0][3]}x (register) and {rows[1][3]}x "
            "(memory); the advantage comes entirely from instruction "
            "fetch, so it is largest for short register instructions."
        ),
    )
