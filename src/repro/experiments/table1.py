"""Table 1: prototype raw performance in MIPS, SIMD vs MIMD.

The paper measured "repeated blocks of straight line code ... large enough
to make the loop control overlap insignificant" for two instruction
types.  We reproduce the measurement on the micro engine with 16 PEs:
register-to-register ``ADD.W`` and memory-to-register ``MOVE.W d(An),Dn``
blocks, executed from the Fetch Unit Queue (SIMD) and from PE main memory
(MIMD).

The published table's absolute numbers are not recoverable from the text
(the table is an image in surviving copies); the reproduced *shape* — SIMD
faster than MIMD for both instruction types, by more for memory-touching
instructions in relative fetch terms — is what EXPERIMENTS.md records.

The four measurements are independent micro-engine runs, so they are
scheduled as :class:`~repro.exec.SimJobSpec` jobs through the execution
engine (program ``"mips"``, implemented in :mod:`repro.exec.jobs`): a
pooled handle runs them concurrently and a cached handle skips them on
re-runs.
"""

from __future__ import annotations

from repro.exec import ExecutionEngine, mips_spec
from repro.exec.jobs import BLOCK_REPEATS, BLOCKS  # noqa: F401  (re-export)
from repro.experiments.results import ExperimentResult
from repro.m68k.timing import CLOCK_HZ
from repro.machine import PrototypeConfig

#: Instruction types measured (label, one-instruction source).
INSTRUCTION_TYPES = (
    ("ADD.W Dn,Dn (register)", "        ADD.W D1,D2"),
    ("MOVE.W d(An),Dn (memory)", "        MOVE.W 2(A0),D2"),
)


def run_table1(
    config: PrototypeConfig | None = None,
    *,
    exec_engine: ExecutionEngine | None = None,
) -> ExperimentResult:
    """Reproduce Table 1 (MIPS = millions of instructions per second)."""
    config = config or PrototypeConfig.calibrated()
    engine = exec_engine or ExecutionEngine(jobs=1)
    specs = [
        mips_spec(variant, source, config=config)
        for _, source in INSTRUCTION_TYPES
        for variant in ("simd", "mimd")
    ]
    payloads = engine.run(specs)
    rows = []
    for i, (label, _) in enumerate(INSTRUCTION_TYPES):
        simd_mips = payloads[2 * i]["ips"] / 1e6
        mimd_mips = payloads[2 * i + 1]["ips"] / 1e6
        rows.append(
            (label, round(simd_mips, 2), round(mimd_mips, 2),
             round(simd_mips / mimd_mips, 3))
        )
    peak = config.n_pes * CLOCK_HZ / 4 / 1e6  # 4-cycle instructions
    return ExperimentResult(
        experiment_id="table1",
        title=f"Prototype raw performance, {config.n_pes} PEs "
              f"(theoretical register-op peak {peak:.0f} MIPS)",
        headers=["instruction type", "SIMD MIPS", "MIMD MIPS", "SIMD/MIMD"],
        rows=rows,
        paper_says=(
            "SIMD outperforms MIMD for both instruction types: queue "
            "fetches need one less wait state and see no DRAM refresh."
        ),
        we_measure=(
            f"SIMD/MIMD = {rows[0][3]}x (register) and {rows[1][3]}x "
            "(memory); the advantage comes entirely from instruction "
            "fetch, so it is largest for short register instructions."
        ),
    )
