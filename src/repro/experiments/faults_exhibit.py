"""ext-faults: the Extra-Stage Cube's fault tolerance, end to end.

The PASM prototype's interconnection network is an Extra-Stage Cube
precisely because board-level faults were expected; Adams & Siegel's
design claim is that *any* single interchange-box or inter-stage-link
fault leaves every (source, destination) pair routable once the extra
stage is enabled.  This exhibit puts the claim under exhaustive test at
three network sizes and then measures what fault-routing operation costs:

* **single-fault sweep** — every box fault (all stages, the extra stage
  included) and every inter-stage link fault, injected one at a time;
  full N×N routability must survive all of them (the 100% column);
* **shift setting** — how often the matmul's one circuit setting
  (PE i → PE i−1 mod N) still goes up in a *single* conflict-free pass,
  a stronger property than the per-pair guarantee (reported, not
  promised by the design);
* **double faults** — survival beyond the guarantee, exhaustive where
  the pair count allows and deterministically sampled above that;
* **degraded matmul** — the paper's n=64 S/MIMD multiplication timed
  fault-free and under a representative single fault with the extra
  stage enabled (every byte crosses one more active box).

All heavy work is scheduled through the execution engine as
content-hashed jobs, so the exhibit caches and fans out like the rest
of the suite and is bit-identical at any ``--jobs`` setting.
"""

from __future__ import annotations

from repro.core import DecouplingStudy
from repro.exec import ExecutionEngine, faultsweep_spec, matmul_spec
from repro.experiments.results import ExperimentResult
from repro.faults import representative_fault_plan
from repro.machine import ExecutionMode
from repro.machine.partition import Partition
from repro.network import ExtraStageCubeTopology

#: Network sizes the sweeps run at (the prototype's N=16 and the two
#: smaller ESCs its partitions emulate).
SWEEP_SIZES = (4, 8, 16)

#: Problem size of the degraded-mode matmul comparison.
DEGRADED_N = 64

#: Double-fault sample size for networks too large to sweep exhaustively.
DOUBLE_SAMPLES = 500


def run_ext_faults(study: DecouplingStudy | None = None) -> ExperimentResult:
    """Run the fault campaign; see the module docstring for the design."""
    study = study or DecouplingStudy()
    engine = study.exec_engine or ExecutionEngine(jobs=1)
    config = study.config

    # One representative degraded plan per partition size: the first
    # single fault that disturbs the shift setting's straight routes yet
    # leaves the whole ring allocatable with the extra stage enabled.
    topo = ExtraStageCubeTopology(config.n_pes)
    plans = {
        p: representative_fault_plan(
            topo, Partition(config, p).shift_permutation()
        )
        for p in SWEEP_SIZES
    }

    # Batch every job through the engine in one submission so ``--jobs N``
    # genuinely overlaps the sweeps with the matmul runs.
    sweep_specs = {
        p: faultsweep_spec(p, double_samples=DOUBLE_SAMPLES, seed=study.seed,
                           config=config)
        for p in SWEEP_SIZES
    }
    clean_specs = {
        p: matmul_spec(ExecutionMode.SMIMD, DEGRADED_N, p, engine="macro",
                       seed=study.seed, b_max=study.b_max, config=config)
        for p in SWEEP_SIZES
    }
    degraded_specs = {
        p: matmul_spec(ExecutionMode.SMIMD, DEGRADED_N, p, engine="macro",
                       seed=study.seed, b_max=study.b_max, config=config,
                       fault_plan=plans[p])
        for p in SWEEP_SIZES
    }
    # Micro-engine witness: a small degraded run whose product is checked
    # element for element and whose circuits provably rerouted.
    micro_spec = matmul_spec(ExecutionMode.SMIMD, 16, 4, engine="micro",
                             seed=study.seed, b_max=study.b_max,
                             config=config, fault_plan=plans[4])

    ordered = (
        [sweep_specs[p] for p in SWEEP_SIZES]
        + [clean_specs[p] for p in SWEEP_SIZES]
        + [degraded_specs[p] for p in SWEEP_SIZES]
        + [micro_spec]
    )
    payloads = dict(zip(
        [spec.content_hash for spec in ordered], engine.run(ordered)
    ))

    rows = []
    total_faults = 0
    worst_routability = 100.0
    for p in SWEEP_SIZES:
        sweep = payloads[sweep_specs[p].content_hash]
        single, double = sweep["single"], sweep["double"]
        clean = payloads[clean_specs[p].content_hash]["cycles"]
        degraded = payloads[degraded_specs[p].content_hash]["cycles"]
        total_faults += single["combos"]
        worst_routability = min(worst_routability, single["routability_pct"])
        rows.append((
            p,
            single["combos"],
            single["routability_pct"],
            single["shift_pct"],
            double["combos"],
            "yes" if double["exhaustive"] else f"no ({DOUBLE_SAMPLES})",
            double["survival_pct"],
            round(clean, 1),
            round(degraded, 1),
            round(degraded / clean, 4),
        ))

    micro = payloads[micro_spec.content_hash]
    d16 = payloads[sweep_specs[16].content_hash]["double"]
    return ExperimentResult(
        experiment_id="ext-faults",
        title="Extra-Stage Cube fault campaign "
              f"(single faults exhaustive at N={list(SWEEP_SIZES)})",
        headers=["p", "faults", "routable %", "1-setting shift %",
                 "2-fault combos", "exhaustive", "2-fault survive %",
                 f"clean n={DEGRADED_N} (cyc)", "degraded (cyc)", "slowdown"],
        rows=rows,
        series={
            "double-fault survival %": [
                (float(p), payloads[sweep_specs[p].content_hash]
                 ["double"]["survival_pct"])
                for p in SWEEP_SIZES
            ],
        },
        paper_says=(
            "the prototype's Extra-Stage Cube was chosen for fault "
            "tolerance: one extra cube_0 stage makes the network "
            "single-fault tolerant (Adams & Siegel), at the price of one "
            "more box on every path when the extra stage is enabled"
        ),
        we_measure=(
            f"all {total_faults} single box/inter-stage-link faults across "
            f"N={list(SWEEP_SIZES)} leave every pair routable "
            f"({worst_routability:.0f}% — the guarantee holds exhaustively); "
            f"double faults survive in {d16['survival_pct']:.1f}% of sampled "
            f"pairs at N=16; the degraded-mode matmul pays no measurable "
            f"time (slowdown {rows[-1][-1]:.4f}) because the extra box's "
            f"transit adds {config.net_extra_stage_cycles} cycles/byte while "
            f"each element costs >100 cycles of software overhead — a "
            f"micro-engine witness run verified its product with "
            f"{micro['rerouted_circuits']} circuit(s) rerouted through the "
            f"exchanged extra stage"
        ),
    )
