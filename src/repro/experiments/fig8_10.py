"""Figures 8–10: contributions to execution time vs problem size, p=4.

The total is broken into (i) multiplication time (including related
address calculation and the C accumulate), (ii) communication time, and
(iii) other contributions (clearing C, pointer rotation), for SIMD and
S/MIMD at three points of the Figure 7 sweep:

* Figure 8 — one multiply per inner loop (0 added): multiplication grows
  as O(n³/p) vs communication's O(n²), so it dominates at large n, yet
  S/MIMD does not win because of SIMD's fetch/control advantages;
* Figure 9 — at the crossover (≈14 added): total times equal at n=64,
  with S/MIMD's smaller multiplication time offset by its communication;
* Figure 10 — 30 added multiplies: S/MIMD wins at large n and the gap
  widens with n.
"""

from __future__ import annotations

from repro.core import DecouplingStudy
from repro.experiments.results import ExperimentResult
from repro.machine import ExecutionMode

SIZES = (8, 16, 64, 128, 256)
#: (figure id, added multiplies) — the paper's three operating points.
FIGURE_POINTS = (("fig8", 0), ("fig9", 14), ("fig10", 30))
MODES = (ExecutionMode.SIMD, ExecutionMode.SMIMD)
#: Component order: mult / comm / everything else.
COMPONENTS = ("mult", "comm", "rest")


def _components(breakdown: dict[str, float]) -> tuple[float, float, float]:
    """Map raw timing categories onto the paper's three components.

    The paper's "multiplication time" includes "related address
    calculation operations" *and* the inner-loop bookkeeping: in the
    asynchronous modes the k-loop DBRA runs on the PE as part of every
    multiply-accumulate, and only with it included does the paper's
    Figure 9 reading hold (S/MIMD multiplication time dipping below
    SIMD's at the crossover, offset by communication).  We therefore fold
    the ``control`` category (loop bookkeeping — zero in SIMD, where the
    MC runs it) into the multiplication component, and ``sync``/``other``
    (barriers, clearing C, pointer rotation) into "other".
    """
    mult = breakdown.get("mult", 0.0) + breakdown.get("control", 0.0)
    comm = breakdown.get("comm", 0.0)
    rest = sum(
        v for k, v in breakdown.items()
        if k not in ("mult", "comm", "control")
    )
    return mult, comm, rest


def run_breakdown_figure(
    figure: str,
    study: DecouplingStudy | None = None,
    *,
    p: int = 4,
    engine: str = "macro",
) -> ExperimentResult:
    """Reproduce one of Figures 8/9/10 (``figure`` in {"fig8","fig9","fig10"})."""
    points = dict(FIGURE_POINTS)
    if figure not in points:
        raise ValueError(f"unknown breakdown figure {figure!r}")
    m = points[figure]
    study = study or DecouplingStudy()
    study.prefetch(
        (mode, n, p, m, engine) for n in SIZES for mode in MODES
    )

    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for n in SIZES:
        row: list[object] = [n]
        for mode in MODES:
            res = study.run(mode, n, p, added_multiplies=m, engine=engine)
            mult, comm, rest = _components(res.breakdown)
            for name, val in zip(COMPONENTS, (mult, comm, rest)):
                series.setdefault(f"{mode.label} {name}", []).append(
                    (n, max(val, 1e-9))
                )
            row += [round(v / 1e6, 4) for v in (mult, comm, rest)]
        rows.append(tuple(row))

    big = rows[-1]
    simd_mult, smimd_mult = big[1], big[4]
    return ExperimentResult(
        experiment_id=figure,
        title=f"Execution-time components (Mcycles) vs n, p={p}, "
              f"{m} added multiplies",
        headers=["n",
                 "SIMD mult", "SIMD comm", "SIMD other",
                 "S/MIMD mult", "S/MIMD comm", "S/MIMD other"],
        rows=rows,
        series=series,
        logx=True,
        logy=True,
        paper_says={
            "fig8": "multiplication outgrows communication (O(n³/p) vs "
                    "O(n²)) and dominates at large n; S/MIMD still loses "
                    "on fetch/control advantages",
            "fig9": "totals equal at n=64: S/MIMD's smaller multiplication "
                    "time is offset by its larger communication time",
            "fig10": "asynchronous multiplication advantage dominates: "
                     "S/MIMD faster at larger n, gap grows with n",
        }[figure],
        we_measure=(
            f"at n=256: SIMD mult={simd_mult} vs S/MIMD mult={smimd_mult} "
            f"Mcycles (S/MIMD mult {'smaller' if smimd_mult < simd_mult else 'larger'}); "
            f"comm: SIMD={big[2]} vs S/MIMD={big[5]} Mcycles"
        ),
    )


def run_fig8(study=None, **kw):
    return run_breakdown_figure("fig8", study, **kw)


def run_fig9(study=None, **kw):
    return run_breakdown_figure("fig9", study, **kw)


def run_fig10(study=None, **kw):
    return run_breakdown_figure("fig10", study, **kw)
