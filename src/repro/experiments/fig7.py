"""Figure 7: execution time vs number of added inner-loop multiplies,
n=64, p=4 — the decoupling crossover.

"These lines are disjoint at the endpoints with the SIMD version being
faster for small numbers of added multiplies and S/MIMD being faster as
the number ... is increased.  The point at which T_SIMD = T_S/MIMD was
with approximately fourteen added multiplications."
"""

from __future__ import annotations

from repro.core import DecouplingStudy, find_crossover
from repro.experiments.results import ExperimentResult


def run_fig7(
    study: DecouplingStudy | None = None,
    *,
    n: int = 64,
    p: int = 4,
    max_multiplies: int = 20,
    engine: str = "macro",
) -> ExperimentResult:
    study = study or DecouplingStudy()
    result = find_crossover(
        study, n=n, p=p, max_multiplies=max_multiplies, engine=engine
    )
    rows = [
        (m, round(t_simd / 1e6, 3), round(t_smimd / 1e6, 3),
         "S/MIMD" if t_smimd < t_simd else "SIMD")
        for m, t_simd, t_smimd in result.sweep
    ]
    series = {
        "SIMD": [(m, ts) for m, ts, _ in result.sweep],
        "S/MIMD": [(m, th) for m, _, th in result.sweep],
    }
    return ExperimentResult(
        experiment_id="fig7",
        title=f"Execution time vs added multiplies (n={n}, p={p})",
        headers=["added multiplies", "SIMD (Mcycles)", "S/MIMD (Mcycles)",
                 "faster"],
        rows=rows,
        series=series,
        paper_says="T_SIMD = T_S/MIMD at approximately 14 added multiplies",
        we_measure=(
            f"crossover at {result.crossover:.1f} added multiplies"
            if result.found
            else f"no crossover within {max_multiplies} added multiplies"
        ),
    )
