"""Structured experiment results with text/CSV rendering."""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.tables import ascii_plot, format_table


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        ``"table1"``, ``"fig6"``, … (the exhibit it reproduces).
    headers / rows:
        The tabular data (always present; figures are also tabulated).
    series:
        Named (x, y) series for figure-style exhibits.
    paper_says / we_measure:
        The comparison EXPERIMENTS.md records: the paper's qualitative/
        quantitative claims and what this reproduction measured.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    paper_says: str = ""
    we_measure: str = ""
    logx: bool = False
    logy: bool = False

    def render(self, *, plot: bool = True) -> str:
        """Full text rendering: table, optional ASCII plot, comparison."""
        out = io.StringIO()
        out.write(format_table(self.headers, self.rows,
                               title=f"{self.experiment_id}: {self.title}"))
        if plot and self.series:
            out.write("\n\n")
            out.write(
                ascii_plot(self.series, logx=self.logx, logy=self.logy,
                           title=f"[{self.experiment_id}]")
            )
        if self.paper_says:
            out.write(f"\n\npaper:    {self.paper_says}")
        if self.we_measure:
            out.write(f"\nmeasured: {self.we_measure}")
        return out.getvalue()

    def to_csv(self) -> str:
        """The tabular data as CSV."""
        lines = [",".join(str(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(str(c) for c in row))
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """Everything (table, series, comparison) as a JSON document."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "series": {
                    name: [[x, y] for x, y in points]
                    for name, points in self.series.items()
                },
                "paper_says": self.paper_says,
                "we_measure": self.we_measure,
            },
            indent=2,
        )
