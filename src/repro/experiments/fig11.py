"""Figure 11: efficiency vs problem size, p=4, one multiply per inner loop.

Efficiency = T_serial / (p · T_parallel).  The paper's findings, all
reproduced here: S/MIMD and MIMD efficiencies rise with n (communication
is O(n²) against O(n³/p) computation) and never reach unity — best 96%
(S/MIMD) and 87% (MIMD) at n=256; SIMD *exceeds* unity and its margin
grows with n, because PEs fetch from the queue faster than from memory
and the MCs execute all loop control concurrently.
"""

from __future__ import annotations

from repro.core import DecouplingStudy
from repro.experiments.results import ExperimentResult
from repro.machine import ExecutionMode

SIZES = (4, 8, 16, 64, 128, 256)
MODES = (ExecutionMode.SIMD, ExecutionMode.SMIMD, ExecutionMode.MIMD)


def run_fig11(
    study: DecouplingStudy | None = None,
    *,
    p: int = 4,
    engine: str = "macro",
) -> ExperimentResult:
    study = study or DecouplingStudy()
    study.prefetch(
        cell
        for n in SIZES if n >= p
        for cell in ([(ExecutionMode.SERIAL, n, 1, 0, engine)]
                     + [(mode, n, p, 0, engine) for mode in MODES])
    )
    rows = []
    series: dict[str, list[tuple[float, float]]] = {m.label: [] for m in MODES}
    for n in SIZES:
        if n < p:
            continue
        row: list[object] = [n]
        for mode in MODES:
            eff = study.efficiency(mode, n, p, engine=engine)
            series[mode.label].append((n, eff))
            row.append(round(eff, 3))
        rows.append(tuple(row))

    final = rows[-1]
    return ExperimentResult(
        experiment_id="fig11",
        title=f"Efficiency vs problem size, p={p}, one multiply per inner loop",
        headers=["n", "SIMD", "S/MIMD", "MIMD"],
        rows=rows,
        series=series,
        logx=True,
        paper_says=(
            "S/MIMD and MIMD efficiency increase with n, never reaching "
            "unity (best 96% and 87% at n=256); SIMD exceeds unity and "
            "the superlinear margin grows with n"
        ),
        we_measure=(
            f"at n=256: SIMD {final[1]}, S/MIMD {final[2]}, MIMD {final[3]}; "
            f"SIMD > 1 for n >= 64 and rising"
        ),
    )
