"""Figure 6: execution time vs problem size, p=8, one multiply per inner
loop (no added multiplies).

Four curves: serial (SISD), SIMD, MIMD, S/MIMD.  The paper's reading:
parallel versions beat serial by ≈p; T_MIMD/T_S-MIMD shrinks as n grows
(the O(n²) communication difference is overtaken by O(n³) arithmetic);
SIMD edges S/MIMD thanks to control-flow overlap and faster fetches.
"""

from __future__ import annotations

from repro.core import DecouplingStudy
from repro.experiments.results import ExperimentResult
from repro.machine import ExecutionMode

#: Problem sizes measured (paper: n = 4..256; parallel runs need n >= p).
SIZES = (8, 16, 64, 128, 256)
MODES = (
    ExecutionMode.SERIAL,
    ExecutionMode.SIMD,
    ExecutionMode.SMIMD,
    ExecutionMode.MIMD,
)


def run_fig6(
    study: DecouplingStudy | None = None,
    *,
    p: int = 8,
    engine: str = "macro",
) -> ExperimentResult:
    study = study or DecouplingStudy()
    study.prefetch(
        (mode, n, 1 if mode is ExecutionMode.SERIAL else p, 0, engine)
        for n in SIZES for mode in MODES
    )
    series: dict[str, list[tuple[float, float]]] = {m.label: [] for m in MODES}
    rows = []
    for n in SIZES:
        row: list[object] = [n]
        for mode in MODES:
            pp = 1 if mode is ExecutionMode.SERIAL else p
            res = study.run(mode, n, pp, engine=engine)
            series[mode.label].append((n, res.seconds))
            row.append(round(res.seconds, 6))
        rows.append(tuple(row))

    last = rows[-1]
    ratio_small = rows[0][4] / rows[0][2]  # MIMD / SIMD at smallest n
    ratio_large = last[4] / last[2]
    return ExperimentResult(
        experiment_id="fig6",
        title=f"Execution time (s) vs problem size, p={p}, one multiply "
              "per inner loop",
        headers=["n", "SISD (s)", "SIMD (s)", "S/MIMD (s)", "MIMD (s)"],
        rows=rows,
        series=series,
        logx=True,
        logy=True,
        paper_says=(
            "parallel versions ≈ p× faster than SISD; T_MIMD/T_S-MIMD "
            "decreases with n; SIMD slightly ahead of S/MIMD; all three "
            "parallel curves converge at large n"
        ),
        we_measure=(
            f"speed-up over SISD at n=256: SIMD {last[1]/last[2]:.2f}x, "
            f"S/MIMD {last[1]/last[3]:.2f}x, MIMD {last[1]/last[4]:.2f}x; "
            f"MIMD/SIMD ratio falls from {ratio_small:.2f} (n={SIZES[0]}) "
            f"to {ratio_large:.2f} (n=256)"
        ),
    )
