"""Beyond the paper: the counterfactuals its discussion points at.

Three extension studies, regenerable like the main exhibits (ids
``ext-dma``, ``ext-scale``, ``ext-muls``):

* **DMA block transfers.**  "Because no DMA block transfers were possible
  given the current implementation of PASM, each column transfer required
  n single-element transfers."  We model the missing hardware — a block
  mover that streams a whole column at a fixed per-word rate after one
  setup — and requantify the mode gaps with communication deflated.
* **Design-scale PASM.**  The prototype was N=16, Q=4 of a *designed*
  N=1024, Q=32 machine.  The macro model projects the paper's efficiency
  experiment to design scale.
* **MULS.**  The experiments used the unsigned multiply; the signed
  ``MULS`` has a different (lower-variance) data-dependent time
  distribution, which moves the decoupling economics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.statistics import mul_count_stats
from repro.core import DecouplingStudy
from repro.experiments.results import ExperimentResult
from repro.machine import ExecutionMode, PrototypeConfig
from repro.programs.data import DEFAULT_B_MAX

MODES = (ExecutionMode.SIMD, ExecutionMode.SMIMD, ExecutionMode.MIMD)


# ---------------------------------------------------------------------------
def run_ext_superlinear(
    study: DecouplingStudy | None = None,
    *,
    n: int = 256,
    p: int = 4,
) -> ExperimentResult:
    """Decompose SIMD's superlinear efficiency into its two mechanisms.

    The paper attributes efficiency > 1 to (a) faster instruction fetch
    from the static-RAM queue (one less wait state, no refresh exposure)
    and (b) loop control executing concurrently on the MCs.  Ablating each
    mechanism out of the model quantifies its share.
    """
    from repro.memory import RefreshModel

    study = study or DecouplingStudy()
    base_cfg = study.config

    def efficiency(cfg, mode=ExecutionMode.SIMD) -> float:
        s = DecouplingStudy(cfg, seed=study.seed, b_max=study.b_max,
                            exec_engine=study.exec_engine)
        s.prefetch([(ExecutionMode.SERIAL, n, 1, 0, "macro"),
                    (mode, n, p, 0, "macro")])
        return s.efficiency(mode, n, p, engine="macro")

    full = efficiency(base_cfg)
    no_fetch = efficiency(
        base_cfg.with_overrides(ws_main=0, ws_queue=0,
                                refresh=RefreshModel(250, 0))
    )
    # With the fetch advantage intact but control exposed, SIMD behaves
    # like S/MIMD plus the queue fetch saving; S/MIMD itself is the
    # no-overlap bound.
    smimd = efficiency(base_cfg, ExecutionMode.SMIMD)

    rows = [
        ("full SIMD (both mechanisms)", round(full, 3)),
        ("no fetch advantage (ws_main = ws_queue, no refresh)",
         round(no_fetch, 3)),
        ("no control overlap (= S/MIMD)", round(smimd, 3)),
    ]
    return ExperimentResult(
        experiment_id="ext-superlinear",
        title=f"SIMD superlinearity decomposed (n={n}, p={p})",
        headers=["configuration", "efficiency"],
        rows=rows,
        paper_says=(
            "superlinear speed-up comes from the queue's faster fetches "
            "plus MC/PE control-flow overlap (Section 10)"
        ),
        we_measure=(
            f"full SIMD {full:.3f} > 1; removing the fetch advantage drops "
            f"it to {no_fetch:.3f}; removing the overlap (S/MIMD) to "
            f"{smimd:.3f} < 1 — both mechanisms are needed to cross unity"
        ),
    )


# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DMAModel:
    """The counterfactual block-transfer engine.

    One circuit-switched setup per column, then a streamed transfer at
    ``cycles_per_word`` (the 8-bit path moves a 16-bit word as two back-
    to-back bytes without per-element CPU instructions).
    """

    setup_cycles: int = 64
    cycles_per_word: int = 8

    def column_cycles(self, n: int) -> float:
        return self.setup_cycles + self.cycles_per_word * n


def with_dma_comm(result, dma: DMAModel, n: int):
    """Replace a prediction's per-element communication with DMA columns.

    Each of the n rotation steps transfers one n-element column; all other
    components are untouched (the CPU is free during the transfer, but the
    data dependence means the next step cannot start early, so the phase
    still serializes)."""
    comm = result.breakdown.get("comm", 0.0)
    dma_comm = n * dma.column_cycles(n)
    new_breakdown = dict(result.breakdown)
    new_breakdown["comm"] = dma_comm
    return result.cycles - comm + dma_comm, new_breakdown


def run_ext_dma(
    study: DecouplingStudy | None = None,
    *,
    p: int = 4,
    dma: DMAModel | None = None,
) -> ExperimentResult:
    """Quantify what DMA block transfers would have bought each mode."""
    study = study or DecouplingStudy()
    dma = dma or DMAModel()
    study.prefetch(
        (mode, n, p, 0, "macro") for n in (16, 64, 256) for mode in MODES
    )
    rows = []
    for n in (16, 64, 256):
        row: list[object] = [n]
        for mode in MODES:
            res = study.run(mode, n, p, engine="macro")
            dma_cycles, _ = with_dma_comm(res, dma, n)
            saving = (res.cycles - dma_cycles) / res.cycles
            row.append(f"{saving:.1%}")
        rows.append(tuple(row))
    return ExperimentResult(
        experiment_id="ext-dma",
        title=f"Execution-time saving from DMA block transfers (p={p})",
        headers=["n", "SIMD saving", "S/MIMD saving", "MIMD saving"],
        rows=rows,
        paper_says=(
            "(counterfactual) the paper notes DMA block transfers were "
            "not possible on the prototype"
        ),
        we_measure=(
            "DMA helps MIMD most (it removes the polled per-element "
            "protocol), and all modes less as n grows (communication is "
            "O(n²) against O(n³/p) compute)"
        ),
    )


# ---------------------------------------------------------------------------
def run_ext_design_scale(
    study: DecouplingStudy | None = None,
    *,
    n: int = 2048,
) -> ExperimentResult:
    """Project Figure 12 to the designed N=1024, Q=32 machine."""
    config = PrototypeConfig(n_pes=1024, n_mcs=32)
    study = DecouplingStudy(
        config, exec_engine=study.exec_engine if study is not None else None
    )
    study.prefetch(
        [(ExecutionMode.SERIAL, n, 1, 0, "macro")]
        + [(mode, n, p, 0, "macro")
           for p in (32, 128, 512, 1024) for mode in MODES]
    )
    rows = []
    series: dict[str, list[tuple[float, float]]] = {m.label: [] for m in MODES}
    for p in (32, 128, 512, 1024):
        row: list[object] = [p]
        for mode in MODES:
            eff = study.efficiency(mode, n, p, engine="macro")
            series[mode.label].append((p, eff))
            row.append(round(eff, 3))
        rows.append(tuple(row))
    return ExperimentResult(
        experiment_id="ext-scale",
        title=f"Efficiency vs p on the designed N=1024 PASM (n={n})",
        headers=["p", "SIMD", "S/MIMD", "MIMD"],
        rows=rows,
        series=series,
        logx=True,
        paper_says=(
            "(projection) PASM was designed for N=1024, Q=32; the "
            "prototype implemented N=16, Q=4"
        ),
        we_measure=(
            "the Figure 12 shape persists at design scale: efficiency "
            "falls with p in every mode and SIMD stays ahead; at p=1024 "
            "each PE holds two columns and communication dominates"
        ),
    )


# ---------------------------------------------------------------------------
def run_ext_muls(
    study: DecouplingStudy | None = None,
    *,
    b_max: int = DEFAULT_B_MAX or 256,
    p: int = 4,
) -> ExperimentResult:
    """Compare the MULU and MULS timing distributions and their effect on
    the decoupling benefit (first-order, from the exact order statistics)."""
    rows = []
    for op in ("MULU", "MULS"):
        mean, std, emax = mul_count_stats(b_max, op, p)
        gap = emax - mean
        benefit = 2 * gap - 1.0  # minus the asynchronous fetch penalty
        rows.append(
            (
                op,
                round(38 + 2 * mean, 2),
                round(2 * std, 2),
                round(2 * gap, 2),
                round(benefit, 2),
            )
        )
    mulu_benefit = rows[0][4]
    muls_benefit = rows[1][4]
    return ExperimentResult(
        experiment_id="ext-muls",
        title=f"MULU vs MULS timing distributions (uniform B < {b_max}, "
              f"p={p})",
        headers=["multiply", "mean cycles", "std (cycles)",
                 "E[max]-mean x2 (cycles)", "decoupling benefit/multiply"],
        rows=rows,
        paper_says=(
            "(extension) the paper used MULU; MULS's time depends on bit "
            "*transitions*, not bit count"
        ),
        we_measure=(
            f"per-multiply decoupling benefit: MULU {mulu_benefit} vs "
            f"MULS {muls_benefit} cycles — a MULS-based workload "
            f"{'decouples later' if muls_benefit < mulu_benefit else 'decouples sooner'} "
            "for the same data"
        ),
    )
