"""Command-line harness regenerating every table and figure.

Usage::

    python -m repro.experiments.runner            # everything, to stdout
    python -m repro.experiments.runner fig7 fig11 # a subset
    python -m repro.experiments.runner --out results/   # also write files

Also installed as the ``pasm-experiments`` console script.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import DecouplingStudy
from repro.experiments.extensions import (
    run_ext_design_scale,
    run_ext_dma,
    run_ext_muls,
    run_ext_superlinear,
)
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8_10 import run_breakdown_figure
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.table1 import run_table1

#: Registry of every exhibit, in paper order, plus the extension studies.
EXPERIMENTS = {
    "table1": lambda study: run_table1(study.config),
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": lambda study: run_breakdown_figure("fig8", study),
    "fig9": lambda study: run_breakdown_figure("fig9", study),
    "fig10": lambda study: run_breakdown_figure("fig10", study),
    "fig11": run_fig11,
    "fig12": run_fig12,
    "ext-dma": run_ext_dma,
    "ext-scale": run_ext_design_scale,
    "ext-muls": run_ext_muls,
    "ext-superlinear": run_ext_superlinear,
}


def run_experiments(
    names: list[str] | None = None,
    *,
    out_dir: Path | None = None,
    seed: int | None = None,
    stream=sys.stdout,
):
    """Run the named experiments (all by default); return the results."""
    names = names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}"
        )
    study = DecouplingStudy() if seed is None else DecouplingStudy(seed=seed)
    results = []
    for name in names:
        result = EXPERIMENTS[name](study)
        results.append(result)
        stream.write(result.render())
        stream.write("\n\n" + "=" * 78 + "\n\n")
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(result.render())
            (out_dir / f"{name}.csv").write_text(result.to_csv())
            (out_dir / f"{name}.json").write_text(result.to_json())
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the tables and figures of 'Non-Deterministic "
        "Instruction Time Experiments on the PASM System Prototype' "
        "(ICPP 1988) on the simulated prototype."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="directory to write per-experiment .txt/.csv files",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="data-set seed (default: the library's fixed seed)",
    )
    parser.add_argument(
        "--report", type=Path, default=None, metavar="FILE",
        help="write the full reproduction report (config + engine check + "
             "crossover confidence + every exhibit) to FILE and exit",
    )
    args = parser.parse_args(argv)
    if args.report is not None:
        from repro.core.report import full_report
        from repro.core import DecouplingStudy

        study = (DecouplingStudy() if args.seed is None
                 else DecouplingStudy(seed=args.seed))
        args.report.write_text(full_report(study))
        print(f"report written to {args.report}")
        return 0
    run_experiments(args.experiments or None, out_dir=args.out,
                    seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
