"""Command-line harness regenerating every table and figure.

Usage::

    python -m repro.experiments.runner            # everything, to stdout
    python -m repro.experiments.runner fig7 fig11 # a subset
    python -m repro.experiments.runner --out results/   # also write files
    python -m repro.experiments.runner --jobs 4 --stats # pooled + summary

Also installed as the ``pasm-experiments`` console script.

Execution is routed through :mod:`repro.exec`: independent simulation
runs fan out across ``--jobs N`` worker processes (default
``$REPRO_JOBS`` or one per available core; ``REPRO_JOBS=1`` forces the
serial in-process path), and results are
memoised on disk under ``.repro_cache/`` (``$REPRO_CACHE_DIR``,
``--cache-dir``, disable with ``--no-cache``) keyed by job content hash
and package version — a warm re-run recomputes nothing.  ``--stats``
appends the engine's cache-hit/wall-time summary table (with p50/p95
per-job percentiles) and a wall-time breakdown by job bucket;
``--profile FILE`` wraps the whole run in :mod:`cProfile` and dumps a
pstats file for ``python -m pstats`` / ``snakeviz``.

``--trace-out FILE`` records the whole run as a Chrome trace-event
document (open in Perfetto / ``chrome://tracing``): engine lanes show
per-job queue/execute wall time and cache hits, and every *computed*
job contributes per-PE simulated-time lanes (instruction category
spans, SIMD fetch-queue waits, network stalls) collected inside the
worker process.  Tracing is strictly opt-in and does not perturb the
results — job identity (and thus the cache key) is unchanged.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import DecouplingStudy
from repro.errors import ReproError
from repro.exec import ExecutionEngine, ResultCache, resolve_jobs
from repro.obs.tracer import Tracer
from repro.experiments.extensions import (
    run_ext_design_scale,
    run_ext_dma,
    run_ext_muls,
    run_ext_superlinear,
)
from repro.experiments.faults_exhibit import run_ext_faults
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8_10 import run_breakdown_figure
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.table1 import run_table1

#: Registry of every exhibit, in paper order, plus the extension studies.
EXPERIMENTS = {
    "table1": lambda study: run_table1(study.config,
                                       exec_engine=study.exec_engine),
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": lambda study: run_breakdown_figure("fig8", study),
    "fig9": lambda study: run_breakdown_figure("fig9", study),
    "fig10": lambda study: run_breakdown_figure("fig10", study),
    "fig11": run_fig11,
    "fig12": run_fig12,
    "ext-dma": run_ext_dma,
    "ext-scale": run_ext_design_scale,
    "ext-muls": run_ext_muls,
    "ext-superlinear": run_ext_superlinear,
    "ext-faults": run_ext_faults,
}


def _make_study(seed: int | None,
                engine: ExecutionEngine | None) -> DecouplingStudy:
    kwargs = {} if seed is None else {"seed": seed}
    return DecouplingStudy(exec_engine=engine, **kwargs)


def run_experiments(
    names: list[str] | None = None,
    *,
    out_dir: Path | None = None,
    seed: int | None = None,
    stream=None,
    jobs: int | str | None = None,
    cache: ResultCache | None = None,
    stats: bool = False,
    tracer: Tracer | None = None,
):
    """Run the named experiments (all by default); return the results.

    ``jobs``/``cache`` configure the execution engine (defaults: serial,
    no disk cache — the historical behaviour); ``stats=True`` appends the
    engine's summary table to ``stream``; a ``tracer`` records every
    engine job (and its per-PE simulated lanes) for Perfetto export.
    """
    stream = stream if stream is not None else sys.stdout
    names = names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}"
        )
    engine = ExecutionEngine(jobs=jobs, cache=cache, tracer=tracer)
    study = _make_study(seed, engine)
    results = []
    for name in names:
        result = EXPERIMENTS[name](study)
        results.append(result)
        stream.write(result.render())
        stream.write("\n\n" + "=" * 78 + "\n\n")
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(result.render())
            (out_dir / f"{name}.csv").write_text(result.to_csv())
            (out_dir / f"{name}.json").write_text(result.to_json())
    if stats:
        stream.write(engine.stats.summary_table(
            title=f"execution engine stats (jobs={engine.jobs}, "
                  f"cache={'on' if engine.cache is not None else 'off'})"
        ))
        stream.write("\n")
        breakdown = engine.stats.breakdown()
        if any(breakdown.values()):  # all-hits runs have nothing to break down
            from repro.perf import format_breakdown

            stream.write("\n")
            stream.write(format_breakdown(
                breakdown, title="wall-time breakdown (computed jobs)"))
            stream.write("\n")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the tables and figures of 'Non-Deterministic "
        "Instruction Time Experiments on the PASM System Prototype' "
        "(ICPP 1988) on the simulated prototype."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="directory to write per-experiment .txt/.csv files",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="data-set seed (default: the library's fixed seed)",
    )
    parser.add_argument(
        "--jobs", default=None, metavar="N",
        help="worker processes for independent simulation jobs "
             "(default: $REPRO_JOBS or one per available core; "
             "1 = serial in-process)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the execution engine's per-job wall-time summary "
             "(p50/p95 percentiles, cache hits/misses) and a wall-time "
             "breakdown by job bucket after the exhibits",
    )
    parser.add_argument(
        "--profile", type=Path, default=None, metavar="FILE",
        help="profile the whole run with cProfile and dump a pstats "
             "file to FILE (inspect with 'python -m pstats FILE')",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or "
             "./.repro_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-max-mb", type=float, default=None, metavar="MB",
        help="LRU size cap on the result cache: past the cap, the "
             "oldest-access entries are evicted after each store "
             "(default: $REPRO_CACHE_MAX_MB or unbounded)",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None, metavar="FILE",
        help="export the run as a Chrome trace-event JSON file (open in "
             "Perfetto or chrome://tracing): engine job lanes plus per-PE "
             "simulated-time lanes for every computed job",
    )
    parser.add_argument(
        "--report", type=Path, default=None, metavar="FILE",
        help="write the full reproduction report (config + engine check + "
             "crossover confidence + every exhibit) to FILE and exit",
    )
    args = parser.parse_args(argv)
    try:
        # Validate up front so a bad --jobs *or* a bad $REPRO_JOBS /
        # $REPRO_CACHE_MAX_MB dies with a clean CLI message, not a
        # traceback halfway into the run.
        resolve_jobs(args.jobs)
        cache = None if args.no_cache else ResultCache(
            args.cache_dir, max_mb=args.cache_max_mb
        )
    except ReproError as exc:
        parser.error(str(exc))
    if args.report is not None:
        from repro.core.report import full_report

        engine = ExecutionEngine(jobs=args.jobs, cache=cache)
        study = _make_study(args.seed, engine)
        args.report.write_text(full_report(study))
        print(f"report written to {args.report}")
        return 0
    tracer = Tracer() if args.trace_out is not None else None

    def _write_trace() -> None:
        if tracer is None:
            return
        tracer.write(args.trace_out, meta={
            "tool": "pasm-experiments",
            "experiments": args.experiments or sorted(EXPERIMENTS),
        })
        print(f"trace written to {args.trace_out} "
              f"(trace id {tracer.trace_id})")

    if args.profile is not None:
        from repro.perf import profile_to

        with profile_to(args.profile):
            run_experiments(
                args.experiments or None, out_dir=args.out, seed=args.seed,
                jobs=args.jobs, cache=cache, stats=args.stats, tracer=tracer,
            )
        print(f"profile written to {args.profile}")
        _write_trace()
        return 0
    run_experiments(
        args.experiments or None, out_dir=args.out, seed=args.seed,
        jobs=args.jobs, cache=cache, stats=args.stats, tracer=tracer,
    )
    _write_trace()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
