"""``pasm-top``: a live terminal dashboard over ``GET /v1/timeseries``.

Point it at one ``pasm-serve`` instance or at a ``pasm-router`` and it
polls the timeseries and alert endpoints, rendering throughput, error
rate, latency quantiles, queue depth and dedup ratio as sparkline rows
— plain ANSI, no curses, no dependencies::

    pasm-top http://127.0.0.1:8137            # one instance, live
    pasm-top http://127.0.0.1:8138 --once     # router: one fleet frame

Against a router the main panel shows the *fleet-wide* aggregate and a
per-instance table underneath; firing SLO alerts (``GET /v1/alerts``)
are banner-lined at the top.  ``--once`` prints a single frame and
exits (scripts, CI smoke); otherwise the screen redraws every
``--interval`` seconds until interrupted.

Rendering is split into pure functions (:func:`sparkline`,
:func:`render_frame`) over fetched documents, so tests drive them with
canned JSON and never open a socket.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

from repro.obs.timeseries import parse_series_key

#: Eight-level bar glyphs, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: ANSI: cursor home + clear to end of screen (full-frame redraw).
CLEAR = "\x1b[H\x1b[J"

#: Main-panel rows: (label, metric name, field, combine, labels filter,
#: value formatter, display divisor).  ``field`` is "rate" for
#: counter-derived rates, "points" for raw gauge/quantile samples.
PANEL = (
    ("req/s", "pasm_serve_requests_total", "rate", "sum", None,
     "{:.1f}", 1),
    ("err/s", "pasm_serve_requests_total", "rate", "sum",
     {"status": lambda s: s == "429" or s.startswith("5")}, "{:.1f}", 1),
    ("p50 lat", "pasm_serve_job_latency_seconds", "points", "max",
     {"quantile": "0.5"}, "{:.3f}s", 1),
    ("p95 lat", "pasm_serve_job_latency_seconds", "points", "max",
     {"quantile": "0.95"}, "{:.3f}s", 1),
    ("queue", "pasm_serve_queue_depth", "points", "sum", None,
     "{:.0f}", 1),
    ("inflight", "pasm_serve_in_flight", "points", "sum", None,
     "{:.0f}", 1),
    ("dedup", "pasm_serve_cache_hit_ratio", "points", "mean", None,
     "{:.0%}", 1),
    ("rss MB", "pasm_process_resident_memory_bytes", "points", "sum", None,
     "{:.0f}", 1 << 20),
    ("cpu/s", "pasm_process_cpu_seconds_total", "rate", "sum", None,
     "{:.2f}", 1),
)


def sparkline(values, width: int = 36) -> str:
    """The last ``width`` values as one row of ▁▂▃▄▅▆▇█ bars."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        # A flat line renders low unless it is a flat *non-zero* line.
        idx = 0 if hi <= 0 else 3
        return SPARK_CHARS[idx] * len(vals)
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((v - lo) / span * len(SPARK_CHARS)))]
        for v in vals
    )


def _matches(labels: dict, where) -> bool:
    if not where:
        return True
    for k, want in where.items():
        got = labels.get(k)
        if got is None:
            return False
        if callable(want):
            if not want(got):
                return False
        elif got != want:
            return False
    return True


def metric_points(doc: dict, name: str, *, field: str = "points",
                  how: str = "sum", where=None) -> list[list[float]]:
    """Combined ``[ts, value]`` points of one metric across its series.

    Matching series (by metric name, optionally filtered by labels —
    exact strings or predicates) are bucketed to the document's
    sampling interval and combined: ``sum``, ``mean`` or ``max``.
    """
    step = max(float(doc.get("interval_s", 5.0)), 1e-3)
    buckets: dict[float, tuple[float, int]] = {}
    for key, entry in doc.get("series", {}).items():
        base, labels = parse_series_key(key)
        if base != name or not _matches(labels, where):
            continue
        for t, value in entry.get(field, ()):
            b = round(round(t / step) * step, 3)
            acc, n = buckets.get(b, (0.0, 0))
            if how == "max":
                acc = max(acc, value) if n else value
            else:
                acc += value
            buckets[b] = (acc, n + 1)
    out = []
    for t in sorted(buckets):
        acc, n = buckets[t]
        out.append([t, acc / n if how == "mean" and n else acc])
    return out


def _fmt(template: str, value: float | None) -> str:
    if value is None:
        return "-"
    try:
        return template.format(value)
    except (ValueError, TypeError):
        return str(value)


def _panel_lines(doc: dict, *, width: int) -> list[str]:
    lines = []
    for label, name, field, how, where, template, divisor in PANEL:
        pts = metric_points(doc, name, field=field, how=how, where=where)
        values = [v for _, v in pts]
        last = values[-1] / divisor if values else None
        lines.append(f"  {label:<9} {_fmt(template, last):>9}  "
                     f"{sparkline(values, width)}")
    return lines


def _alert_lines(alerts_doc: dict | None) -> list[str]:
    if not alerts_doc:
        return []
    # Router shape carries a pre-filtered "firing" list; an instance
    # doc carries every alert under "alerts".
    if isinstance(alerts_doc.get("firing"), list):
        firing = alerts_doc["firing"]
    else:
        firing = [a for a in alerts_doc.get("alerts", ())
                  if a.get("state") == "firing"]
    if not firing:
        return ["  alerts: none firing"]
    lines = [f"  ALERTS FIRING: {len(firing)}"]
    for alert in firing:
        origin = alert.get("instance", "")
        origin = f" @ {origin}" if origin else ""
        lines.append(
            f"   !! {alert.get('slo', '?')}{origin}: "
            f"measured {alert.get('measured')} vs "
            f"target {alert.get('target')} "
            f"(burn {alert.get('burn', {})})"
        )
    return lines


def _instance_lines(instances: dict, *, width: int) -> list[str]:
    lines = ["  instances:"]
    for base, doc in sorted(instances.items()):
        if not isinstance(doc, dict) or "series" not in doc:
            error = doc.get("error", "no data") \
                if isinstance(doc, dict) else "no data"
            lines.append(f"   {base:<28} {error}")
            continue
        req = metric_points(doc, "pasm_serve_requests_total", field="rate")
        queue = metric_points(doc, "pasm_serve_queue_depth")
        last_req = req[-1][1] if req else 0.0
        last_queue = queue[-1][1] if queue else 0.0
        lines.append(
            f"   {base:<28} req/s {last_req:>7.1f}  "
            f"queue {last_queue:>4.0f}  "
            f"{sparkline([v for _, v in req], max(8, width // 2))}"
        )
    return lines


def render_frame(ts_doc: dict, alerts_doc: dict | None = None, *,
                 source: str = "", width: int = 36,
                 clock=time.time) -> str:
    """One full dashboard frame as a string (pure; no I/O).

    Accepts both shapes: an instance document (``series`` at top
    level) and a router document (``fleet`` aggregate + ``instances``
    map).
    """
    if "fleet" in ts_doc:
        main = ts_doc.get("fleet", {})
        instances = ts_doc.get("instances", {})
        scope = f"fleet of {main.get('instances', len(instances))}"
    else:
        main = ts_doc
        instances = None
        scope = ts_doc.get("instance") or "instance"
    stamp = time.strftime("%H:%M:%S", time.localtime(clock()))
    lines = [f"pasm-top — {source or scope}  [{scope}]  {stamp}", ""]
    lines += _alert_lines(alerts_doc)
    lines.append("")
    lines += _panel_lines(main, width=width)
    if instances:
        lines.append("")
        lines += _instance_lines(instances, width=width)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Fetch + CLI
def fetch_json(url: str, *, timeout: float = 5.0) -> dict | None:
    """GET a JSON document; ``None`` on 404 (endpoint disabled)."""
    request = urllib.request.Request(
        url, headers={"Accept": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            return None
        raise


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pasm-top",
        description="Live dashboard over a pasm-serve instance or "
        "pasm-router fleet: polls /v1/timeseries and /v1/alerts, "
        "renders sparkline rows for throughput, errors, latency "
        "quantiles, queue depth and dedup.",
    )
    parser.add_argument("url", nargs="?", default="http://127.0.0.1:8137",
                        help="base URL of a pasm-serve or pasm-router "
                             "(default: http://127.0.0.1:8137)")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="refresh interval (default: 2)")
    parser.add_argument("--window", type=float, default=300.0, metavar="S",
                        help="history window to request (default: 300)")
    parser.add_argument("--width", type=int, default=36,
                        help="sparkline width in cells (default: 36)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit (scripts, CI)")
    args = parser.parse_args(argv)
    base = args.url.rstrip("/")

    def frame() -> str:
        since = time.time() - args.window
        ts_doc = fetch_json(f"{base}/v1/timeseries?since={since:.3f}")
        if ts_doc is None:
            return (f"pasm-top — {base}\n\n  /v1/timeseries answered "
                    "404: sampling is disabled on this instance "
                    "(start it with --sample-interval > 0)\n")
        alerts_doc = fetch_json(f"{base}/v1/alerts")
        return render_frame(ts_doc, alerts_doc, source=base,
                            width=args.width)

    try:
        if args.once:
            sys.stdout.write(frame())
            return 0
        while True:
            try:
                text = frame()
            except (OSError, ValueError, urllib.error.URLError) as exc:
                text = (f"pasm-top — {base}\n\n  unreachable: "
                        f"{type(exc).__name__}: {exc}\n")
            sys.stdout.write(CLEAR + text)
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, ValueError, urllib.error.URLError) as exc:
        sys.stderr.write(f"pasm-top: {base}: "
                         f"{type(exc).__name__}: {exc}\n")
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
