"""``pasm-run``: assemble and execute a program on the simulated prototype.

Makes the machine usable as a tool, not just a harness for the paper's
experiments::

    pasm-run program.s                      # serial, one PE
    pasm-run program.s --mode mimd -p 4     # same text on 4 PEs
    pasm-run program.s --mode smimd -p 4 --sync-words 8
    pasm-run program.s --trace-out run.json --dump 0x4000:16

Programs use the standard device symbols (``NETTX``, ``NETRX``,
``NETSTAT``, ``SIMDSPACE``, ``TIMER``) plus ``PEID`` — each PE's logical
number, predefined per PE so one source can behave per-processor.  In the
parallel modes the shift circuit (PE i → PE (i−1) mod p) is established
before the run, as in the paper's experiments.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.m68k.assembler import assemble
from repro.machine import ExecutionMode, MachineResult, PASMMachine, PrototypeConfig


class ProgramRunError(ReproError):
    """Raised when a program file cannot be run as requested."""


@dataclass
class RunOutcome:
    """Everything ``pasm-run`` knows after a run."""

    result: MachineResult
    machine: PASMMachine
    dumps: dict[int, dict[int, list[int]]] = field(default_factory=dict)
    registers: dict[int, dict[str, int]] = field(default_factory=dict)
    trace_events: list[dict] | None = None  #: per-PE lanes (``--trace-out``)

    def render(self) -> str:
        lines = [
            f"mode={self.result.mode.value} p={self.result.p} "
            f"cycles={self.result.cycles:.0f} "
            f"({self.result.seconds * 1e3:.3f} ms at 8 MHz) "
            f"instructions={self.result.instructions}",
        ]
        breakdown = self.result.breakdown()
        if breakdown:
            parts = ", ".join(
                f"{k}={v:.0f}" for k, v in sorted(breakdown.items())
            )
            lines.append(f"breakdown (mean cycles/PE): {parts}")
        for pe, dumps in sorted(self.dumps.items()):
            for addr, words in dumps.items():
                text = " ".join(f"{w:04X}" for w in words)
                lines.append(f"PE{pe} @{addr:#06x}: {text}")
        for pe, regs in sorted(self.registers.items()):
            d = " ".join(f"D{i}={regs[f'D{i}']:08X}" for i in range(8))
            a = " ".join(f"A{i}={regs[f'A{i}']:08X}" for i in range(8))
            lines.append(f"PE{pe} {d}")
            lines.append(f"PE{pe} {a}")
        return "\n".join(lines)


def _parse_dump(spec: str) -> tuple[int, int]:
    """Parse ``ADDR:COUNT`` (both may be hex with 0x prefix)."""
    try:
        addr_text, count_text = spec.split(":")
        return int(addr_text, 0), int(count_text, 0)
    except ValueError:
        raise ProgramRunError(
            f"bad --dump spec {spec!r}; expected ADDR:WORDCOUNT"
        ) from None


def run_program_file(
    path: str | Path,
    *,
    mode: str = "serial",
    p: int = 1,
    sync_words: int = 0,
    config: PrototypeConfig | None = None,
    dump: list[str] | None = None,
    show_registers: bool = False,
    max_cycles: float | None = None,
    trace: bool = False,
) -> RunOutcome:
    """Assemble ``path`` and run it; see the module docstring."""
    config = config or PrototypeConfig.calibrated()
    source = Path(path).read_text()
    try:
        exec_mode = ExecutionMode(mode)
    except ValueError:
        raise ProgramRunError(
            f"unknown mode {mode!r}; choose from "
            f"{[m.value for m in ExecutionMode]}"
        ) from None
    if exec_mode is ExecutionMode.SIMD:
        raise ProgramRunError(
            "pasm-run executes PE programs; SIMD mode needs an MC control "
            "program — use the repro.machine API (PASMMachine.run_simd)"
        )
    if exec_mode is ExecutionMode.SERIAL and p != 1:
        raise ProgramRunError("serial mode runs on one PE (drop -p)")

    machine = PASMMachine(config, partition_size=p)
    programs = []
    for logical in range(p):
        symbols = dict(config.device_symbols())
        symbols["PEID"] = logical
        programs.append(assemble(source, predefined=symbols))
    if p > 1:
        machine.connect_shift_circuit()
    if trace:
        machine.enable_tracing()

    if exec_mode is ExecutionMode.SERIAL:
        result = machine.run_serial(programs[0])
    elif exec_mode is ExecutionMode.MIMD:
        result = machine.run_mimd(programs)
    else:
        result = machine.run_smimd(programs, sync_words=max(sync_words, 1))

    if max_cycles is not None and result.cycles > max_cycles:
        raise ProgramRunError(
            f"program ran {result.cycles:.0f} cycles, over the "
            f"--max-cycles budget of {max_cycles:.0f}"
        )

    outcome = RunOutcome(result=result, machine=machine)
    if trace:
        from repro.obs.simtrace import machine_events

        outcome.trace_events = machine_events(
            machine,
            label=f"{exec_mode.value} p={p} {Path(path).name}",
        )
    for spec in dump or []:
        addr, count = _parse_dump(spec)
        for logical in range(p):
            words = machine.pe(logical).memory.read_words(addr, count)
            outcome.dumps.setdefault(logical, {})[addr] = [
                int(w) for w in words
            ]
    if show_registers:
        for logical in range(p):
            outcome.registers[logical] = machine.pe(logical).cpu.regs.snapshot()
    return outcome


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pasm-run",
        description="Assemble an MC68000 program and run it on the "
        "simulated PASM prototype.",
    )
    parser.add_argument("program", help="assembly source file")
    parser.add_argument(
        "--mode", default="serial",
        choices=["serial", "mimd", "smimd"],
        help="execution mode (SIMD needs an MC program; use the API)",
    )
    parser.add_argument("-p", type=int, default=1,
                        help="number of PEs (power of two)")
    parser.add_argument("--sync-words", type=int, default=16,
                        help="barrier tokens to provision in smimd mode")
    parser.add_argument("--dump", action="append", default=[],
                        metavar="ADDR:WORDS",
                        help="dump memory words after the run (repeatable)")
    parser.add_argument("--registers", action="store_true",
                        help="print final register values")
    parser.add_argument("--max-cycles", type=float, default=None,
                        help="fail if the run exceeds this many cycles")
    parser.add_argument("--trace-out", type=Path, default=None,
                        metavar="FILE",
                        help="export a per-PE Chrome trace-event timeline "
                             "(instruction categories, queue/network waits) "
                             "to FILE — open in Perfetto/chrome://tracing")
    parser.add_argument("--listing", action="store_true",
                        help="print the annotated disassembly and exit")
    args = parser.parse_args(argv)
    if args.listing:
        from repro.m68k.assembler import assemble
        from repro.m68k.disasm import disassemble
        from repro.machine import PrototypeConfig

        config = PrototypeConfig.calibrated()
        symbols = dict(config.device_symbols())
        symbols["PEID"] = 0
        try:
            program = assemble(Path(args.program).read_text(),
                               predefined=symbols)
        except ReproError as exc:
            print(f"pasm-run: {exc}", file=sys.stderr)
            return 1
        print(disassemble(program, device_symbols=config.device_symbols()))
        return 0
    try:
        outcome = run_program_file(
            args.program,
            mode=args.mode,
            p=args.p,
            sync_words=args.sync_words,
            dump=args.dump,
            show_registers=args.registers,
            max_cycles=args.max_cycles,
            trace=args.trace_out is not None,
        )
    except ReproError as exc:
        print(f"pasm-run: {exc}", file=sys.stderr)
        return 1
    if args.trace_out is not None:
        import json

        from repro.obs.ids import new_trace_id
        from repro.obs.tracer import export_chrome

        doc = export_chrome(
            outcome.trace_events or [],
            trace_id=new_trace_id(),
            meta={"tool": "pasm-run", "program": str(args.program),
                  "mode": args.mode, "p": args.p},
        )
        args.trace_out.write_text(json.dumps(doc) + "\n")
        print(f"trace written to {args.trace_out} "
              f"({len(doc['traceEvents'])} events)")
    print(outcome.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
