"""``pasm-trace``: inspect exported Chrome trace-event documents.

The tracing layer (:mod:`repro.obs`) exports timelines as Chrome
trace-event JSON — the format Perfetto and ``chrome://tracing`` open
directly.  This tool works on those files *without* a browser::

    pasm-trace validate run.json       # schema check (CI uses this)
    pasm-trace summarize run.json      # per-lane span/busy-time table
    pasm-trace render run.json         # the old ASCII Gantt, per lane
    pasm-trace render run.json --proc "sim"   # only simulated-time lanes

``validate`` runs the same structural checks as the CI trace-smoke job
(monotonic timestamps, matched B/E pairs, required fields) and exits
non-zero on any problem.  ``render`` draws one row per lane with one
column per time bucket, the same presentation as
:func:`repro.trace.activity_gantt` but driven by the exported document,
so serve-side wall-clock lanes and per-PE simulated lanes render with
the same tool.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.schema import validate_chrome_trace
from repro.obs.tracer import lanes_from_chrome
from repro.trace import CATEGORY_CODES

#: Fallback single-char codes for span names outside the instruction
#: categories (waits, serve lanes).  Anything else uses its first letter.
_EXTRA_CODES = {
    "queue_wait": "q",
    "barrier_wait": "b",
    "net_rx_wait": "r",
    "net_tx_wait": "t",
    "queue wait": "q",
    "execute": "E",
}


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"pasm-trace: cannot read {path}: {exc}")


def _span_code(name: str) -> str:
    code = CATEGORY_CODES.get(name) or _EXTRA_CODES.get(name)
    if code:
        return code
    return name[0] if name else "?"


def _select_lanes(doc: dict, proc: str | None):
    """Non-empty lanes, optionally filtered by process-name substring."""
    lanes = lanes_from_chrome(doc)
    return {
        key: events for key, events in lanes.items()
        if events and (proc is None or proc in key[0])
    }


def _lane_span(events) -> tuple[float, float]:
    lo = min(e["ts"] for e in events)
    hi = max(e["ts"] + e.get("dur", 0.0) for e in events)
    return lo, hi


def render_gantt(doc: dict, *, width: int = 72,
                 proc: str | None = None) -> str:
    """ASCII timeline of a Chrome trace doc: one row per lane.

    Each column is a time bucket showing the span name that consumed
    most of it (first-letter codes; instruction categories reuse
    :data:`repro.trace.CATEGORY_CODES`).  Lanes from different
    processes can live on different clocks (wall vs simulated cycles),
    so each *process* gets its own horizon header.
    """
    lanes = _select_lanes(doc, proc)
    if not lanes:
        return "(no matching lanes)"
    out: list[str] = []
    by_proc: dict[str, dict] = {}
    for (pname, tname), events in lanes.items():
        by_proc.setdefault(pname, {})[tname] = events
    legend: dict[str, str] = {}
    for pname in sorted(by_proc):
        rows = by_proc[pname]
        horizon = max(_lane_span(ev)[1] for ev in rows.values())
        if horizon <= 0:
            horizon = 1.0
        bucket = horizon / width
        out.append(f"{pname}: 0 .. {horizon:.0f} us, "
                   f"{bucket:.1f} us/column")
        name_w = max(len(t) for t in rows)
        for tname in sorted(rows):
            weights: list[dict] = [dict() for _ in range(width)]
            for ev in rows[tname]:
                t0 = ev["ts"]
                t1 = t0 + ev.get("dur", 0.0)
                lo = min(int(t0 / bucket), width - 1)
                hi = min(int(t1 / bucket), width - 1)
                for b in range(lo, hi + 1):
                    seg = (min(t1, (b + 1) * bucket)
                           - max(t0, b * bucket))
                    # Zero-duration instants still deserve a mark.
                    seg = max(seg, bucket * 1e-6)
                    w = weights[b]
                    w[ev["name"]] = w.get(ev["name"], 0.0) + seg
            row = "".join(
                _span_code(max(w, key=w.get)) if w else " "
                for w in weights
            )
            for w in weights:
                for name in w:
                    legend.setdefault(name, _span_code(name))
            out.append(f"{tname:>{name_w}} |{row}|")
        out.append("")
    out.append("legend: " + " ".join(
        f"{code}={name}" for name, code in sorted(legend.items())
    ))
    return "\n".join(out)


def summarize(doc: dict, *, proc: str | None = None) -> str:
    """Per-lane table: span count, busy time, dominant span names."""
    lanes = _select_lanes(doc, proc)
    other = doc.get("otherData", {})
    out = [
        f"trace id: {other.get('trace_id', '?')}",
        f"events:   {len(doc.get('traceEvents', []))}"
        f"  lanes: {len(lanes)}",
    ]
    meta = other.get("meta", {})
    if meta:
        out.append("meta:     " + json.dumps(meta, sort_keys=True))
    out.append("")
    header = f"{'lane':<40} {'spans':>6} {'busy':>12}  top spans"
    out.append(header)
    out.append("-" * len(header))
    for (pname, tname), events in sorted(lanes.items()):
        busy = sum(e.get("dur", 0.0) for e in events)
        totals: dict[str, float] = {}
        for e in events:
            totals[e["name"]] = (totals.get(e["name"], 0.0)
                                 + e.get("dur", 0.0))
        top = sorted(totals.items(), key=lambda kv: -kv[1])[:3]
        top_text = ", ".join(f"{n} ({d:.0f})" for n, d in top)
        lane = f"{pname} / {tname}"
        out.append(f"{lane:<40} {len(events):>6} {busy:>12.1f}  {top_text}")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pasm-trace",
        description="Validate, summarize and render Chrome trace-event "
        "files exported by pasm-experiments/pasm-run/pasm-serve.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_val = sub.add_parser(
        "validate", help="structural schema check (exit 1 on problems)")
    p_val.add_argument("file", type=Path)

    p_sum = sub.add_parser(
        "summarize", help="per-lane span counts and busy time")
    p_sum.add_argument("file", type=Path)
    p_sum.add_argument("--proc", default=None,
                       help="only lanes whose process name contains this")

    p_ren = sub.add_parser(
        "render", help="ASCII Gantt: one row per lane")
    p_ren.add_argument("file", type=Path)
    p_ren.add_argument("--width", type=int, default=72,
                       help="columns in the timeline (default 72)")
    p_ren.add_argument("--proc", default=None,
                       help="only lanes whose process name contains this")

    args = parser.parse_args(argv)
    doc = _load(args.file)
    if args.command == "validate":
        problems = validate_chrome_trace(doc)
        if problems:
            for problem in problems:
                print(f"pasm-trace: {problem}", file=sys.stderr)
            return 1
        events = doc.get("traceEvents", [])
        print(f"{args.file}: OK ({len(events)} events, trace id "
              f"{doc.get('otherData', {}).get('trace_id', '?')})")
        return 0
    try:
        if args.command == "summarize":
            print(summarize(doc, proc=args.proc))
        else:
            print(render_gantt(doc, width=args.width, proc=args.proc))
    except ValueError as exc:
        print(f"pasm-trace: malformed trace: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that quit — that's fine.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
