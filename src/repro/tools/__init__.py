"""User-facing tools: the ``pasm-run`` program runner and trace utilities."""

from repro.tools.runner import ProgramRunError, RunOutcome, run_program_file

__all__ = ["run_program_file", "RunOutcome", "ProgramRunError"]
