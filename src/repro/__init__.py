"""pasm-repro: the PASM prototype's non-deterministic instruction time
experiments (Fineberg, Casavant, Schwederski & Siegel, ICPP 1988),
reproduced on a simulated machine.

Most users want three names:

>>> from repro import DecouplingStudy, ExecutionMode, find_crossover
>>> study = DecouplingStudy()
>>> study.efficiency(ExecutionMode.SIMD, n=256, p=4)    # > 1: superlinear
>>> find_crossover(study, n=64, p=4).crossover          # ≈ 14 (the paper)

Layer map (see DESIGN.md):

* :mod:`repro.core` — the study facade, mode equations, crossover finder;
* :mod:`repro.machine` — the simulated prototype (PEs, MCs, Fetch Units,
  network, partitioning, the four execution modes);
* :mod:`repro.m68k` — the MC68000 model (assembler, interpreter, timing);
* :mod:`repro.programs` — the paper's matrix-multiplication programs;
* :mod:`repro.timing_model` — the vectorized macro performance model;
* :mod:`repro.experiments` — regeneration of every table and figure;
* :mod:`repro.analysis`, :mod:`repro.trace`, :mod:`repro.tools` —
  predictions, instrumentation, and the ``pasm-run`` CLI.
"""

from repro.core import DecouplingStudy, find_crossover
from repro.machine import (
    ExecutionMode,
    MachineResult,
    PASMMachine,
    PartitionedMachine,
    PrototypeConfig,
)

__version__ = "1.2.0"

__all__ = [
    "DecouplingStudy",
    "find_crossover",
    "ExecutionMode",
    "PrototypeConfig",
    "PASMMachine",
    "PartitionedMachine",
    "MachineResult",
    "__version__",
]
