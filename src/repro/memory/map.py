"""Address-space regions for the PE bus.

A :class:`MemoryMap` resolves an address to a :class:`Region`.  The PASM PE
address space contains:

* main RAM (DRAM: one extra wait state, refresh),
* the reserved **SIMD instruction space** — accesses here are converted by
  PE logic into Fetch-Unit requests (instruction broadcast; also the barrier
  trick when read as data),
* the memory-mapped **network transfer registers** (transmit / receive /
  status),
* the MC68230 interval timer (the paper's measurement instrument).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegionKind(enum.Enum):
    MAIN_RAM = "main_ram"
    SIMD_SPACE = "simd_space"
    NET_TX = "net_tx"
    NET_RX = "net_rx"
    NET_STATUS = "net_status"
    TIMER = "timer"


@dataclass(frozen=True)
class Region:
    """A half-open address range ``[start, end)`` with access properties."""

    kind: RegionKind
    start: int
    end: int
    wait_states: int = 0

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


class MemoryMap:
    """Ordered collection of non-overlapping regions."""

    def __init__(self, regions: list[Region]) -> None:
        self.regions = sorted(regions, key=lambda r: r.start)
        for a, b in zip(self.regions, self.regions[1:]):
            if a.end > b.start:
                raise ValueError(
                    f"overlapping regions {a.kind.value} and {b.kind.value}"
                )

    def lookup(self, addr: int) -> Region:
        """Region containing ``addr``; raises BusError when unmapped."""
        from repro.errors import BusError

        lo, hi = 0, len(self.regions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = self.regions[mid]
            if addr < region.start:
                hi = mid - 1
            elif addr >= region.end:
                lo = mid + 1
            else:
                return region
        raise BusError(f"unmapped address {addr:#x}")

    def find(self, kind: RegionKind) -> Region:
        for region in self.regions:
            if region.kind is kind:
                return region
        raise KeyError(kind)
