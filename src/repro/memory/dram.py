"""Dynamic-RAM refresh stall model.

The prototype's PE main memories are built from DRAM whose refresh cycles
were engineered to happen simultaneously in all PEs and mostly invisibly;
the paper notes that "some delay is still possible".  We model refresh as a
periodic bus-steal window: during ``[k*period, k*period + steal)`` the
memory is busy and an access arriving inside the window waits for the
remainder of it.

The model is deterministic (a pure function of the access time), so the
micro engine stays reproducible and the macro model can integrate the same
schedule in closed form (average stall per access =
``steal^2 / (2 * period)``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RefreshModel:
    """Periodic refresh bus-steal.

    Parameters
    ----------
    period:
        Cycles between refresh windows.  A 128-row, 2 ms refresh at 8 MHz
        corresponds to one row every 125 µs = 125 cycles; the prototype hid
        most of this, so the *residual* visible window is configured here.
    steal:
        Cycles the memory is unavailable at the start of each period.
        ``steal = 0`` disables refresh entirely.
    """

    period: int = 125
    steal: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"refresh period must be positive, got {self.period}")
        if not 0 <= self.steal < self.period:
            raise ValueError(
                f"refresh steal must be in [0, period), got {self.steal}"
            )

    def stall_cycles(self, now: float, n_accesses: int = 1) -> float:
        """Stall suffered by an access sequence starting at time ``now``.

        Only the first access of a burst can collide (the rest follow
        contiguously, and a window cannot recur within one instruction's
        burst for realistic parameters).
        """
        if self.steal == 0 or n_accesses <= 0:
            return 0.0
        phase = now % self.period
        if phase < self.steal:
            return self.steal - phase
        return 0.0

    def inline_constants(self) -> tuple[int, int]:
        """``(period, steal)`` for closed-form inlining in bus hot paths.

        The buses hoist these two integers once at construction and
        compute the stall arithmetic in place (``phase = now % period;
        stall = steal - phase if phase < steal else 0``) instead of
        calling :meth:`stall_cycles` per access — the same pure function
        of absolute time, without the attribute chase and call overhead.
        ``steal == 0`` lets the caller skip the computation entirely.
        """
        return self.period, self.steal

    def batch_stall_cycles(self, start: float, burst_offsets) -> float:
        """Closed-form total stall for bursts starting at known offsets.

        ``burst_offsets`` are cycle offsets (relative to ``start``) at
        which independent access bursts begin, assuming earlier stalls
        are already folded into later offsets.  Used by analysis code
        that replays an access schedule without stepping events.
        """
        if self.steal == 0:
            return 0.0
        total = 0.0
        period, steal = self.period, self.steal
        for off in burst_offsets:
            phase = (start + off) % period
            if phase < steal:
                total += steal - phase
        return total

    @property
    def average_stall_per_access(self) -> float:
        """Expected stall for an access at a uniformly random phase."""
        if self.steal == 0:
            return 0.0
        return (self.steal * self.steal) / (2.0 * self.period)

    @property
    def duty(self) -> float:
        """Fraction of time the memory is stolen for refresh."""
        return self.steal / self.period
