"""Memory-system model: regions, wait states, and DRAM refresh.

The paper attributes part of the SIMD speed advantage to memory technology:

* PE main memories are **dynamic** RAM and need one more wait state per
  access than the Fetch Unit Queue, which is **static** RAM;
* DRAM refresh is organized to be almost invisible, but "some delay is
  still possible" — no such delay exists on queue fetches.

This package provides those mechanisms as explicit, testable components:
:class:`~repro.memory.dram.RefreshModel`,
:class:`~repro.memory.map.MemoryMap` with per-region wait states and device
handlers, and :class:`~repro.memory.module.MemoryModule` (a plain RAM
image).
"""

from repro.memory.dram import RefreshModel
from repro.memory.map import MemoryMap, Region, RegionKind
from repro.memory.module import MemoryModule

__all__ = ["RefreshModel", "MemoryMap", "Region", "RegionKind", "MemoryModule"]
