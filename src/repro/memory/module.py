"""A plain RAM image with big-endian word access and alignment checks."""

from __future__ import annotations

import numpy as np

from repro.errors import AddressError


class MemoryModule:
    """Byte-addressable RAM of a fixed size starting at a base address.

    Values are stored big-endian (MC68000 byte order).  This is the storage
    behind PE and MC main memories; timing (wait states, refresh) is applied
    by the bus, not here.
    """

    def __init__(self, size: int, base: int = 0) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.base = base
        self.data = bytearray(size)

    def __len__(self) -> int:
        return len(self.data)

    def _offset(self, addr: int, size: int) -> int:
        off = addr - self.base
        if off < 0 or off + size > len(self.data):
            raise AddressError(
                f"access at {addr:#x} ({size}B) outside module "
                f"[{self.base:#x}, {self.base + len(self.data):#x})"
            )
        if size >= 2 and addr % 2:
            raise AddressError(f"misaligned {size}-byte access at {addr:#x}")
        return off

    def read(self, addr: int, size: int) -> int:
        data = self.data
        off = addr - self.base
        if off < 0 or off + size > len(data) or (size >= 2 and addr & 1):
            off = self._offset(addr, size)  # raises the precise error
        return int.from_bytes(data[off : off + size], "big")

    def write(self, addr: int, value: int, size: int) -> None:
        data = self.data
        off = addr - self.base
        if off < 0 or off + size > len(data) or (size >= 2 and addr & 1):
            off = self._offset(addr, size)  # raises the precise error
        data[off : off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "big"
        )

    def load(self, addr: int, blob: bytes) -> None:
        """Bulk-load ``blob`` at ``addr`` (no timing, used by loaders)."""
        off = self._offset(addr, max(len(blob), 1))
        self.data[off : off + len(blob)] = blob

    def read_words(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` big-endian 16-bit words as a numpy array."""
        off = self._offset(addr, 2 * count if count else 1)
        return np.frombuffer(
            bytes(self.data[off : off + 2 * count]), dtype=">u2"
        ).astype(np.uint16)

    def write_words(self, addr: int, values: np.ndarray) -> None:
        """Write a numpy array of 16-bit words big-endian at ``addr``."""
        arr = np.asarray(values, dtype=np.uint16).astype(">u2")
        blob = arr.tobytes()
        off = self._offset(addr, max(len(blob), 1))
        self.data[off : off + len(blob)] = blob
