"""Circuit-switched resource allocation.

Being circuit switched, the PASM network dedicates every output link on a
path to its circuit until released.  Setting up a path is the
"time-consuming operation" the paper mentions; the matrix-multiplication
algorithm was designed to need only **one** setting (PE *i* → PE
*(i − 1) mod p*) for the entire run, so set-up cost never recurs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.errors import NetworkFaultError, RoutingConflictError
from repro.network.routing import Path, route
from repro.network.topology import ExtraStageCubeTopology, Fault


@dataclass(frozen=True)
class Circuit:
    """An established circuit (immutable handle)."""

    circuit_id: int
    path: Path


@dataclass
class CircuitSwitchedNetwork:
    """Allocates circuits over an Extra-Stage Cube topology.

    Parameters
    ----------
    topology:
        The static network structure.
    extra_stage_enabled:
        Whether the extra stage's boxes are active (normal operation
        bypasses them; enable for fault tolerance or extra permutation
        freedom).
    faults:
        Currently failed boxes/links.
    setup_cycles:
        Cost of establishing one circuit, charged by the machine model at
        path set-up time.
    """

    topology: ExtraStageCubeTopology
    extra_stage_enabled: bool = False
    faults: set[Fault] = field(default_factory=set)
    setup_cycles: int = 100
    _claims: dict[tuple[int, int], int] = field(default_factory=dict)
    _circuits: dict[int, Circuit] = field(default_factory=dict)
    _ids: "count[int]" = field(default_factory=count)

    # ------------------------------------------------------------------
    def allocate(self, source: int, dest: int) -> Circuit:
        """Establish a circuit, trying both extra-stage settings on conflict."""
        last_error: Exception | None = None
        for prefer_exchange in (False, True):
            try:
                path = route(
                    self.topology,
                    source,
                    dest,
                    faults=self.faults,
                    extra_stage_enabled=self.extra_stage_enabled,
                    prefer_exchange=prefer_exchange,
                )
            except NetworkFaultError as exc:
                last_error = exc
                break
            conflict = self._conflicting_link(path)
            if conflict is None:
                return self._commit(path)
            last_error = RoutingConflictError(
                f"link stage={conflict[0]} line={conflict[1]} busy for "
                f"circuit {source}->{dest}"
            )
            if not self.extra_stage_enabled:
                break  # only one candidate path exists
        assert last_error is not None
        raise last_error

    def release(self, circuit: Circuit) -> None:
        """Tear down a circuit, freeing its links."""
        stored = self._circuits.pop(circuit.circuit_id, None)
        if stored is None:
            raise RoutingConflictError(
                f"circuit {circuit.circuit_id} is not established"
            )
        for link in circuit.path.output_links():
            del self._claims[link]

    def release_all(self) -> None:
        """Tear down every circuit and drop any stray link claims.

        Clearing ``_claims`` explicitly also recovers claims orphaned by
        a partially failed :meth:`allocate_permutation` (e.g. when a
        release raised midway), so the allocator is always reusable.
        """
        for circuit in list(self._circuits.values()):
            self.release(circuit)
        self._claims.clear()

    def allocate_permutation(self, mapping: dict[int, int]) -> list[Circuit]:
        """Set up circuits for ``source -> dest`` pairs simultaneously.

        All circuits are established or none (atomic); sources must be
        distinct and destinations must be distinct (a partial permutation).
        """
        if len(set(mapping.values())) != len(mapping):
            raise RoutingConflictError("destinations are not distinct")
        established: list[Circuit] = []
        try:
            for source, dest in sorted(mapping.items()):
                established.append(self.allocate(source, dest))
        except (RoutingConflictError, NetworkFaultError):
            for circuit in established:
                self.release(circuit)
            raise
        return established

    def is_admissible(self, mapping: dict[int, int]) -> bool:
        """Can this (partial) permutation be passed in one circuit setting?"""
        try:
            circuits = self.allocate_permutation(mapping)
        except (RoutingConflictError, NetworkFaultError):
            return False
        for circuit in circuits:
            self.release(circuit)
        return True

    # ------------------------------------------------------------------
    def _conflicting_link(self, path: Path) -> tuple[int, int] | None:
        for link in path.output_links():
            if link in self._claims:
                return link
        return None

    def _commit(self, path: Path) -> Circuit:
        circuit = Circuit(next(self._ids), path)
        for link in path.output_links():
            self._claims[link] = circuit.circuit_id
        self._circuits[circuit.circuit_id] = circuit
        return circuit

    @property
    def active_circuits(self) -> list[Circuit]:
        return list(self._circuits.values())
