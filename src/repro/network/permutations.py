"""Permutation families and one-pass admissibility analysis.

The matrix-multiplication algorithm was *designed around* the network: it
needs only the uniform shift, which the cube passes in a single circuit
setting.  These utilities make that kind of reasoning a library feature:
generators for the classic permutation families (shifts, exchanges,
shuffles, bit reversal, butterflies, transpose) and an analyzer that
reports whether — and where — a permutation blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError
from repro.network.circuit import CircuitSwitchedNetwork
from repro.network.routing import route
from repro.network.topology import ExtraStageCubeTopology


# ---------------------------------------------------------------------------
# permutation families (all return {source: dest} over N terminals)
def shift(n_terminals: int, amount: int = 1) -> dict[int, int]:
    """Uniform cyclic shift: i → (i + amount) mod N."""
    return {i: (i + amount) % n_terminals for i in range(n_terminals)}


def exchange(n_terminals: int, bit: int) -> dict[int, int]:
    """Cube exchange: complement one address bit (i → i XOR 2^bit)."""
    if not 0 <= bit < n_terminals.bit_length() - 1:
        raise NetworkError(f"bit {bit} out of range for N={n_terminals}")
    return {i: i ^ (1 << bit) for i in range(n_terminals)}


def bit_reversal(n_terminals: int) -> dict[int, int]:
    """i → reverse of i's address bits (the FFT permutation)."""
    bits = n_terminals.bit_length() - 1
    return {
        i: int(format(i, f"0{bits}b")[::-1], 2) for i in range(n_terminals)
    }


def perfect_shuffle(n_terminals: int) -> dict[int, int]:
    """i → rotate-left of i's address bits."""
    bits = n_terminals.bit_length() - 1
    mask = n_terminals - 1
    return {
        i: ((i << 1) | (i >> (bits - 1))) & mask for i in range(n_terminals)
    }


def butterfly(n_terminals: int) -> dict[int, int]:
    """i → swap most- and least-significant address bits."""
    bits = n_terminals.bit_length() - 1
    hi = 1 << (bits - 1)
    out = {}
    for i in range(n_terminals):
        top, low = (i & hi) >> (bits - 1), i & 1
        j = (i & ~(hi | 1)) | (low << (bits - 1)) | top
        out[i] = j
    return out


def matrix_transpose(n_terminals: int) -> dict[int, int]:
    """i → swap the high and low halves of i's address bits."""
    bits = n_terminals.bit_length() - 1
    if bits % 2:
        raise NetworkError(
            f"transpose needs an even number of address bits, N={n_terminals}"
        )
    half = bits // 2
    mask = (1 << half) - 1
    return {
        i: ((i & mask) << half) | (i >> half) for i in range(n_terminals)
    }


def identity(n_terminals: int) -> dict[int, int]:
    return {i: i for i in range(n_terminals)}


#: Named registry used by the analyzer and tests.
FAMILIES = {
    "identity": identity,
    "shift+1": lambda n: shift(n, 1),
    "shift-1": lambda n: shift(n, -1),
    "shift+N/2": lambda n: shift(n, n // 2),
    "exchange bit 0": lambda n: exchange(n, 0),
    "bit reversal": bit_reversal,
    "perfect shuffle": perfect_shuffle,
    "butterfly": butterfly,
    "transpose": matrix_transpose,
}


# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissibilityReport:
    """One-pass routability of a permutation."""

    admissible: bool
    n_circuits: int
    first_conflict: tuple[int, int] | None  #: (stage, line) that blocked
    conflicting_pair: tuple[int, int] | None  #: the (src, dst) that failed
    used_extra_stage: int = 0  #: circuits that needed the exchanged entry

    def __str__(self) -> str:
        if self.admissible:
            extra = (f", {self.used_extra_stage} via the extra stage"
                     if self.used_extra_stage else "")
            return f"admissible: {self.n_circuits} circuits in one pass{extra}"
        s, d = self.conflicting_pair
        stage, line = self.first_conflict
        return (
            f"blocked: circuit {s}->{d} conflicts at stage {stage}, "
            f"output line {line}"
        )


def analyze_permutation(
    topo: ExtraStageCubeTopology,
    mapping: dict[int, int],
    *,
    extra_stage_enabled: bool = False,
) -> AdmissibilityReport:
    """Try to route ``mapping`` in one circuit setting; report the result."""
    net = CircuitSwitchedNetwork(topo, extra_stage_enabled=extra_stage_enabled)
    established = []
    used_extra = 0
    for src in sorted(mapping):
        dst = mapping[src]
        try:
            circuit = net.allocate(src, dst)
        except NetworkError:
            # Identify the blocking link for the report.
            path = route(topo, src, dst,
                         extra_stage_enabled=extra_stage_enabled)
            conflict = net._conflicting_link(path)
            for c in established:
                net.release(c)
            return AdmissibilityReport(
                admissible=False,
                n_circuits=len(established),
                first_conflict=conflict,
                conflicting_pair=(src, dst),
            )
        established.append(circuit)
        if circuit.path.extra_exchanged:
            used_extra += 1
    for c in established:
        net.release(c)
    return AdmissibilityReport(
        admissible=True,
        n_circuits=len(established),
        first_conflict=None,
        conflicting_pair=None,
        used_extra_stage=used_extra,
    )


def admissibility_survey(
    n_terminals: int = 16, *, extra_stage_enabled: bool = False
) -> dict[str, AdmissibilityReport]:
    """Analyze every registered permutation family on one network size."""
    topo = ExtraStageCubeTopology(n_terminals)
    out = {}
    for name, family in FAMILIES.items():
        try:
            mapping = family(n_terminals)
        except NetworkError:
            continue
        out[name] = analyze_permutation(
            topo, mapping, extra_stage_enabled=extra_stage_enabled
        )
    return out
