"""Destination-tag routing with fault avoidance.

A path is the sequence of lines occupied between stages.  Routing through
the Generalized Cube part is forced: after the stage controlling bit ``i``,
the current line's bit ``i`` must equal the destination's.  The only
freedom is the extra stage (when enabled): passing it *straight* or in
*exchange* yields two paths whose intermediate links differ in bit 0 —
that choice is what provides fault tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkFaultError
from repro.network.topology import ExtraStageCubeTopology, Fault, FaultKind


@dataclass(frozen=True)
class Path:
    """One source→destination circuit through the network.

    ``lines[j]`` is the line occupied *after* traversal stage ``j - 1``
    (``lines[0]`` is the source terminal, ``lines[-1]`` the destination).
    """

    source: int
    dest: int
    lines: tuple[int, ...]
    extra_exchanged: bool

    def output_links(self):
        """Iterate ``(stage, output_line)`` resource claims of the path."""
        for stage, line in enumerate(self.lines[1:]):
            yield (stage, line)

    def boxes(self, topo: ExtraStageCubeTopology):
        """Iterate canonical box ids the path passes through."""
        for stage in range(topo.n_stages):
            yield topo.box_of(stage, self.lines[stage])


def _blocked(
    topo: ExtraStageCubeTopology,
    path_lines: list[int],
    faults: frozenset[Fault],
    extra_enabled: bool,
) -> bool:
    """Does the candidate path touch any faulty element?

    Box faults in the bypassable stages (the extra stage and the final
    cube_0 stage — see
    :meth:`~repro.network.topology.ExtraStageCubeTopology.is_bypassable`)
    block only *exchanged* traversals: a straight traversal rides the
    bypass multiplexer around the box.  That per-box bypass is what makes
    the ESC single-fault tolerant even for output-stage box failures —
    one of the two extra-stage settings always reaches the final stage
    with bit 0 already correct, needing no exchange there.  Box faults in
    the middle stages block every traversal, and link faults always block
    (they are physical wires).
    """
    if not faults:
        return False
    for stage in range(topo.n_stages):
        in_line = path_lines[stage]
        out_line = path_lines[stage + 1]
        box_stage, box_line = topo.box_of(stage, in_line)
        box_matters = in_line != out_line if topo.is_bypassable(stage) else True
        if box_matters and Fault(FaultKind.BOX, box_stage, box_line) in faults:
            return True
        if Fault(FaultKind.LINK, stage, out_line) in faults:
            return True
    return False


def _build(topo: ExtraStageCubeTopology, source: int, dest: int,
           exchange_extra: bool) -> list[int]:
    lines = [source]
    current = source
    for stage in range(topo.n_stages):
        bit = topo.stage_bit(stage)
        if stage == 0:
            if exchange_extra:
                current ^= 1 << bit
        else:
            mask = 1 << bit
            current = (current & ~mask) | (dest & mask)
        lines.append(current)
    return lines


def route(
    topo: ExtraStageCubeTopology,
    source: int,
    dest: int,
    *,
    faults: frozenset[Fault] | set[Fault] = frozenset(),
    extra_stage_enabled: bool = False,
    prefer_exchange: bool = False,
) -> Path:
    """Compute a fault-free path from ``source`` to ``dest``.

    With the extra stage bypassed there is exactly one candidate path (the
    Generalized Cube's unique route).  With it enabled, both the straight
    and exchanged variants are tried — ``prefer_exchange`` flips the order,
    which the circuit allocator uses to resolve conflicts.

    Raises :class:`~repro.errors.NetworkFaultError` when every candidate
    touches a faulty element.
    """
    n = topo.n_terminals
    if not (0 <= source < n and 0 <= dest < n):
        raise ValueError(f"terminal out of range: {source}->{dest} (N={n})")
    faults = frozenset(faults)
    options = [False] if not extra_stage_enabled else (
        [True, False] if prefer_exchange else [False, True]
    )
    rejected: list[tuple[int, ...]] = []
    for exchange in options:
        lines = _build(topo, source, dest, exchange)
        if not _blocked(topo, lines, faults, extra_stage_enabled):
            return Path(source, dest, tuple(lines), exchange)
        rejected.append(tuple(lines))
    fault_names = ", ".join(
        f"{f.kind.value}@stage{f.stage}/line{f.line}"
        for f in sorted(faults, key=lambda f: (f.kind.value, f.stage, f.line))
    ) or "none"
    candidate_names = "; ".join(
        "->".join(str(line) for line in lines) for lines in rejected
    )
    raise NetworkFaultError(
        f"no fault-free path {source}->{dest} "
        f"(extra stage {'enabled' if extra_stage_enabled else 'bypassed'}): "
        f"active faults [{fault_names}]; "
        f"rejected candidate path(s) [{candidate_names}]",
        faults=tuple(sorted(faults,
                            key=lambda f: (f.kind.value, f.stage, f.line))),
        candidates=tuple(rejected),
    )
