"""Destination-tag routing with fault avoidance.

A path is the sequence of lines occupied between stages.  Routing through
the Generalized Cube part is forced: after the stage controlling bit ``i``,
the current line's bit ``i`` must equal the destination's.  The only
freedom is the extra stage (when enabled): passing it *straight* or in
*exchange* yields two paths whose intermediate links differ in bit 0 —
that choice is what provides fault tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkFaultError
from repro.network.topology import ExtraStageCubeTopology, Fault, FaultKind


@dataclass(frozen=True)
class Path:
    """One source→destination circuit through the network.

    ``lines[j]`` is the line occupied *after* traversal stage ``j - 1``
    (``lines[0]`` is the source terminal, ``lines[-1]`` the destination).
    """

    source: int
    dest: int
    lines: tuple[int, ...]
    extra_exchanged: bool

    def output_links(self):
        """Iterate ``(stage, output_line)`` resource claims of the path."""
        for stage, line in enumerate(self.lines[1:]):
            yield (stage, line)

    def boxes(self, topo: ExtraStageCubeTopology):
        """Iterate canonical box ids the path passes through."""
        for stage in range(topo.n_stages):
            yield topo.box_of(stage, self.lines[stage])


def _blocked(
    topo: ExtraStageCubeTopology,
    path_lines: list[int],
    faults: frozenset[Fault],
    extra_enabled: bool,
) -> bool:
    """Does the candidate path touch any faulty element?

    A bypassed stage's boxes cannot block a straight traversal (the bypass
    multiplexer skips the box), so extra-stage box faults only matter when
    the extra stage is enabled.
    """
    if not faults:
        return False
    for stage in range(topo.n_stages):
        in_line = path_lines[stage]
        out_line = path_lines[stage + 1]
        box_stage, box_line = topo.box_of(stage, in_line)
        box_matters = extra_enabled or stage != 0
        if box_matters and Fault(FaultKind.BOX, box_stage, box_line) in faults:
            return True
        if Fault(FaultKind.LINK, stage, out_line) in faults:
            return True
    return False


def _build(topo: ExtraStageCubeTopology, source: int, dest: int,
           exchange_extra: bool) -> list[int]:
    lines = [source]
    current = source
    for stage in range(topo.n_stages):
        bit = topo.stage_bit(stage)
        if stage == 0:
            if exchange_extra:
                current ^= 1 << bit
        else:
            mask = 1 << bit
            current = (current & ~mask) | (dest & mask)
        lines.append(current)
    return lines


def route(
    topo: ExtraStageCubeTopology,
    source: int,
    dest: int,
    *,
    faults: frozenset[Fault] | set[Fault] = frozenset(),
    extra_stage_enabled: bool = False,
    prefer_exchange: bool = False,
) -> Path:
    """Compute a fault-free path from ``source`` to ``dest``.

    With the extra stage bypassed there is exactly one candidate path (the
    Generalized Cube's unique route).  With it enabled, both the straight
    and exchanged variants are tried — ``prefer_exchange`` flips the order,
    which the circuit allocator uses to resolve conflicts.

    Raises :class:`~repro.errors.NetworkFaultError` when every candidate
    touches a faulty element.
    """
    n = topo.n_terminals
    if not (0 <= source < n and 0 <= dest < n):
        raise ValueError(f"terminal out of range: {source}->{dest} (N={n})")
    faults = frozenset(faults)
    options = [False] if not extra_stage_enabled else (
        [True, False] if prefer_exchange else [False, True]
    )
    for exchange in options:
        lines = _build(topo, source, dest, exchange)
        if not _blocked(topo, lines, faults, extra_stage_enabled):
            return Path(source, dest, tuple(lines), exchange)
    raise NetworkFaultError(
        f"no fault-free path {source}->{dest} "
        f"(extra stage {'enabled' if extra_stage_enabled else 'bypassed'}, "
        f"{len(faults)} fault(s))"
    )
