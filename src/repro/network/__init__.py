"""Circuit-switched Extra-Stage Cube interconnection network.

The PASM prototype's PEs communicate through a circuit-switched
**Extra-Stage Cube** (ESC) network — a Generalized Cube multistage network
(log2 N stages of 2x2 interchange boxes, stage *i* pairing lines that
differ in bit *i*) augmented with an extra input stage that duplicates the
cube-0 stage.  The extra stage provides a second, disjoint-in-the-middle
path between every source/destination pair, making the network
single-fault tolerant (Adams & Siegel, 1982).

The data path is 8 bits wide; 16-bit matrix elements therefore cross the
network as two byte transfers framed by shift/OR instructions, exactly as
Section 4 of the paper describes.

Components:

* :mod:`~repro.network.topology` — stages, interchange boxes, link naming;
* :mod:`~repro.network.routing` — destination-tag path computation with
  fault avoidance via the extra stage;
* :mod:`~repro.network.circuit` — circuit-switched resource allocation
  (path set-up, conflict detection, permutation routing);
* :mod:`~repro.network.transfer` — the PE-visible transfer registers and
  the byte-moving fabric processes used by the machine simulation.
"""

from repro.network.circuit import Circuit, CircuitSwitchedNetwork
from repro.network.routing import Path, route
from repro.network.topology import ExtraStageCubeTopology, Fault, FaultKind
from repro.network.transfer import NetworkFabric, TransferPort

__all__ = [
    "ExtraStageCubeTopology",
    "Fault",
    "FaultKind",
    "Path",
    "route",
    "Circuit",
    "CircuitSwitchedNetwork",
    "NetworkFabric",
    "TransferPort",
]
