"""Transfer registers and the byte-moving fabric.

The network appears to each PE as memory-mapped **transmit** and
**receive** registers plus a status register:

* writing the transmit register hands one byte to the network; the
  hardware refuses to overwrite an un-consumed byte (the write stalls the
  bus in SIMD mode, while MIMD programs poll TX_READY first);
* reading the receive register consumes one byte (stalling until one is
  valid in SIMD mode; MIMD programs poll RX_VALID first);
* the status register exposes ``TX_READY`` (bit 0) and ``RX_VALID``
  (bit 1) without blocking.

A :class:`NetworkFabric` owns one :class:`TransferPort` per terminal and a
mover process per established circuit that carries bytes from the source's
transmit register to the destination's receive register with a fixed
transport latency.
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.network.circuit import Circuit, CircuitSwitchedNetwork
from repro.sim import Environment, Store

#: Status-register bits.
TX_READY = 0x01
RX_VALID = 0x02


class TransferPort:
    """One PE's network interface registers."""

    def __init__(self, env: Environment, terminal: int) -> None:
        self.env = env
        self.terminal = terminal
        self._tx = Store(env, capacity=1, name=f"tx{terminal}")
        self._rx = Store(env, capacity=1, name=f"rx{terminal}")
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- PE-side operations (generators; may block) ---------------------
    def write_tx(self, value: int):
        """Generator: hand a byte to the network (blocks while TX busy)."""
        self.bytes_sent += 1
        yield self._tx.put(value & 0xFF)

    def read_rx(self):
        """Generator: consume a received byte (blocks until RX valid)."""
        value = yield self._rx.get()
        self.bytes_received += 1
        return value

    def status(self) -> int:
        """Non-blocking status-register value."""
        s = 0
        if not self._tx.is_full:
            s |= TX_READY
        if not self._rx.is_empty:
            s |= RX_VALID
        return s

    @property
    def tx_ready(self) -> bool:
        return bool(self.status() & TX_READY)

    @property
    def rx_valid(self) -> bool:
        return bool(self.status() & RX_VALID)


class NetworkFabric:
    """Binds established circuits to byte-mover simulation processes.

    Parameters
    ----------
    env:
        Simulation environment.
    network:
        The circuit allocator (topology + faults + claims).
    byte_latency:
        Transport cycles for one byte from transmit to receive register
        through the established circuit.
    """

    def __init__(
        self,
        env: Environment,
        network: CircuitSwitchedNetwork,
        byte_latency: int = 8,
    ) -> None:
        self.env = env
        self.network = network
        self.byte_latency = byte_latency
        self.ports = [
            TransferPort(env, t) for t in range(network.topology.n_terminals)
        ]
        self._active: dict[int, bool] = {}
        self._pending_get: dict[int, object] = {}

    def connect(self, source: int, dest: int) -> Circuit:
        """Establish a circuit and start carrying bytes along it."""
        circuit = self.network.allocate(source, dest)
        self._active[circuit.circuit_id] = True
        self.env.process(
            self._mover(circuit), name=f"net:{source}->{dest}"
        )
        return circuit

    def connect_permutation(self, mapping: dict[int, int]) -> list[Circuit]:
        """Establish circuits for a (partial) permutation, all movers running."""
        circuits = self.network.allocate_permutation(mapping)
        for circuit in circuits:
            self._active[circuit.circuit_id] = True
            self.env.process(
                self._mover(circuit),
                name=f"net:{circuit.path.source}->{circuit.path.dest}",
            )
        return circuits

    def disconnect(self, circuit: Circuit) -> None:
        """Tear down a circuit.  Must be idle (no byte in its registers)."""
        port = self.ports[circuit.path.source]
        if not port._tx.is_empty:
            raise NetworkError(
                f"cannot tear down circuit {circuit.path.source}->"
                f"{circuit.path.dest}: transmit register not empty"
            )
        cid = circuit.circuit_id
        self._active[cid] = False
        # Retire the mover: withdraw its pending transmit-register get so
        # it cannot steal a byte sent over a later circuit from this port.
        pending = self._pending_get.pop(cid, None)
        if pending is not None:
            port._tx.cancel_get(pending)
        self.network.release(circuit)

    def _mover(self, circuit: Circuit):
        src_port = self.ports[circuit.path.source]
        dst_port = self.ports[circuit.path.dest]
        cid = circuit.circuit_id
        while self._active.get(cid):
            get_ev = src_port._tx.get()
            self._pending_get[cid] = get_ev
            value = yield get_ev
            self._pending_get.pop(cid, None)
            yield self.env.timeout(self.byte_latency)
            yield dst_port._rx.put(value)
