"""Extra-Stage Cube topology.

Stage layout for ``N = 2**n`` terminals, in traversal order from source to
destination::

    stage index 0:      the EXTRA stage, implementing cube_0
    stage index 1..n:   the Generalized Cube stages, implementing
                        cube_{n-1} ... cube_0

Each stage contains ``N/2`` two-by-two interchange boxes; the box at stage
``s`` handling line ``l`` pairs lines ``l`` and ``l ^ bit(s)``.  The extra
stage and the final cube_0 stage carry bypass multiplexers: when a stage is
*bypassed*, its boxes are forced straight (and its boxes cannot fail the
network, since the bypass path skips them).

In normal operation the extra stage is bypassed; it is enabled to route
around faults.  This module is pure structure — no simulation state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(enum.Enum):
    BOX = "box"  #: a whole interchange box is faulty
    LINK = "link"  #: an output link of a stage is faulty


@dataclass(frozen=True)
class Fault:
    """A failed element.

    ``stage`` is a traversal index (0 = extra stage); for ``BOX`` faults
    ``line`` may be either line of the box (it is canonicalized to the lower
    one); for ``LINK`` faults ``line`` is the stage's *output* line number.
    """

    kind: FaultKind
    stage: int
    line: int


class ExtraStageCubeTopology:
    """Static structure of an N-terminal Extra-Stage Cube network."""

    def __init__(self, n_terminals: int) -> None:
        if n_terminals < 2 or n_terminals & (n_terminals - 1):
            raise ValueError(
                f"terminal count must be a power of two >= 2, got {n_terminals}"
            )
        self.n_terminals = n_terminals
        self.n_bits = n_terminals.bit_length() - 1
        #: cube bit controlled by each traversal stage.
        self.stage_bits = [0] + list(range(self.n_bits - 1, -1, -1))

    @property
    def n_stages(self) -> int:
        """Traversal stages including the extra stage (= n + 1)."""
        return self.n_bits + 1

    def stage_bit(self, stage: int) -> int:
        """The cube dimension stage ``stage`` can exchange."""
        return self.stage_bits[stage]

    def is_bypassable(self, stage: int) -> bool:
        """Does this stage carry bypass multiplexers?

        The extra stage and the final cube_0 stage do (they implement the
        same dimension, so either can stand in for the other); a faulty
        box there blocks only *exchanged* traversals, since straight
        traversals take the bypass path around the box.
        """
        return stage == 0 or stage == self.n_stages - 1

    def box_of(self, stage: int, line: int) -> tuple[int, int]:
        """Canonical (stage, low-line) id of the box serving ``line``."""
        bit = self.stage_bit(stage)
        return (stage, line & ~(1 << bit))

    def partner(self, stage: int, line: int) -> int:
        """The other line of the box serving ``line`` at ``stage``."""
        return line ^ (1 << self.stage_bit(stage))

    def boxes(self, stage: int):
        """Iterate canonical box ids of one stage."""
        bit = self.stage_bit(stage)
        for line in range(self.n_terminals):
            if not line & (1 << bit):
                yield (stage, line)

    def describe(self) -> str:
        """Short structural summary (for logs and docs)."""
        return (
            f"Extra-Stage Cube: {self.n_terminals} terminals, "
            f"{self.n_stages} stages (extra + cube"
            f"{list(range(self.n_bits - 1, -1, -1))}), "
            f"{self.n_terminals // 2} boxes/stage"
        )
