"""Processing Element: CPU + memory + network port + SIMD-space logic."""

from repro.pe.processing_element import PEBus, ProcessingElement

__all__ = ["ProcessingElement", "PEBus"]
