"""Processing Element model.

Each PE is a processor/memory pair plus the address-decode logic that makes
PASM's mode switching work:

* instruction fetches from **main RAM** run the PE's own (MIMD) program;
* any access to the reserved **SIMD instruction space** becomes a request
  to the MC's Fetch Unit Queue — an instruction fetch there receives the
  next broadcast instruction (SIMD mode), while a *data read* there is the
  barrier-synchronization trick (the PE proceeds only when all enabled PEs
  have read);
* the **network transfer registers** move bytes over the established
  circuit, blocking in hardware when not ready (SIMD's implicit
  synchronization) or polled via the status register (MIMD).

Mode switching is therefore "reduced to executing a jump instruction":
jumping into SIMD space starts consuming broadcast instructions; a
broadcast jump back to PE memory resumes the MIMD program.
"""

from __future__ import annotations

from repro.errors import BusError, SimulationError
from repro.fetch_unit.queue import FetchUnitQueue
from repro.m68k.assembler import AssembledProgram
from repro.m68k.bus import access_count
from repro.m68k.cpu import CPU
from repro.m68k.instructions import Instruction
from repro.machine.config import PrototypeConfig
from repro.memory.map import RegionKind
from repro.memory.module import MemoryModule
from repro.network.transfer import TransferPort


class PEBus:
    """The PE's address decoder / bus timing model."""

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        memory: MemoryModule,
        port: TransferPort | None,
        queue: FetchUnitQueue | None,
        pe_slot: int,
        name: str = "pe",
    ) -> None:
        self.env = env
        self.config = config
        self.map = config.memory_map()
        self.memory = memory
        self.port = port
        self.queue = queue
        self.pe_slot = pe_slot
        self.name = name
        self.instructions: dict[int, Instruction] = {}
        # -- instrumentation ------------------------------------------------
        self.stream_accesses = 0
        self.data_accesses = 0
        self.queue_fetches = 0
        self.net_bytes_sent = 0
        self.net_bytes_received = 0
        self.sync_reads = 0

    # ------------------------------------------------------------------
    def load_program(self, program: AssembledProgram) -> None:
        self.instructions.update(program.instructions)
        for addr, chunk in program.data:
            self.memory.load(addr, chunk)

    def _ram_access(self, n_accesses: int, wait_states: int) -> float:
        cycles = n_accesses * (4 + wait_states)
        cycles += self.config.refresh.stall_cycles(self.env.now, n_accesses)
        return cycles

    # -- CPU bus protocol -------------------------------------------------
    def fetch_instruction(self, addr: int):
        region = self.map.lookup(addr)
        if region.kind is RegionKind.MAIN_RAM:
            try:
                instr = self.instructions[addr]
            except KeyError:
                raise BusError(
                    f"{self.name}: no instruction at {addr:#x}"
                ) from None
            n = instr.encoded_words()
            self.stream_accesses += n
            yield self.env.timeout(self._ram_access(n, region.wait_states))
            return instr
        if region.kind is RegionKind.SIMD_SPACE:
            if self.queue is None:
                raise BusError(f"{self.name}: no Fetch Unit attached")
            item = yield from self.queue.request(self.pe_slot)
            if item.payload is None:
                raise SimulationError(
                    f"{self.name}: fetched a bare sync word as an instruction"
                )
            n = item.words
            self.queue_fetches += n
            self.stream_accesses += n
            # Queue fetches: static RAM, no refresh.
            yield self.env.timeout(n * (4 + region.wait_states))
            return item.payload
        raise BusError(
            f"{self.name}: cannot execute from {region.kind.value} at {addr:#x}"
        )

    def fetch_stream_words(self, addr: int, n: int):
        region = self.map.lookup(addr)
        self.stream_accesses += n
        if region.kind is RegionKind.MAIN_RAM:
            yield self.env.timeout(self._ram_access(n, region.wait_states))
        else:
            yield self.env.timeout(n * (4 + region.wait_states))

    def read(self, addr: int, size: int):
        region = self.map.lookup(addr)
        kind = region.kind
        if kind is RegionKind.MAIN_RAM:
            n = access_count(size)
            self.data_accesses += n
            yield self.env.timeout(self._ram_access(n, region.wait_states))
            return self.memory.read(addr, size)
        if kind is RegionKind.SIMD_SPACE:
            # Barrier: a data read from SIMD space consumes one queue word
            # and completes only when all enabled PEs have read it.
            item = yield from self.queue.request(self.pe_slot)
            if item.payload is not None:
                raise SimulationError(
                    f"{self.name}: barrier read consumed an instruction "
                    f"({item.payload})"
                )
            self.sync_reads += 1
            self.data_accesses += 1
            yield self.env.timeout(4 + region.wait_states)
            return 0
        if kind is RegionKind.NET_RX:
            value = yield from self.port.read_rx()
            self.net_bytes_received += 1
            self.data_accesses += 1
            yield self.env.timeout(4 + region.wait_states)
            return value
        if kind is RegionKind.NET_STATUS:
            self.data_accesses += 1
            yield self.env.timeout(4 + region.wait_states)
            return self.port.status()
        if kind is RegionKind.TIMER:
            self.data_accesses += access_count(size)
            yield self.env.timeout(
                access_count(size) * (4 + region.wait_states)
            )
            return int(self.env.now) & ((1 << (8 * size)) - 1)
        raise BusError(f"{self.name}: cannot read {kind.value} at {addr:#x}")

    def write(self, addr: int, value: int, size: int):
        region = self.map.lookup(addr)
        kind = region.kind
        if kind is RegionKind.MAIN_RAM:
            n = access_count(size)
            self.data_accesses += n
            yield self.env.timeout(self._ram_access(n, region.wait_states))
            self.memory.write(addr, value, size)
            return
        if kind is RegionKind.NET_TX:
            if size != 1:
                raise BusError(
                    f"{self.name}: network data path is 8 bits wide; "
                    f"{size}-byte write to NET_TX"
                )
            yield from self.port.write_tx(value)
            self.net_bytes_sent += 1
            self.data_accesses += 1
            yield self.env.timeout(4 + region.wait_states)
            return
        raise BusError(f"{self.name}: cannot write {kind.value} at {addr:#x}")

    def internal(self, cycles: float):
        yield self.env.timeout(cycles)


class ProcessingElement:
    """A PE: one MC68000 on a :class:`PEBus`."""

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        physical_id: int,
        port: TransferPort | None = None,
        queue: FetchUnitQueue | None = None,
        pe_slot: int | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.physical_id = physical_id
        self.memory = MemoryModule(config.ram_size)
        self.bus = PEBus(
            env,
            config,
            self.memory,
            port,
            queue,
            pe_slot if pe_slot is not None else physical_id,
            name=f"PE{physical_id}",
        )
        self.cpu = CPU(env, self.bus, name=f"PE{physical_id}")

    def load_program(self, program: AssembledProgram, *, start_at=None) -> None:
        """Load code+data and point the CPU at the entry."""
        self.bus.load_program(program)
        self.cpu.reset(
            pc=start_at if start_at is not None else program.entry,
            sp=self.config.ram_size - 4,
        )

    def enter_simd_mode(self) -> None:
        """Point the CPU into the SIMD instruction space (mode switch)."""
        self.cpu.reset(pc=self.config.simd_space_base, sp=self.config.ram_size - 4)

    def run_process(self):
        """Create the PE's simulation process."""
        return self.env.process(self.cpu.run(), name=f"PE{self.physical_id}")
