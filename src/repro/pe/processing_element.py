"""Processing Element model.

Each PE is a processor/memory pair plus the address-decode logic that makes
PASM's mode switching work:

* instruction fetches from **main RAM** run the PE's own (MIMD) program;
* any access to the reserved **SIMD instruction space** becomes a request
  to the MC's Fetch Unit Queue — an instruction fetch there receives the
  next broadcast instruction (SIMD mode), while a *data read* there is the
  barrier-synchronization trick (the PE proceeds only when all enabled PEs
  have read);
* the **network transfer registers** move bytes over the established
  circuit, blocking in hardware when not ready (SIMD's implicit
  synchronization) or polled via the status register (MIMD).

Mode switching is therefore "reduced to executing a jump instruction":
jumping into SIMD space starts consuming broadcast instructions; a
broadcast jump back to PE memory resumes the MIMD program.
"""

from __future__ import annotations

from repro.errors import BusError, SimulationError
from repro.fetch_unit.queue import FetchUnitQueue
from repro.m68k.assembler import AssembledProgram
from repro.m68k.bus import access_count
from repro.m68k.cpu import CPU
from repro.m68k.instructions import Instruction
from repro.machine.config import PrototypeConfig
from repro.memory.map import RegionKind
from repro.memory.module import MemoryModule
from repro.network.transfer import TransferPort
from repro.sim.events import PENDING
from repro.sim.localtime import LocalTimeBus


class PEBus(LocalTimeBus):
    """The PE's address decoder / bus timing model.

    With ``fast_path`` enabled (see :mod:`repro.sim.localtime`), private
    charges — main-RAM traffic and internal cycles — accrue in the local
    clock; the bus flushes before every shared-resource interaction (Fetch
    Unit Queue, network transfer registers) and for every sampling access
    (network status, timer).
    """

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        memory: MemoryModule,
        port: TransferPort | None,
        queue: FetchUnitQueue | None,
        pe_slot: int,
        name: str = "pe",
        fast_path: bool | None = None,
        lockstep: bool = False,
    ) -> None:
        self.env = env
        self.config = config
        self.map = config.memory_map()
        self.memory = memory
        self.port = port
        self.queue = queue
        self.pe_slot = pe_slot
        self.name = name
        self.instructions: dict[int, Instruction] = {}
        self._ref_period, self._ref_steal = config.refresh.inline_constants()
        # Region decode caches (the map is immutable after build).  The
        # instruction stream has near-perfect region locality (PC walks
        # one region at a time), so fetches keep the last region.  Data
        # accesses keep the last region too — streaming pointers
        # ((A0)+/(A1)+) advance monotonically within one region, so a
        # bounds check beats per-address memoization — with a per-address
        # dict behind it for access patterns that alternate regions
        # (main RAM ↔ network ports in transfer blocks).
        self._fetch_region = None
        self._data_region = None
        self._data_regions: dict = {}
        # -- instrumentation ------------------------------------------------
        self.stream_accesses = 0
        self.data_accesses = 0
        self.queue_fetches = 0
        self.net_bytes_sent = 0
        self.net_bytes_received = 0
        self.sync_reads = 0
        #: Lockstep tier (see repro.sim.lockstep): queue rendezvous are
        #: stamped-arrival requests resolved by carrier, not flush+event.
        self.lockstep = lockstep
        self.lockstep_rendezvous = 0  #: stamped requests issued
        self._req_ev = None  #: recycled request event (one pending max)
        self._simd_ws = 0  #: SIMD-space wait states, stashed at request
        #: Vectorized tier (repro.sim.vectorized): True while this PE's
        #: CPU loop is streaming uncapped and untraced, i.e. whole
        #: batches may be executed on its behalf and delivered as a
        #: ``(None, t)`` sentinel.  Set by the CPU at run() entry.
        self.vec_stream_ok = False
        # -- tracing ---------------------------------------------------------
        #: When set, the four blocking sites below record (kind, t0, t1)
        #: wait intervals.  ``sync()`` precedes every site, so env.now is
        #: bus-true at both endpoints and the interval is exact.
        self.trace_waits = False
        self.wait_spans: list[tuple[str, float, float]] = []
        self._init_local_clock(fast_path)

    # ------------------------------------------------------------------
    def load_program(self, program: AssembledProgram) -> None:
        self.instructions.update(program.instructions)
        for addr, chunk in program.data:
            self.memory.load(addr, chunk)

    def _fregion(self, addr: int):
        region = self._fetch_region
        if region is None or not (region.start <= addr < region.end):
            region = self.map.lookup(addr)  # raises on unmapped addresses
            self._fetch_region = region
        return region

    def _dregion(self, addr: int):
        region = self._data_region
        if region is not None and region.start <= addr < region.end:
            return region
        region = self._data_regions.get(addr)
        if region is None:
            region = self.map.lookup(addr)  # raises on unmapped addresses
            self._data_regions[addr] = region
        self._data_region = region
        return region

    def _ram_access(self, n_accesses: int, wait_states: int) -> float:
        # Refresh stall is a pure function of bus-true absolute time;
        # inlined closed form of RefreshModel.stall_cycles.
        cycles = n_accesses * (4 + wait_states)
        steal = self._ref_steal
        if steal:
            phase = (self.env.now + self._local) % self._ref_period
            if phase < steal:
                cycles += steal - phase
        return cycles

    # -- CPU bus protocol -------------------------------------------------
    # -- non-generator fast ops (fast path only; None/False = fall back
    # to the generator protocol) ----------------------------------------
    def try_fetch_instruction(self, addr: int):
        """Fetch + charge entirely locally, or None to use the generator.

        Hot path: region lookup and the refresh closed form are inlined
        (same arithmetic as :meth:`_fregion` / :meth:`_ram_access`).
        """
        if not self.fast_path:
            return None
        region = self._fetch_region
        if region is None or not (region.start <= addr < region.end):
            region = self.map.lookup(addr)
            self._fetch_region = region
        if region.kind is not RegionKind.MAIN_RAM:
            return None
        instr = self.instructions.get(addr)
        if instr is None:
            return None  # generator path raises the BusError
        n = instr._encoded_words_cache
        if n is None:
            n = instr.encoded_words()
        self.stream_accesses += n
        cycles = n * (4 + region.wait_states)
        steal = self._ref_steal
        if steal:
            phase = (self.env.now + self._local) % self._ref_period
            if phase < steal:
                cycles += steal - phase
        self._local += cycles
        self._lc = cycles
        self.local_charges += 1
        return instr

    def try_fetch_stream_words(self, addr: int, n: int) -> bool:
        if not self.fast_path:
            return False
        region = self._fregion(addr)
        self.stream_accesses += n
        if region.kind is RegionKind.MAIN_RAM:
            cycles = self._ram_access(n, region.wait_states)
        else:
            cycles = n * (4 + region.wait_states)
        self._local += cycles
        self._lc = cycles
        self.local_charges += 1
        return True

    def try_read(self, addr: int, size: int):
        """Local read value, or None to use the generator protocol."""
        if not self.fast_path:
            return None
        region = self._data_region
        if region is None or not (region.start <= addr < region.end):
            region = self._dregion(addr)
        if region.kind is not RegionKind.MAIN_RAM:
            return None
        n = 2 if size == 4 else 1
        self.data_accesses += n
        cycles = n * (4 + region.wait_states)
        steal = self._ref_steal
        if steal:
            phase = (self.env.now + self._local) % self._ref_period
            if phase < steal:
                cycles += steal - phase
        self._local += cycles
        self._lc = cycles
        self.local_charges += 1
        return self.memory.read(addr, size)

    def try_write(self, addr: int, value: int, size: int) -> bool:
        if not self.fast_path:
            return False
        region = self._data_region
        if region is None or not (region.start <= addr < region.end):
            region = self._dregion(addr)
        if region.kind is not RegionKind.MAIN_RAM:
            return False
        n = 2 if size == 4 else 1
        self.data_accesses += n
        cycles = n * (4 + region.wait_states)
        steal = self._ref_steal
        if steal:
            phase = (self.env.now + self._local) % self._ref_period
            if phase < steal:
                cycles += steal - phase
        self._local += cycles
        self._lc = cycles
        self.local_charges += 1
        self.memory.write(addr, value, size)
        return True

    def try_queue_fetch(self, addr: int):
        """Lockstep fast twin of the SIMD-space instruction fetch.

        Registers the stamped request inline and returns the event the
        CPU loop parks on directly (one ``yield``, no sub-generator
        frames); ``None`` falls back to the generator protocol (not in
        SIMD space, lockstep off, or wait-span tracing armed).  When
        this PE's stamp completes the rendezvous the queue may resolve
        the release *synchronously* — the returned event comes back
        already fired and the CPU loop continues without parking at
        all.  The CPU completes either way via
        :meth:`finish_queue_fetch`.
        """
        if not self.lockstep or self.trace_waits:
            return None
        region = self._fetch_region
        if region is None or not (region.start <= addr < region.end):
            region = self.map.lookup(addr)
            self._fetch_region = region
        if region.kind is not RegionKind.SIMD_SPACE:
            return None
        queue = self.queue
        if queue is None or self.pe_slot in queue._requests:
            return None  # generator path raises the structured error
        self._simd_ws = region.wait_states
        arrival = self.env.now + self._local
        self._local = 0.0
        self.lockstep_rendezvous += 1
        ev = self._req_ev
        if ev is not None and ev.callbacks is None:
            # Recycle: the previous request was delivered (carrier-fired,
            # never heap-scheduled), so the object is free again.
            ev.callbacks = []
            ev._value = PENDING
            ev._ok = True
        else:
            ev = self.env.event(name=f"req:{self.name}")
            self._req_ev = ev
        # arrival - _lc = the schedule instant of the final charge event
        # on the pure-event path — the heap position of the succeed this
        # stamp may enable (same-timestamp tie-breaking in the queue).
        return queue.register_request_inline(self.pe_slot, arrival, ev,
                                             arrival - self._lc)

    def finish_queue_fetch(self, pair) -> Instruction | None:
        """Complete a :meth:`try_queue_fetch` from its ``(item, t_r)`` pair.

        A ``(None, t)`` pair is the vectorized-batch sentinel: the batch
        already executed this PE's instructions and accounted every
        charge (registers, memory, counters, categories) — only the
        local clock needs rebasing on the batch completion stamp.
        Returns ``None``; the CPU loop re-enters its fetch.
        """
        item, released = pair
        if item is None:
            self._local = released - self.env.now
            return None
        payload = item.payload
        if payload is None:
            raise SimulationError(
                f"{self.name}: fetched a bare sync word as an instruction"
            )
        n = item.words
        self.queue_fetches += n
        self.stream_accesses += n
        # Rebase on the recorded release instant (env.now may lag behind
        # during queue fast-forward) and charge the fetch accesses —
        # static RAM, no refresh.
        cycles = n * (4 + self._simd_ws)
        self._local = released - self.env.now + cycles
        self._lc = cycles
        self.local_charges += 1
        return payload

    # -- generator protocol ---------------------------------------------
    def fetch_instruction(self, addr: int):
        region = self._fregion(addr)
        if region.kind is RegionKind.MAIN_RAM:
            try:
                instr = self.instructions[addr]
            except KeyError:
                raise BusError(
                    f"{self.name}: no instruction at {addr:#x}"
                ) from None
            n = instr.encoded_words()
            self.stream_accesses += n
            cycles = self._ram_access(n, region.wait_states)
            if self.fast_path:
                self._local += cycles
                self._lc = cycles
                self.local_charges += 1
                return instr
            yield self.env.sleep(cycles)
            return instr
        if region.kind is RegionKind.SIMD_SPACE:
            if self.queue is None:
                raise BusError(f"{self.name}: no Fetch Unit attached")
            if self.lockstep:
                # Lockstep rendezvous: no flush — pass the bus-true time
                # as the arrival stamp; the queue computes the release
                # instant and resumes us there with the clock rebased.
                arrival = self.env.now + self._local
                sched = arrival - self._lc
                self._local = 0.0
                self.lockstep_rendezvous += 1
                item, released = yield from self.queue.request_at(
                    self.pe_slot, arrival, sched)
                self._local = released - self.env.now
                if self.trace_waits and released > arrival:
                    self.wait_spans.append(("queue_wait", arrival, released))
            elif self.trace_waits:
                # Shared interaction: flush so the queue request is made at
                # true time; the queue-access charge afterwards is private.
                yield from self.sync()
                t0 = self.env.now
                item = yield from self.queue.request(self.pe_slot)
                if self.env.now > t0:
                    self.wait_spans.append(("queue_wait", t0, self.env.now))
            else:
                yield from self.sync()
                item = yield from self.queue.request(self.pe_slot)
            if item.payload is None:
                raise SimulationError(
                    f"{self.name}: fetched a bare sync word as an instruction"
                )
            n = item.words
            self.queue_fetches += n
            self.stream_accesses += n
            # Queue fetches: static RAM, no refresh.
            cycles = n * (4 + region.wait_states)
            if self.fast_path:
                self._local += cycles
                self._lc = cycles
                self.local_charges += 1
                return item.payload
            yield self.env.sleep(cycles)
            return item.payload
        raise BusError(
            f"{self.name}: cannot execute from {region.kind.value} at {addr:#x}"
        )

    def fetch_stream_words(self, addr: int, n: int):
        region = self._fregion(addr)
        self.stream_accesses += n
        if region.kind is RegionKind.MAIN_RAM:
            cycles = self._ram_access(n, region.wait_states)
        else:
            cycles = n * (4 + region.wait_states)
        if self.fast_path:
            self._local += cycles
            self._lc = cycles
            self.local_charges += 1
            return
        yield self.env.sleep(cycles)

    def read(self, addr: int, size: int):
        region = self._dregion(addr)
        kind = region.kind
        if kind is RegionKind.MAIN_RAM:
            n = access_count(size)
            self.data_accesses += n
            cycles = self._ram_access(n, region.wait_states)
            if self.fast_path:
                self._local += cycles
                self._lc = cycles
                self.local_charges += 1
                return self.memory.read(addr, size)
            yield self.env.sleep(cycles)
            return self.memory.read(addr, size)
        if kind is RegionKind.SIMD_SPACE:
            # Barrier: a data read from SIMD space consumes one queue word
            # and completes only when all enabled PEs have read it.
            if self.lockstep:
                arrival = self.env.now + self._local
                sched = arrival - self._lc
                self._local = 0.0
                self.lockstep_rendezvous += 1
                item, released = yield from self.queue.request_at(
                    self.pe_slot, arrival, sched)
                self._local = released - self.env.now
                if self.trace_waits and released > arrival:
                    self.wait_spans.append(
                        ("barrier_wait", arrival, released))
            elif self.trace_waits:
                yield from self.sync()
                t0 = self.env.now
                item = yield from self.queue.request(self.pe_slot)
                if self.env.now > t0:
                    self.wait_spans.append(("barrier_wait", t0, self.env.now))
            else:
                yield from self.sync()
                item = yield from self.queue.request(self.pe_slot)
            if item.payload is not None:
                raise SimulationError(
                    f"{self.name}: barrier read consumed an instruction "
                    f"({item.payload})"
                )
            self.sync_reads += 1
            self.data_accesses += 1
            if self.fast_path:
                self._local += 4 + region.wait_states
                self._lc = 4 + region.wait_states
                self.local_charges += 1
                return 0
            yield self.env.sleep(4 + region.wait_states)
            return 0
        if kind is RegionKind.NET_RX:
            yield from self.sync()
            if self.trace_waits:
                t0 = self.env.now
                value = yield from self.port.read_rx()
                if self.env.now > t0:
                    self.wait_spans.append(("net_rx_wait", t0, self.env.now))
            else:
                value = yield from self.port.read_rx()
            self.net_bytes_received += 1
            self.data_accesses += 1
            if self.fast_path:
                self._local += 4 + region.wait_states
                self._lc = 4 + region.wait_states
                self.local_charges += 1
                return value
            yield self.env.sleep(4 + region.wait_states)
            return value
        if kind is RegionKind.NET_STATUS:
            # Sampling access: flush, then issue the access charge as a
            # *real* event so the status sample happens at the same
            # event-loop point as on the pure-event path.
            yield from self.sync()
            self.data_accesses += 1
            yield self.env.sleep(4 + region.wait_states)
            return self.port.status()
        if kind is RegionKind.TIMER:
            n = access_count(size)
            self.data_accesses += n
            # The timer *is* global time: fold the access charge into the
            # local clock, flush everything, then sample env.now.
            if self.fast_path:
                self._local += n * (4 + region.wait_states)
                self._lc = n * (4 + region.wait_states)
                yield from self.sync()
            else:
                yield self.env.sleep(n * (4 + region.wait_states))
            return int(self.env.now) & ((1 << (8 * size)) - 1)
        raise BusError(f"{self.name}: cannot read {kind.value} at {addr:#x}")

    def write(self, addr: int, value: int, size: int):
        region = self._dregion(addr)
        kind = region.kind
        if kind is RegionKind.MAIN_RAM:
            n = access_count(size)
            self.data_accesses += n
            cycles = self._ram_access(n, region.wait_states)
            if self.fast_path:
                self._local += cycles
                self._lc = cycles
                self.local_charges += 1
                self.memory.write(addr, value, size)
                return
            yield self.env.sleep(cycles)
            self.memory.write(addr, value, size)
            return
        if kind is RegionKind.NET_TX:
            if size != 1:
                raise BusError(
                    f"{self.name}: network data path is 8 bits wide; "
                    f"{size}-byte write to NET_TX"
                )
            yield from self.sync()
            if self.trace_waits:
                t0 = self.env.now
                yield from self.port.write_tx(value)
                if self.env.now > t0:
                    self.wait_spans.append(("net_tx_wait", t0, self.env.now))
            else:
                yield from self.port.write_tx(value)
            self.net_bytes_sent += 1
            self.data_accesses += 1
            if self.fast_path:
                self._local += 4 + region.wait_states
                self._lc = 4 + region.wait_states
                self.local_charges += 1
                return
            yield self.env.sleep(4 + region.wait_states)
            return
        raise BusError(f"{self.name}: cannot write {kind.value} at {addr:#x}")

    def internal(self, cycles: float):
        if self.fast_path:
            self._local += cycles
            self._lc = cycles
            self.local_charges += 1
            return
        yield self.env.sleep(cycles)


class ProcessingElement:
    """A PE: one MC68000 on a :class:`PEBus`."""

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        physical_id: int,
        port: TransferPort | None = None,
        queue: FetchUnitQueue | None = None,
        pe_slot: int | None = None,
        fast_path: bool | None = None,
        lockstep: bool = False,
    ) -> None:
        self.env = env
        self.config = config
        self.physical_id = physical_id
        self.memory = MemoryModule(config.ram_size)
        self.bus = PEBus(
            env,
            config,
            self.memory,
            port,
            queue,
            pe_slot if pe_slot is not None else physical_id,
            name=f"PE{physical_id}",
            fast_path=fast_path,
            lockstep=lockstep,
        )
        self.cpu = CPU(env, self.bus, name=f"PE{physical_id}")

    def load_program(self, program: AssembledProgram, *, start_at=None) -> None:
        """Load code+data and point the CPU at the entry."""
        self.bus.load_program(program)
        self.cpu.reset(
            pc=start_at if start_at is not None else program.entry,
            sp=self.config.ram_size - 4,
        )

    def enter_simd_mode(self) -> None:
        """Point the CPU into the SIMD instruction space (mode switch)."""
        self.cpu.reset(pc=self.config.simd_space_base, sp=self.config.ram_size - 4)

    def run_process(self):
        """Create the PE's simulation process."""
        return self.env.process(self.cpu.run(), name=f"PE{self.physical_id}")
