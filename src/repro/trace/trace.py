"""Trace rendering and queue-occupancy analysis."""

from __future__ import annotations

from dataclasses import dataclass

from repro.m68k.cpu import InstructionRecord

#: One-character codes for the activity timeline.
CATEGORY_CODES = {
    "mult": "M",
    "comm": "C",
    "control": "c",
    "sync": "S",
    "other": ".",
}


def format_trace(
    records: list[InstructionRecord],
    *,
    limit: int | None = 50,
    start: float = 0.0,
) -> str:
    """Render instruction records as an annotated listing.

    Columns: simulated start time, elapsed cycles (including wait states
    and any queue/network stalls), the manual's zero-wait-state cycles,
    timing category, and the instruction.  The difference between elapsed
    and manual cycles is exactly the architectural overhead the paper
    measures.
    """
    lines = [
        f"{'t':>10}  {'elapsed':>8}  {'manual':>7}  {'cat':<8} instruction"
    ]
    shown = 0
    for rec in records:
        if rec.start < start:
            continue
        if limit is not None and shown >= limit:
            lines.append(f"... ({len(records) - shown} more records)")
            break
        lines.append(
            f"{rec.start:>10.0f}  {rec.elapsed:>8.1f}  "
            f"{rec.timing.cycles:>7}  {rec.instr.timecat:<8} {rec.instr}"
        )
        shown += 1
    return "\n".join(lines)


def activity_gantt(
    traces: dict[str, list[InstructionRecord]],
    *,
    width: int = 72,
    end: float | None = None,
) -> str:
    """ASCII timeline: one row per traced CPU, one column per time bucket.

    Each bucket shows the category that consumed most of it (codes:
    M=mult, C=comm, c=control, S=sync, .=other, space=idle/finished).
    """
    if not traces:
        return "(no traces)"
    horizon = end or max(
        (recs[-1].end for recs in traces.values() if recs), default=0.0
    )
    if horizon <= 0:
        return "(empty traces)"
    bucket = horizon / width
    lines = [f"0 .. {horizon:.0f} cycles, {bucket:.0f} cycles/column"]
    for name, recs in traces.items():
        weights = [dict() for _ in range(width)]
        for rec in recs:
            lo = min(int(rec.start / bucket), width - 1)
            hi = min(int(rec.end / bucket), width - 1)
            for b in range(lo, hi + 1):
                seg_lo = max(rec.start, b * bucket)
                seg_hi = min(rec.end, (b + 1) * bucket)
                if seg_hi > seg_lo:
                    w = weights[b]
                    cat = rec.instr.timecat
                    w[cat] = w.get(cat, 0.0) + (seg_hi - seg_lo)
        row = "".join(
            CATEGORY_CODES.get(max(w, key=w.get), "?") if w else " "
            for w in weights
        )
        lines.append(f"{name:>6} |{row}|")
    legend = " ".join(f"{code}={cat}" for cat, code in CATEGORY_CODES.items())
    lines.append(f"       {legend}")
    return "\n".join(lines)


@dataclass(frozen=True)
class QueueOccupancy:
    """Time-weighted statistics of Fetch Unit Queue depth."""

    mean_words: float
    max_words: int
    fraction_empty: float  #: share of time with an empty queue (PE risk)
    fraction_full: float  #: share of time at capacity (MC risk)
    sparkline: str

    def __str__(self) -> str:
        return (
            f"queue occupancy: mean {self.mean_words:.1f} words, max "
            f"{self.max_words}, empty {self.fraction_empty:.1%} of the "
            f"time, full {self.fraction_full:.1%}\n[{self.sparkline}]"
        )


def queue_occupancy(
    samples: list[tuple[float, int]],
    capacity: int,
    *,
    end: float | None = None,
    width: int = 60,
) -> QueueOccupancy:
    """Summarize (time, words) occupancy samples from a FetchUnitQueue."""
    if not samples:
        return QueueOccupancy(0.0, 0, 1.0, 0.0, " " * width)
    horizon = end if end is not None else samples[-1][0]
    if horizon <= samples[0][0]:
        horizon = samples[0][0] + 1.0

    # Integrate the step function.
    area = 0.0
    empty_time = 0.0
    full_time = 0.0
    max_words = 0
    levels = " .:-=+*#%@"
    buckets = [0.0] * width
    bucket_weight = [0.0] * width
    prev_t, prev_w = samples[0]
    prev_t = min(prev_t, horizon)

    def accumulate(t0: float, t1: float, w: int) -> None:
        nonlocal area, empty_time, full_time
        span = t1 - t0
        if span <= 0:
            return
        area += span * w
        if w == 0:
            empty_time += span
        if w >= capacity:
            full_time += span
        b0 = min(int(t0 / horizon * width), width - 1)
        b1 = min(int(t1 / horizon * width), width - 1)
        for b in range(b0, b1 + 1):
            s_lo = max(t0, b * horizon / width)
            s_hi = min(t1, (b + 1) * horizon / width)
            if s_hi > s_lo:
                buckets[b] += (s_hi - s_lo) * w
                bucket_weight[b] += s_hi - s_lo

    for t, w in samples[1:]:
        t = min(t, horizon)
        accumulate(prev_t, t, prev_w)
        max_words = max(max_words, w)
        prev_t, prev_w = t, w
    accumulate(prev_t, horizon, prev_w)
    max_words = max(max_words, samples[0][1])

    total = horizon - samples[0][0]
    spark = "".join(
        levels[min(int((buckets[b] / bucket_weight[b]) / capacity
                       * (len(levels) - 1)), len(levels) - 1)]
        if bucket_weight[b] else " "
        for b in range(width)
    )
    return QueueOccupancy(
        mean_words=area / total,
        max_words=max_words,
        fraction_empty=empty_time / total,
        fraction_full=full_time / total,
        sparkline=spark,
    )
