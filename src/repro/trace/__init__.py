"""Execution tracing and machine instrumentation.

The micro engine can record every executed instruction
(:attr:`repro.m68k.cpu.CPU.trace`); this package turns those records and
the machine's built-in counters into readable artifacts:

* :func:`format_trace` — an annotated instruction listing with simulated
  times and per-instruction elapsed cycles (wait states and stalls
  visible);
* :func:`activity_gantt` — an ASCII timeline showing what each PE spent
  each slice of the run on (multiply / communication / control / sync);
* :func:`queue_occupancy` — statistics and a sparkline of the Fetch Unit
  Queue depth over time, the quantity behind the paper's "if the queue
  can remain non-empty and non-full at all times" superlinearity
  argument.
"""

from repro.trace.trace import (
    CATEGORY_CODES,
    QueueOccupancy,
    activity_gantt,
    format_trace,
    queue_occupancy,
)

__all__ = [
    "CATEGORY_CODES",
    "format_trace",
    "activity_gantt",
    "queue_occupancy",
    "QueueOccupancy",
]
