"""Performance observability: counters, percentiles, profiles.

The fast-path work (local-time execution, decoded caches, handler
registry) lives in the simulator proper; this module is the *read side*
— small helpers that surface what the kernel and the buses actually did
during a run, so speed-ups can be attributed rather than guessed at:

* :func:`kernel_counters` — event-queue traffic of an
  :class:`~repro.sim.environment.Environment` (pushes, pops, heap
  high-water mark, sleep-pool reuses);
* :func:`machine_counters` — aggregate local-time statistics over every
  bus of a :class:`~repro.machine.PASMMachine` (charges absorbed without
  a heap event, local-clock flushes at shared-resource interaction
  points);
* :func:`percentile` — dependency-free percentile with linear
  interpolation, used by the execution engine's ``--stats`` table;
* :func:`profile_to` — context manager dumping a :mod:`cProfile` capture
  to a file for ``snakeviz``/``pstats`` (note cProfile counts each
  *resumption* of a generator as a call, so simulation coroutines show
  resumption counts, not invocation counts);
* :func:`format_breakdown` — a wall-time-by-component table with shares;
* :class:`MetricsRegistry` — thread-safe counters/gauges/latency
  summaries with Prometheus text rendering (the write side the serving
  layer's ``GET /metrics`` endpoint reads from).
"""

from __future__ import annotations

import cProfile
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.utils.tables import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.machine import PASMMachine
    from repro.sim.environment import Environment

__all__ = [
    "MetricsRegistry",
    "format_breakdown",
    "kernel_counters",
    "machine_counters",
    "percentile",
    "profile_to",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default method without the import;
    returns 0.0 for an empty sequence (the natural value for "no jobs").
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    frac = rank - lo
    if frac == 0.0:
        return float(ordered[lo])
    return float(ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac)


def kernel_counters(env: "Environment") -> dict[str, int]:
    """Event-queue traffic counters of one simulation environment."""
    return {
        "events_scheduled": env.events_scheduled,
        "events_processed": env.events_processed,
        "peak_heap": env.peak_heap,
        "sleep_reuses": env.sleep_reuses,
    }


def _iter_buses(machine: "PASMMachine"):
    for pe in getattr(machine, "pes", []):
        yield pe.bus
    for mc in getattr(machine, "assembly_mcs", {}).values():
        yield mc.bus


def machine_counters(machine: "PASMMachine") -> dict[str, int | bool]:
    """Aggregate fast-path counters over every local-time bus.

    Sums :class:`~repro.sim.localtime.LocalTimeBus` statistics across the
    machine's PE buses and (MIMD) assembly-MC buses, and folds in the
    shared kernel's counters.  ``local_charges`` is the number of private
    time charges absorbed into a local clock instead of becoming heap
    events — the quantity the fast path exists to maximise.
    """
    local_charges = 0
    sync_flushes = 0
    lockstep_rendezvous = 0
    buses = 0
    for bus in _iter_buses(machine):
        buses += 1
        local_charges += getattr(bus, "local_charges", 0)
        sync_flushes += getattr(bus, "sync_flushes", 0)
        lockstep_rendezvous += getattr(bus, "lockstep_rendezvous", 0)
    lockstep_releases = 0
    lockstep_batch_pes = 0
    lockstep_carriers = 0
    vectorized_instructions = 0
    vectorized_batches = 0
    scalar_fallbacks = 0
    for queue in getattr(machine, "queues", {}).values():
        lockstep_releases += getattr(queue, "lockstep_releases", 0)
        lockstep_batch_pes += getattr(queue, "lockstep_batch_pes", 0)
        lockstep_carriers += getattr(queue, "lockstep_carriers", 0)
        vectorized_instructions += getattr(queue, "vectorized_instructions", 0)
        vectorized_batches += getattr(queue, "vectorized_batches", 0)
        scalar_fallbacks += getattr(queue, "scalar_fallbacks", 0)
    out: dict[str, int | bool] = {
        "fast_path": bool(getattr(machine, "pes", None)
                          and machine.pes[0].bus.fast_path),
        "lockstep": bool(getattr(machine, "lockstep", False)),
        "buses": buses,
        "local_charges": local_charges,
        "sync_flushes": sync_flushes,
        # Lockstep tier: stamped PE requests, computed-rendezvous releases,
        # PE resumptions delivered in batch, and carrier events scheduled
        # (the ~1 heap event that replaces ~2·p on the event rendezvous).
        "lockstep_rendezvous": lockstep_rendezvous,
        "lockstep_releases": lockstep_releases,
        "lockstep_batch_pes": lockstep_batch_pes,
        "lockstep_carriers": lockstep_carriers,
        # Vectorized tier: broadcast words executed across the whole mask
        # in one numpy pass, batches delivered (one PE resumption each),
        # and instruction words that fell back to scalar release while
        # the vector engine was attached (the fallback rate).
        "vectorized": bool(getattr(machine, "vectorized", False)),
        "vectorized_instructions": vectorized_instructions,
        "vectorized_batches": vectorized_batches,
        "scalar_fallbacks": scalar_fallbacks,
    }
    out.update(kernel_counters(machine.env))
    return out


@contextmanager
def profile_to(path) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block with :mod:`cProfile`; dump to ``path``.

    The dump is a binary pstats file::

        python -m pstats profile.out   # or snakeviz profile.out
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))


def format_breakdown(
    parts: Mapping[str, float],
    *,
    title: str = "wall-time breakdown",
    unit: str = "s",
) -> str:
    """Render component wall times with their share of the total.

    ``parts`` maps a component name to seconds (or any additive unit);
    rows are sorted by descending cost so the biggest sink reads first.
    """
    total = sum(parts.values())
    rows = [
        (name, round(value, 3),
         f"{100.0 * value / total:.1f}%" if total else "-")
        for name, value in sorted(parts.items(), key=lambda kv: -kv[1])
    ]
    rows.append(("TOTAL", round(total, 3), "100.0%" if total else "-"))
    return format_table(["component", f"wall ({unit})", "share"], rows,
                        title=title)


# Imported last: metrics.py reads repro.perf.percentile at call time.
from repro.perf.metrics import MetricsRegistry  # noqa: E402
