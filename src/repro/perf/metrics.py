"""Metric primitives: named counters, gauges, and latency summaries.

:class:`MetricsRegistry` is the write side of service observability —
the serving layer (:mod:`repro.serve`) increments counters on every
admission decision and observes per-job service latency into bounded
sample windows; ``GET /metrics`` renders the registry in the Prometheus
text exposition format.  The registry is deliberately tiny and
dependency-free:

* **counters** only go up (``inc``);
* **gauges** are set or adjusted (``set_gauge``/``add_gauge``);
* **summaries** keep a bounded window of observations and render
  p50/p95 quantile samples via :func:`repro.perf.percentile`.

All operations are thread-safe: the asyncio service loop, pool-callback
threads and test assertions may touch the same registry concurrently.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Mapping

#: Quantiles a summary renders (Prometheus ``quantile`` label values).
SUMMARY_QUANTILES = (0.5, 0.95)

#: Default bound on retained observations per summary series.
DEFAULT_WINDOW = 2048

_KINDS = ("counter", "gauge", "summary")


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(
        '{}="{}"'.format(
            k,
            v.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
        )
        for k, v in key
    )
    return "{" + inner + "}"


class _Metric:
    """One named metric: all its label series plus metadata."""

    __slots__ = ("name", "kind", "help", "values", "windows", "count", "sum")

    def __init__(self, name: str, kind: str, help_: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_
        self.values: dict[tuple, float] = {}
        # summary-only state, per label series
        self.windows: dict[tuple, deque] = {}
        self.count: dict[tuple, int] = {}
        self.sum: dict[tuple, float] = {}


class MetricsRegistry:
    """A process-local, thread-safe registry of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    def _metric(self, name: str, kind: str, help_: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = _Metric(name, kind, help_)
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        elif help_ and not metric.help:
            metric.help = help_
        return metric

    def describe(self, name: str, kind: str, help_: str = "") -> None:
        """Pre-declare a metric so it renders even before first use."""
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        with self._lock:
            metric = self._metric(name, kind, help_)
            if kind != "summary":
                metric.values.setdefault((), 0.0)

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, *, help_: str = "",
            **labels) -> float:
        """Increment a counter; returns the new value."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease ({amount})")
        with self._lock:
            metric = self._metric(name, "counter", help_)
            key = _label_key(labels)
            metric.values[key] = metric.values.get(key, 0.0) + amount
            return metric.values[key]

    def set_gauge(self, name: str, value: float, *, help_: str = "",
                  **labels) -> None:
        with self._lock:
            metric = self._metric(name, "gauge", help_)
            metric.values[_label_key(labels)] = float(value)

    def add_gauge(self, name: str, delta: float, *, help_: str = "",
                  **labels) -> float:
        with self._lock:
            metric = self._metric(name, "gauge", help_)
            key = _label_key(labels)
            metric.values[key] = metric.values.get(key, 0.0) + delta
            return metric.values[key]

    def observe(self, name: str, value: float, *, window: int = DEFAULT_WINDOW,
                help_: str = "", **labels) -> None:
        """Record one observation into a bounded summary window."""
        with self._lock:
            metric = self._metric(name, "summary", help_)
            key = _label_key(labels)
            if key not in metric.windows:
                metric.windows[key] = deque(maxlen=window)
                metric.count[key] = 0
                metric.sum[key] = 0.0
            metric.windows[key].append(float(value))
            metric.count[key] += 1
            metric.sum[key] += float(value)

    # ------------------------------------------------------------------
    # Read side
    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge series (0.0 if never touched)."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return 0.0
            return metric.values.get(_label_key(labels), 0.0)

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all its label series."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return 0.0
            return sum(metric.values.values())

    def samples(self, name: str, **labels) -> list[float]:
        """Retained observations of one summary series."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return []
            return list(metric.windows.get(_label_key(labels), ()))

    def quantile(self, name: str, q: float, **labels) -> float:
        """The ``q``-th quantile (0..1) over a summary's retained window."""
        from repro.perf import percentile

        return percentile(self.samples(name, **labels), 100.0 * q)

    def snapshot(self) -> dict[str, dict]:
        """One structured, consistent read of every metric.

        Returns ``{name: {"kind": ..., "help": ..., "series": {...}}}``
        where ``series`` maps each label key (the sorted
        ``((label, value), ...)`` tuple) to the current float for
        counters/gauges, or to ``{"count", "sum", "quantiles"}`` for
        summaries (quantiles computed over the retained window).  This
        is the read side the timeseries sampler
        (:class:`repro.obs.timeseries.TimeseriesStore`) scrapes — one
        lock acquisition per sample instead of parsing the rendered
        Prometheus page.
        """
        from repro.perf import percentile

        with self._lock:
            raw = [
                (m.name, m.kind, m.help, dict(m.values),
                 {k: list(w) for k, w in m.windows.items()},
                 dict(m.count), dict(m.sum))
                for m in self._metrics.values()
            ]
        doc: dict[str, dict] = {}
        for name, kind, help_, values, windows, counts, sums in raw:
            if kind == "summary":
                series = {
                    key: {
                        "count": counts[key],
                        "sum": sums[key],
                        "quantiles": {
                            q: percentile(window, 100.0 * q)
                            for q in SUMMARY_QUANTILES
                        },
                    }
                    for key, window in windows.items()
                }
            else:
                series = dict(values)
            doc[name] = {"kind": kind, "help": help_, "series": series}
        return doc

    # ------------------------------------------------------------------
    def render(self, extra: Iterable[str] = ()) -> str:
        """Prometheus text exposition of every metric in the registry."""
        from repro.perf import percentile

        with self._lock:
            snapshot = [
                (m.name, m.kind, m.help, dict(m.values),
                 {k: list(w) for k, w in m.windows.items()},
                 dict(m.count), dict(m.sum))
                for m in self._metrics.values()
            ]
        lines: list[str] = []
        for name, kind, help_, values, windows, counts, sums in sorted(snapshot):
            if help_:
                lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {kind}")
            if kind == "summary":
                for key in sorted(windows):
                    window = windows[key]
                    for q in SUMMARY_QUANTILES:
                        qkey = key + (("quantile", str(q)),)
                        lines.append(
                            f"{name}{_render_labels(qkey)} "
                            f"{percentile(window, 100.0 * q):.6g}"
                        )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {counts[key]}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} {sums[key]:.6g}"
                    )
            else:
                for key in sorted(values):
                    lines.append(
                        f"{name}{_render_labels(key)} {values[key]:.6g}"
                    )
        lines.extend(extra)
        return "\n".join(lines) + "\n"
