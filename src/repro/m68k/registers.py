"""MC68000 register file and condition codes.

Eight 32-bit data registers (D0–D7), eight 32-bit address registers
(A0–A7, A7 doubling as the stack pointer), a program counter, and the five
condition-code flags X N Z V C.

Partial-width writes follow MC68000 semantics: a byte or word write to a
data register merges into the low bits; *any* write to an address register
writes all 32 bits (word sources are sign-extended).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.bitops import sign_extend

MASK32 = 0xFFFF_FFFF


@dataclass(slots=True)
class ConditionCodes:
    """The MC68000 CCR flags."""

    x: bool = False  #: extend
    n: bool = False  #: negative
    z: bool = False  #: zero
    v: bool = False  #: overflow
    c: bool = False  #: carry

    def set_nz(self, value: int, size: int) -> None:
        """Set N and Z from a result of ``size`` bytes; clear V and C."""
        value &= (1 << (size * 8)) - 1
        self.n = bool(value >> (size * 8 - 1))
        self.z = value == 0
        self.v = False
        self.c = False

    def test(self, cond: str) -> bool:
        """Evaluate an MC68000 condition mnemonic (``EQ``, ``NE``, ...)."""
        # Hot path of every conditional branch/DBcc/Scc: an if-chain in
        # rough dynamic-frequency order, no per-call table construction.
        z = self.z
        if cond == "NE":
            return not z
        if cond == "EQ":
            return z
        n, v = self.n, self.v
        if cond == "LT":
            return n != v
        if cond == "GE":
            return n == v
        if cond == "GT":
            return (n == v) and not z
        if cond == "LE":
            return z or (n != v)
        c = self.c
        if cond in ("CC", "HS"):
            return not c
        if cond in ("CS", "LO"):
            return c
        if cond == "HI":
            return not c and not z
        if cond == "LS":
            return c or z
        if cond == "PL":
            return not n
        if cond == "MI":
            return n
        if cond == "VC":
            return not v
        if cond == "VS":
            return v
        if cond == "T":
            return True
        if cond == "F":
            return False
        upper = cond.upper()
        if upper != cond:
            return self.test(upper)
        raise ValueError(f"unknown condition code {cond!r}")

    def as_dict(self) -> dict[str, bool]:
        return {"X": self.x, "N": self.n, "Z": self.z, "V": self.v, "C": self.c}


@dataclass(slots=True)
class RegisterFile:
    """Data/address registers plus PC and CCR."""

    d: list[int] = field(default_factory=lambda: [0] * 8)
    a: list[int] = field(default_factory=lambda: [0] * 8)
    pc: int = 0
    ccr: ConditionCodes = field(default_factory=ConditionCodes)

    # -- data registers ---------------------------------------------------
    def read_d(self, n: int, size: int = 4) -> int:
        """Read the low ``size`` bytes of Dn (unsigned)."""
        v = self.d[n]
        if size == 4:
            return v
        return v & 0xFFFF if size == 2 else v & 0xFF

    def write_d(self, n: int, value: int, size: int = 4) -> None:
        """Write the low ``size`` bytes of Dn, preserving the upper bits."""
        if size == 4:
            self.d[n] = value & MASK32
        else:
            low_mask = (1 << (size * 8)) - 1
            self.d[n] = (self.d[n] & (MASK32 ^ low_mask)) | (value & low_mask)

    # -- address registers ------------------------------------------------
    def read_a(self, n: int, size: int = 4) -> int:
        v = self.a[n]
        if size == 4:
            return v
        return v & 0xFFFF if size == 2 else v & 0xFF

    def write_a(self, n: int, value: int, size: int = 4) -> None:
        """Write An; word-sized sources are sign-extended to 32 bits."""
        if size == 2:
            value = sign_extend(value, 16)
        elif size == 1:
            raise ValueError("byte operations on address registers are illegal")
        self.a[n] = value & MASK32

    @property
    def sp(self) -> int:
        """A7, the stack pointer."""
        return self.a[7]

    @sp.setter
    def sp(self, value: int) -> None:
        self.a[7] = value & MASK32

    def snapshot(self) -> dict[str, int]:
        """Return a readable register dump (for debugging and tests)."""
        out: dict[str, int] = {f"D{i}": v for i, v in enumerate(self.d)}
        out.update({f"A{i}": v for i, v in enumerate(self.a)})
        out["PC"] = self.pc
        return out
