"""Instruction representation and static properties.

Instructions are kept as structured objects rather than binary encodings;
the *encoded word length* (opcode word + extension words) is still computed
exactly, because instruction-stream fetch counts are what the SIMD
Fetch-Unit-Queue speed advantage applies to.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ProgramError
from repro.m68k.addressing import Mode, Operand, extension_words


class Size(Enum):
    """Operation size suffix."""

    BYTE = 1
    WORD = 2
    LONG = 4

    @property
    def bytes(self) -> int:
        return self.value

    @property
    def suffix(self) -> str:
        return {1: "B", 2: "W", 4: "L"}[self.value]

    @classmethod
    def from_suffix(cls, s: str) -> "Size":
        try:
            return {"B": cls.BYTE, "W": cls.WORD, "L": cls.LONG}[s.upper()]
        except KeyError:
            raise ProgramError(f"unknown size suffix .{s}") from None


#: Branch condition mnemonics accepted for Bcc / DBcc.
CONDITIONS = (
    "T", "F", "HI", "LS", "CC", "HS", "CS", "LO", "NE", "EQ",
    "VC", "VS", "PL", "MI", "GE", "LT", "GT", "LE",
)

#: Instruction families, used by the interpreter dispatch and timing model.
ALU_REG = {"ADD", "SUB", "AND", "OR", "EOR", "CMP"}
ALU_ADDR = {"ADDA", "SUBA", "CMPA"}
ALU_IMM = {"ADDI", "SUBI", "ANDI", "ORI", "EORI", "CMPI"}
QUICK = {"ADDQ", "SUBQ"}
SHIFTS = {"LSL", "LSR", "ASL", "ASR", "ROL", "ROR", "ROXL", "ROXR"}
MULDIV = {"MULU", "MULS", "DIVU", "DIVS"}
UNARY = {"CLR", "NOT", "NEG", "NEGX", "TST", "TAS"}
SINGLE_REG = {"SWAP", "EXT"}
BRANCHES = {"BRA", "BSR"} | {f"B{c}" for c in CONDITIONS if c not in ("T", "F")}
DBCC = {f"DB{c}" for c in CONDITIONS} | {"DBRA"}
SCC = {f"S{c}" for c in CONDITIONS}
JUMPS = {"JMP", "JSR"}
BITOPS = {"BTST", "BSET", "BCLR", "BCHG"}
EXTENDED = {"ADDX", "SUBX"}  #: multi-precision arithmetic through X
#: The whole two-operand ALU family, for one-test interpreter dispatch.
ALU_ALL = frozenset(QUICK | ALU_IMM | ALU_ADDR | ALU_REG)
NO_OPERAND = {"NOP", "RTS", "HALT"}

#: All supported mnemonics.
ALL_MNEMONICS = (
    {"MOVE", "MOVEA", "MOVEQ", "LEA", "PEA", "EXG", "CMPM", "MOVEM",
     "LINK", "UNLK"}
    | ALU_REG | ALU_ADDR | ALU_IMM | QUICK | SHIFTS | MULDIV
    | UNARY | SINGLE_REG | BRANCHES | DBCC | SCC | JUMPS | BITOPS
    | EXTENDED | NO_OPERAND
)


@dataclass
class Instruction:
    """One decoded instruction.

    Attributes
    ----------
    mnemonic:
        Canonical upper-case mnemonic (``"MOVE"``, ``"MULU"``, ``"DBRA"``...).
    size:
        Operation size; ``None`` for unsized instructions (branches, LEA...).
    operands:
        Tuple of :class:`~repro.m68k.addressing.Operand`; branch targets are
        stored in :attr:`target` instead.
    target:
        Branch/jump label (resolved to an int address by the assembler's
        second pass for branches; JMP/JSR use an operand instead).
    timecat:
        Timing category for execution-time breakdowns — one of ``"mult"``,
        ``"comm"``, ``"control"``, ``"sync"``, ``"other"``.  Assigned from
        ``.timecat`` directives in assembly source.
    address:
        Byte address assigned by the assembler.
    line_no:
        Source line for diagnostics.
    """

    mnemonic: str
    size: Size | None = None
    operands: tuple[Operand, ...] = ()
    target: int | str | None = None
    timecat: str = "other"
    address: int = 0
    line_no: int = 0
    label: str | None = None
    #: MOVEM register list: tuple of ("D"|"A", number), transfer order.
    reg_list: tuple[tuple[str, int], ...] | None = None
    #: MOVEM direction: True = registers → memory.
    movem_store: bool = False
    #: Lazy caches (interpreter hot path); not part of the public API.
    _encoded_words_cache: int | None = None
    _size_bytes_cache: int | None = None
    _alu_base_cache: str | None = None
    _static_timing_cache: object = None
    #: ``(is_sync, handler)`` resolved by the interpreter's dispatch
    #: registry (:func:`repro.m68k.cpu._resolve_handler`).
    _exec_handler_cache: tuple | None = None
    #: Per-variant timings for data/outcome-dependent instructions,
    #: keyed by multiplier base cycles / shift count / branch outcome.
    _variant_timing_cache: dict | None = None
    #: Compiled vector plan (repro.sim.vectorized.compile_plan):
    #: None = not compiled yet, False = must run scalar, else a _Plan.
    _vec_plan: object = None

    def __post_init__(self) -> None:
        if self.mnemonic not in ALL_MNEMONICS:
            raise ProgramError(f"unsupported mnemonic {self.mnemonic!r}")

    # -- static structure -------------------------------------------------
    @property
    def condition(self) -> str | None:
        """Condition code for Bcc/DBcc/Scc mnemonics (``DBRA`` → ``F``)."""
        m = self.mnemonic
        if m == "DBRA":
            return "F"
        if m in DBCC:
            return m[2:]
        if m in BRANCHES and m not in ("BRA", "BSR"):
            return m[1:]
        if m in SCC:
            return m[1:]
        return None

    @property
    def size_bytes(self) -> int:
        sb = self._size_bytes_cache
        if sb is None:
            sb = (self.size or Size.WORD).bytes
            self._size_bytes_cache = sb
        return sb

    def encoded_words(self) -> int:
        """Encoded length in 16-bit words (opcode + extension words).

        This is the number of instruction-stream fetch accesses the
        instruction costs, which is exactly what flows through the Fetch
        Unit Queue in SIMD mode.  The value is cached: it depends only on
        operand modes, which never change after assembly.
        """
        if self._encoded_words_cache is not None:
            return self._encoded_words_cache
        self._encoded_words_cache = self._encoded_words()
        return self._encoded_words_cache

    def _encoded_words(self) -> int:
        m = self.mnemonic
        words = 1
        if m in BRANCHES:
            # We always encode branches with a word displacement (the
            # prototype programs were assembled for clarity, not size).
            return 2
        if m in DBCC:
            return 2
        if m == "MOVEQ":
            return 1
        if m in SHIFTS and len(self.operands) == 2 and (
            self.operands[0].mode is Mode.IMM
        ):
            # Quick shift count is encoded in the opcode word.
            return 1 + extension_words(self.operands[1], self.size_bytes)
        if m in QUICK:
            # ADDQ/SUBQ encode the immediate in the opcode word.
            return 1 + extension_words(self.operands[1], self.size_bytes)
        if m == "MOVEM":
            # opcode + register-mask word + EA extensions (the register
            # list lives in :attr:`reg_list`; operands hold only the EA).
            return 2 + extension_words(self.operands[0], 2)
        for op in self.operands:
            words += extension_words(op, self.size_bytes)
        return words

    def encoded_bytes(self) -> int:
        w = self._encoded_words_cache
        return 2 * w if w is not None else 2 * self.encoded_words()

    def __str__(self) -> str:
        name = self.mnemonic
        if self.size is not None:
            name = f"{name}.{self.size.suffix}"
        parts = [str(op) for op in self.operands]
        if self.reg_list is not None:
            text = "/".join(f"{k}{n}" for k, n in self.reg_list)
            parts.insert(0 if self.movem_store else len(parts), text)
        if self.target is not None:
            parts.append(
                self.target if isinstance(self.target, str) else f"${self.target:X}"
            )
        ops = ",".join(parts)
        return f"{name} {ops}".strip()


def validate(instr: Instruction) -> None:
    """Sanity-check operand shapes for ``instr``; raise ProgramError if bad.

    This is not a full legality checker for the MC68000, but it catches the
    mistakes that matter when writing the PASM programs: wrong operand
    counts, illegal destinations, byte operations on address registers.
    """
    m = instr.mnemonic
    ops = instr.operands
    n = len(ops)

    def need(count: int) -> None:
        if n != count:
            raise ProgramError(f"{m} needs {count} operand(s), got {n}")

    if m in NO_OPERAND:
        need(0)
        return
    if m in SCC:
        need(1)
        if not ops[0].mode.is_alterable or ops[0].mode is Mode.AREG:
            raise ProgramError(f"{m} destination must be data-alterable")
        return
    if m in BITOPS:
        need(2)
        if ops[0].mode not in (Mode.DREG, Mode.IMM):
            raise ProgramError(f"{m} bit number must be Dn or immediate")
        if ops[1].mode is Mode.AREG:
            raise ProgramError(f"{m} cannot target an address register")
        if m != "BTST" and not ops[1].mode.is_alterable:
            raise ProgramError(f"{m} destination not alterable: {ops[1]}")
        return
    if m == "CMPM":
        need(2)
        if ops[0].mode is not Mode.POSTINC or ops[1].mode is not Mode.POSTINC:
            raise ProgramError("CMPM requires (Ay)+,(Ax)+ operands")
        return
    if m in EXTENDED:  # ADDX / SUBX
        need(2)
        both_d = ops[0].mode is Mode.DREG and ops[1].mode is Mode.DREG
        both_p = ops[0].mode is Mode.PREDEC and ops[1].mode is Mode.PREDEC
        if not (both_d or both_p):
            raise ProgramError(f"{m} requires Dy,Dx or -(Ay),-(Ax)")
        return
    if m == "PEA":
        need(1)
        if ops[0].mode in (Mode.DREG, Mode.AREG, Mode.IMM, Mode.POSTINC,
                           Mode.PREDEC):
            raise ProgramError(f"illegal PEA source mode {ops[0].mode}")
        return
    if m == "MOVEM":
        need(1)
        if instr.reg_list is None or not instr.reg_list:
            raise ProgramError("MOVEM requires a register list")
        if not ops[0].mode.is_memory:
            raise ProgramError("MOVEM transfers to/from memory")
        if instr.size is Size.BYTE:
            raise ProgramError("MOVEM moves words or longs")
        return
    if m == "LINK":
        need(2)
        if ops[0].mode is not Mode.AREG or ops[1].mode is not Mode.IMM:
            raise ProgramError("LINK requires An,#displacement")
        return
    if m == "UNLK":
        need(1)
        if ops[0].mode is not Mode.AREG:
            raise ProgramError("UNLK requires an address register")
        return
    if m in BRANCHES or m in DBCC:
        if m in DBCC:
            need(1)
            if ops[0].mode is not Mode.DREG:
                raise ProgramError(f"{m} loop counter must be a data register")
        else:
            need(0)
        if instr.target is None:
            raise ProgramError(f"{m} requires a branch target")
        return
    if m in JUMPS:
        need(1)
        if ops[0].mode not in (Mode.IND, Mode.DISP, Mode.INDEX, Mode.ABS_W,
                               Mode.ABS_L, Mode.PCDISP):
            raise ProgramError(f"illegal {m} target mode {ops[0].mode}")
        return
    if m in SINGLE_REG:
        need(1)
        if ops[0].mode is not Mode.DREG:
            raise ProgramError(f"{m} operates on a data register")
        return
    if m in UNARY:
        need(1)
        if m != "TST" and not ops[0].mode.is_alterable:
            raise ProgramError(f"{m} destination not alterable: {ops[0]}")
        return
    if m == "MOVEQ":
        need(2)
        if ops[0].mode is not Mode.IMM or ops[1].mode is not Mode.DREG:
            raise ProgramError("MOVEQ needs #imm,Dn")
        return
    if m == "LEA":
        need(2)
        if ops[1].mode is not Mode.AREG:
            raise ProgramError("LEA destination must be an address register")
        if ops[0].mode in (Mode.DREG, Mode.AREG, Mode.IMM, Mode.POSTINC,
                           Mode.PREDEC):
            raise ProgramError(f"illegal LEA source mode {ops[0].mode}")
        return
    if m == "EXG":
        need(2)
        if ops[0].mode not in (Mode.DREG, Mode.AREG) or ops[1].mode not in (
            Mode.DREG, Mode.AREG
        ):
            raise ProgramError("EXG needs two registers")
        return
    if m in MULDIV:
        need(2)
        if ops[1].mode is not Mode.DREG:
            raise ProgramError(f"{m} destination must be a data register")
        if ops[0].mode is Mode.AREG:
            raise ProgramError(f"{m} source may not be an address register")
        return
    if m in SHIFTS:
        need(2)
        if ops[0].mode not in (Mode.IMM, Mode.DREG):
            raise ProgramError(f"{m} count must be immediate or data register")
        if ops[1].mode is not Mode.DREG:
            raise ProgramError(f"{m} register form shifts a data register")
        return
    if m in ALU_IMM:
        need(2)
        if ops[0].mode is not Mode.IMM:
            raise ProgramError(f"{m} source must be immediate")
        if ops[1].mode is Mode.AREG:
            raise ProgramError(f"{m} cannot target an address register")
        return
    if m in QUICK:
        need(2)
        if ops[0].mode is not Mode.IMM:
            raise ProgramError(f"{m} source must be immediate")
        return
    if m in ALU_ADDR:
        need(2)
        if ops[1].mode is not Mode.AREG:
            raise ProgramError(f"{m} destination must be an address register")
        return
    if m in ALU_REG:
        need(2)
        if ops[0].mode is not Mode.DREG and ops[1].mode is not Mode.DREG:
            if not (m == "CMP" and ops[1].mode is Mode.DREG):
                raise ProgramError(f"{m} needs a data-register operand")
        if m == "CMP" and ops[1].mode is not Mode.DREG:
            raise ProgramError("CMP destination must be a data register")
        if m == "EOR" and ops[1].mode is Mode.AREG:
            raise ProgramError("EOR cannot target an address register")
        return
    if m in ("MOVE", "MOVEA"):
        need(2)
        if m == "MOVEA" and ops[1].mode is not Mode.AREG:
            raise ProgramError("MOVEA destination must be an address register")
        if m == "MOVE" and not ops[1].mode.is_alterable:
            raise ProgramError(f"MOVE destination not alterable: {ops[1]}")
        if instr.size is Size.BYTE and (
            ops[0].mode is Mode.AREG or ops[1].mode is Mode.AREG
        ):
            raise ProgramError("byte MOVE cannot use address registers")
        return
    raise AssertionError(f"unhandled mnemonic {m}")  # pragma: no cover
