"""MC68000 interpreter.

The CPU executes :class:`~repro.m68k.instructions.Instruction` objects
against a *bus* object inside the discrete-event simulation.  All memory
traffic goes through the bus as generator calls so that

* per-region wait states are charged where they belong (instruction stream
  vs operand data),
* accesses to memory-mapped devices (network transfer registers, the SIMD
  instruction space) can block the CPU — which is exactly how PASM's SIMD
  instruction broadcast, implicit network synchronization, and barrier
  mechanism work.

Bus protocol (all methods are generators driven by the sim kernel):

``fetch_instruction(addr)``
    returns the :class:`Instruction` at ``addr`` after charging its
    instruction-stream fetch accesses; may block (SIMD space rendezvous).
``fetch_stream_words(addr, n)``
    charges ``n`` extra instruction-stream accesses (branch-target
    prefetches, RTS pipeline refill).
``read(addr, size)`` / ``write(addr, value, size)``
    operand accesses; may block on device registers.
``internal(cycles)``
    pure execution time (no bus activity).

Buses may additionally provide the local-time fast-path extensions of
:class:`repro.sim.localtime.LocalTimeBus` — ``now`` (bus-true current
time), ``try_charge(cycles)`` (absorb pure execution time into the local
clock) and ``sync()`` (flush the local clock) — which the CPU discovers
with ``getattr`` and uses when present.  Timestamps in traces and
category totals are then taken from ``bus.now`` so they remain identical
to the pure-event path.

Buses can also expose *non-generator* twins of the four bus calls —
``try_fetch_instruction(addr)``, ``try_fetch_stream_words(addr, n)``,
``try_read(addr, size)`` and ``try_write(addr, value, size)`` — that
complete a purely private access (own-DRAM traffic) without creating a
generator, returning ``None``/``False`` whenever the access might touch
a shared resource.  The CPU attempts the fast twin first and falls back
to the generator protocol on refusal, so blocking semantics are
unchanged.

The interpreter computes results *and* the manual timing
(:func:`~repro.m68k.timing.instruction_timing`) for every executed
instruction, charging ``internal_cycles`` so the total elapsed simulated
time equals the manual time plus whatever the bus added (wait states,
queue/rendezvous stalls, device blocking).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IllegalInstructionError, SimulationError
from repro.m68k.addressing import Mode, Operand
from repro.m68k.instructions import (
    ALU_ADDR,
    ALU_ALL,
    ALU_IMM,
    BITOPS,
    BRANCHES,
    DBCC,
    EXTENDED,
    Instruction,
    JUMPS,
    MULDIV,
    QUICK,
    SCC,
    SHIFTS,
    UNARY,
)
from repro.m68k.registers import RegisterFile
from repro.m68k.timing import TimingInfo, instruction_timing


def _static_timing(instr: Instruction) -> TimingInfo:
    """Static-instruction timing via the per-instruction cache.

    Equivalent to ``instruction_timing(instr)`` for instructions whose
    timing has no dynamic arguments; skips the function call and dispatch
    once the cache is warm.
    """
    t = instr._static_timing_cache
    return t if t is not None else instruction_timing(instr)
from repro.utils.bitops import sign_extend, to_signed, to_unsigned


class HaltReason(enum.Enum):
    """Why a CPU stopped running."""

    HALT_INSTRUCTION = "halt"
    EXTERNAL = "external"


@dataclass
class InstructionRecord:
    """Instrumentation record for one executed instruction."""

    instr: Instruction
    start: float
    end: float
    timing: TimingInfo

    @property
    def elapsed(self) -> float:
        """Wall (simulated) cycles including wait states and stalls."""
        return self.end - self.start


class CPU:
    """One MC68000 core bound to a bus.

    Parameters
    ----------
    env:
        The simulation environment (time in clock cycles).
    bus:
        Object implementing the bus protocol described in the module
        docstring.
    name:
        Label used in error messages and traces.
    """

    def __init__(self, env, bus, name: str = "cpu") -> None:
        self.env = env
        self.bus = bus
        self.name = name
        # Optional fast-path bus extensions (see module docstring).
        self._bus_sync = getattr(bus, "sync", None)
        self._bus_try_charge = getattr(bus, "try_charge", None)
        self._bus_try_fetch = getattr(bus, "try_fetch_instruction", None)
        self._bus_try_queue_fetch = getattr(bus, "try_queue_fetch", None)
        self._bus_try_stream = getattr(bus, "try_fetch_stream_words", None)
        self._bus_try_read = getattr(bus, "try_read", None)
        self._bus_try_write = getattr(bus, "try_write", None)
        self._bus_now = self._bus_sync is not None
        #: Address computed by ``_read_operand_now``/``_write_operand_now``
        #: when the fast twin refused; the caller replays the access through
        #: the generator protocol without re-running EA side effects.
        self._pending_addr = 0
        self.regs = RegisterFile()
        self.halted: HaltReason | None = None
        self.instruction_count = 0
        #: env.now at which this CPU's run() flushed and finished (None
        #: until then).
        self.finish_time: float | None = None
        #: Per-timecat simulated-cycle totals (fed by ``run``/``step``).
        self.category_cycles: dict[str, float] = {}
        #: Optional per-instruction trace (enable with ``trace=True``).
        self.trace_records: list[InstructionRecord] = []
        self.trace = False
        #: Superinstruction chains (lockstep tier): straight-line main-RAM
        #: runs pre-decoded once and replayed without per-instruction
        #: fetch/dispatch overhead.  Keyed by start pc; invalidated on
        #: reset (program reload).
        self._chain_cache: dict[int, list] = {}

    # ------------------------------------------------------------------
    def reset(self, pc: int, sp: int = 0) -> None:
        """Reset the register file and start address."""
        self.regs = RegisterFile()
        self.regs.pc = pc
        self.regs.sp = sp
        self.halted = None
        self._chain_cache.clear()

    def run(self, max_instructions: int | None = None):
        """Generator process: execute until HALT (or an instruction cap).

        The body of :meth:`step` is inlined into the loop so the
        interpreter builds one generator frame per *run*, not one per
        instruction (keep the two in sync when editing either).
        """
        env = self.env
        bus = self.bus
        fast = self._bus_now
        bus_fast = fast and bus.fast_path
        tf = self._bus_try_fetch
        ts = self._bus_try_stream
        cats = self.category_cycles
        executed = 0
        # Superinstruction chains (lockstep tier only, so the local-time
        # tier stays a clean PR-3 baseline): straight-line main-RAM runs
        # replay as one pre-decoded sequence.  Tracing and instruction
        # caps take the per-instruction path.
        chains = (
            self._chain_cache
            if (
                bus_fast
                and getattr(bus, "lockstep", False)
                and not self.trace
                and max_instructions is None
            )
            else None
        )
        if chains is not None:
            ref_period, ref_steal = bus._ref_period, bus._ref_steal
            # Chains only ever start in main RAM; gating the cache lookup
            # on the region bounds keeps SIMD-space pcs (monotonically
            # increasing, so every pc is new) from flooding the cache
            # with empty entries.
            from repro.memory.map import RegionKind

            try:
                main_region = bus.map.find(RegionKind.MAIN_RAM)
                main_lo, main_hi = main_region.start, main_region.end
            except Exception:
                chains = None
        tq = self._bus_try_queue_fetch
        if tq is not None:
            # Vectorized tier: whole broadcast batches may execute on this
            # PE's behalf only while nothing observes per-instruction
            # boundaries here (instruction caps, trace records).
            bus.vec_stream_ok = max_instructions is None and not self.trace
        while self.halted is None:
            if chains is not None and main_lo <= self.regs.pc < main_hi:
                chain = chains.get(self.regs.pc)
                if chain is None:
                    chain = self._build_chain(self.regs.pc)
                    chains[self.regs.pc] = chain
                if chain:
                    # -- chain replay: same arithmetic as the inlined
                    # step below, minus fetch lookup and dispatch --------
                    for pc, instr, w, base, npc, k, h, cat in chain:
                        start = env.now + bus._local
                        cycles = base
                        if ref_steal:
                            phase = start % ref_period
                            if phase < ref_steal:
                                cycles += ref_steal - phase
                        bus._local += cycles
                        bus._lc = cycles
                        bus.stream_accesses += w
                        self.regs.pc = npc
                        if k:
                            timing = h(self, instr, pc, npc)
                            if k == 2 and type(timing) is not TimingInfo:
                                timing = yield from timing
                        else:
                            timing = yield from h(self, instr, pc, npc)
                        extra_stream = timing.stream_words - w
                        if extra_stream > 0:
                            ts(self.regs.pc, extra_stream)
                        internal = timing.internal_cycles
                        if internal:
                            if internal < 0:
                                raise SimulationError(
                                    f"{self.name}: negative internal time "
                                    f"for {instr} ({timing})"
                                )
                            bus._local += internal
                            bus._lc = internal
                        end = env.now + bus._local
                        try:
                            cats[cat] += end - start
                        except KeyError:
                            cats[cat] = end - start
                    self.instruction_count += len(chain)
                    continue  # chain ended at control flow / HALT / region edge
            # -- begin inlined step() -----------------------------------
            start = env.now + bus._local if fast else env.now
            pc = self.regs.pc
            instr = tf(pc) if tf is not None else None
            if instr is None:
                # Lockstep SIMD-space fetch: park on the stamped request
                # event directly — one yield, no sub-generator frames.
                # When this PE's stamp completed the rendezvous the queue
                # resolves it synchronously (callbacks already None) and
                # the loop streams on without parking at all.
                ev = tq(pc) if tq is not None else None
                if ev is not None:
                    pair = ev._value if ev.callbacks is None else (yield ev)
                    instr = bus.finish_queue_fetch(pair)
                    if instr is None:
                        # Vectorized-batch sentinel: the batch executed
                        # and accounted everything; clock rebased, go
                        # fetch whatever the stream holds next.
                        continue
                else:
                    instr = yield from bus.fetch_instruction(pc)
                    if not isinstance(instr, Instruction):
                        raise SimulationError(
                            f"{self.name}: no instruction at {pc:#x} "
                            f"(got {instr!r})"
                        )
            w = instr._encoded_words_cache
            if w is None:
                w = instr.encoded_words()
            next_pc = pc + 2 * w
            self.regs.pc = next_pc  # may be overridden by control flow

            hc = instr._exec_handler_cache
            if hc is None:
                hc = _resolve_handler(instr)
                instr._exec_handler_cache = hc
            k = hc[0]
            if k:
                timing = hc[1](self, instr, pc, next_pc)
                if k == 2 and type(timing) is not TimingInfo:
                    timing = yield from timing
            else:
                timing = yield from hc[1](self, instr, pc, next_pc)

            extra_stream = timing.stream_words - w
            if extra_stream > 0:
                if ts is None or not ts(self.regs.pc, extra_stream):
                    yield from bus.fetch_stream_words(
                        self.regs.pc, extra_stream
                    )
            internal = timing.internal_cycles
            if internal:
                if internal < 0:
                    raise SimulationError(
                        f"{self.name}: negative internal time for {instr}"
                        f" ({timing})"
                    )
                if bus_fast:
                    bus._local += internal
                    bus._lc = internal
                    bus.local_charges += 1
                else:
                    tc = self._bus_try_charge
                    if tc is None or not tc(internal):
                        yield from bus.internal(internal)

            end = env.now + bus._local if fast else env.now
            self.instruction_count += 1
            cat = instr.timecat
            try:
                cats[cat] += end - start
            except KeyError:
                cats[cat] = end - start
            if self.trace:
                self.trace_records.append(
                    InstructionRecord(instr, start, end, timing)
                )
            # -- end inlined step() -------------------------------------
            executed += 1
            if max_instructions is not None and executed >= max_instructions:
                self.halted = HaltReason.EXTERNAL
        if self._bus_sync is not None:
            # Flush any locally-accrued time so env.now reflects the true
            # halt time (bit-identical to the pure-event path).
            yield from self._bus_sync()
        self.finish_time = self.env.now
        return self.halted

    # ------------------------------------------------------------------
    def _build_chain(self, pc: int) -> list:
        """Decode the straight-line main-RAM run starting at ``pc``.

        Returns pre-resolved ``(pc, instr, words, fetch_base, next_pc,
        kind, handler, timecat)`` entries for every consecutive
        instruction up to (exclusive) the first control-flow instruction,
        HALT, or non-main-RAM address; empty when ``pc`` itself is not
        chainable (the caller then takes the per-instruction path).
        ``fetch_base`` is the refresh-free fetch charge — the replay adds
        the closed-form refresh stall, which depends on absolute time.
        """
        from repro.memory.map import RegionKind

        bus = self.bus
        instructions = getattr(bus, "instructions", None)
        lookup = getattr(getattr(bus, "map", None), "lookup", None)
        entries: list = []
        if instructions is None or lookup is None:
            return entries
        while True:
            try:
                region = lookup(pc)
            except Exception:
                break
            if region.kind is not RegionKind.MAIN_RAM:
                break
            instr = instructions.get(pc)
            if instr is None or instr.mnemonic in _CHAIN_BREAKERS:
                break
            w = instr._encoded_words_cache
            if w is None:
                w = instr.encoded_words()
            hc = instr._exec_handler_cache
            if hc is None:
                hc = _resolve_handler(instr)
                instr._exec_handler_cache = hc
            next_pc = pc + 2 * w
            entries.append(
                (pc, instr, w, w * (4 + region.wait_states), next_pc,
                 hc[0], hc[1], instr.timecat)
            )
            pc = next_pc
        return entries

    # ------------------------------------------------------------------
    def step(self):
        """Execute one instruction (generator)."""
        env = self.env
        bus = self.bus
        fast = self._bus_now
        start = env.now + bus._local if fast else env.now
        pc = self.regs.pc
        tf = self._bus_try_fetch
        instr = tf(pc) if tf is not None else None
        if instr is None:
            instr = yield from bus.fetch_instruction(pc)
            if not isinstance(instr, Instruction):
                raise SimulationError(
                    f"{self.name}: no instruction at {pc:#x} (got {instr!r})"
                )
        next_pc = pc + instr.encoded_bytes()
        self.regs.pc = next_pc  # may be overridden by control flow below

        hc = instr._exec_handler_cache
        if hc is None:
            hc = _resolve_handler(instr)
            instr._exec_handler_cache = hc
        k = hc[0]
        if k:
            # Sync (register-only) or hybrid handler: plain call first.
            timing = hc[1](self, instr, pc, next_pc)
            if k == 2 and type(timing) is not TimingInfo:
                # Hybrid handler hit a blocking access: finish the slow way.
                timing = yield from timing
        else:
            timing = yield from hc[1](self, instr, pc, next_pc)

        # Charge internal (non-bus) time and any stream accesses beyond the
        # encoded words (branch-target prefetch, RTS refill).
        # encoded_bytes above has populated the encoded-words cache.
        extra_stream = timing.stream_words - instr._encoded_words_cache
        if extra_stream > 0:
            ts = self._bus_try_stream
            if ts is None or not ts(self.regs.pc, extra_stream):
                yield from bus.fetch_stream_words(self.regs.pc, extra_stream)
        internal = timing.internal_cycles
        if internal < 0:
            raise SimulationError(
                f"{self.name}: negative internal time for {instr} ({timing})"
            )
        if internal:
            tc = self._bus_try_charge
            if tc is None or not tc(internal):
                yield from bus.internal(internal)

        end = env.now + bus._local if fast else env.now
        self.instruction_count += 1
        cat = instr.timecat
        self.category_cycles[cat] = self.category_cycles.get(cat, 0.0) + (end - start)
        if self.trace:
            self.trace_records.append(InstructionRecord(instr, start, end, timing))

    # ------------------------------------------------------------------
    # effective addresses and operand access
    def _ea_address(self, op: Operand, size: int, instr_addr: int) -> int:
        """Compute the operand address, applying side effects once."""
        mode = op.mode
        r = self.regs
        if mode is Mode.IND:
            return r.a[op.reg]
        if mode is Mode.POSTINC:
            addr = r.a[op.reg]
            step = size
            if op.reg == 7 and size == 1:
                step = 2  # A7 stays word-aligned on the 68000
            r.a[op.reg] = (addr + step) & 0xFFFF_FFFF
            return addr
        if mode is Mode.PREDEC:
            step = size
            if op.reg == 7 and size == 1:
                step = 2
            r.a[op.reg] = (r.a[op.reg] - step) & 0xFFFF_FFFF
            return r.a[op.reg]
        if mode is Mode.DISP:
            return (r.a[op.reg] + sign_extend(op.disp, 16)) & 0xFFFF_FFFF
        if mode is Mode.INDEX:
            kind, num = op.index_reg
            idx = r.d[num] if kind == "D" else r.a[num]
            idx = sign_extend(idx, 16)  # .W index form
            return (r.a[op.reg] + sign_extend(op.disp, 8) + idx) & 0xFFFF_FFFF
        if mode is Mode.ABS_W:
            return sign_extend(int(op.value), 16) & 0xFFFF_FFFF
        if mode is Mode.ABS_L:
            return int(op.value) & 0xFFFF_FFFF
        if mode is Mode.PCDISP:
            return (instr_addr + 2 + sign_extend(op.disp, 16)) & 0xFFFF_FFFF
        raise IllegalInstructionError(f"no address for mode {mode}")

    def _read_operand_now(self, op: Operand, size: int, instr_addr: int):
        """Operand value (unsigned) without a generator, or ``None``.

        ``None`` means the access may block: the EA (side effects applied
        exactly once) is parked in ``_pending_addr`` and the caller must
        replay ``bus.read(self._pending_addr, size)`` through the
        generator protocol.  Register/immediate operands never block.
        """
        mode = op.mode
        if mode is Mode.DREG:
            return self.regs.read_d(op.reg, size)
        if mode is Mode.AREG:
            return self.regs.read_a(op.reg, size)
        if mode is Mode.IMM:
            return to_unsigned(int(op.value), size)
        # The three hottest memory modes are inlined (same arithmetic and
        # side effects as _ea_address; keep them in sync).
        if mode is Mode.IND:
            addr = self.regs.a[op.reg]
        elif mode is Mode.POSTINC:
            regs = self.regs
            addr = regs.a[op.reg]
            step = size
            if op.reg == 7 and size == 1:
                step = 2  # A7 stays word-aligned on the 68000
            regs.a[op.reg] = (addr + step) & 0xFFFF_FFFF
        elif mode is Mode.DISP:
            d = op.disp & 0xFFFF
            if d & 0x8000:
                d -= 0x10000
            addr = (self.regs.a[op.reg] + d) & 0xFFFF_FFFF
        else:
            addr = self._ea_address(op, size, instr_addr)
        tr = self._bus_try_read
        if tr is not None:
            value = tr(addr, size)
            if value is not None:
                # Fast twins serve plain RAM only: already unsigned.
                return value
        self._pending_addr = addr
        return None

    def _write_operand_now(
        self, op: Operand, value: int, size: int, instr_addr: int
    ) -> bool:
        """Write ``value`` to the operand without a generator, if possible.

        Returns False when the access may block (EA parked in
        ``_pending_addr``; caller replays through ``bus.write``).
        """
        mode = op.mode
        if mode is Mode.DREG:
            self.regs.write_d(op.reg, value, size)
            return True
        if mode is Mode.AREG:
            self.regs.write_a(op.reg, value, size)
            return True
        # Hot memory modes inlined; see _read_operand_now.
        if mode is Mode.IND:
            addr = self.regs.a[op.reg]
        elif mode is Mode.POSTINC:
            regs = self.regs
            addr = regs.a[op.reg]
            step = size
            if op.reg == 7 and size == 1:
                step = 2  # A7 stays word-aligned on the 68000
            regs.a[op.reg] = (addr + step) & 0xFFFF_FFFF
        elif mode is Mode.DISP:
            d = op.disp & 0xFFFF
            if d & 0x8000:
                d -= 0x10000
            addr = (self.regs.a[op.reg] + d) & 0xFFFF_FFFF
        else:
            addr = self._ea_address(op, size, instr_addr)
        tw = self._bus_try_write
        if tw is not None and tw(addr, to_unsigned(value, size), size):
            return True
        self._pending_addr = addr
        return False

    def _read_operand(self, op: Operand, size: int, instr_addr: int):
        """Generator: operand value (unsigned), charging bus time."""
        value = self._read_operand_now(op, size, instr_addr)
        if value is None:
            value = yield from self.bus.read(self._pending_addr, size)
            value = to_unsigned(value, size)
        return value

    def _write_operand(self, op: Operand, value: int, size: int, instr_addr: int):
        """Generator: write ``value`` to the operand location."""
        if not self._write_operand_now(op, value, size, instr_addr):
            yield from self.bus.write(
                self._pending_addr, to_unsigned(value, size), size
            )

    def _pending_read(self, size: int):
        """Generator: replay a refused operand read at ``_pending_addr``."""
        value = yield from self.bus.read(self._pending_addr, size)
        return to_unsigned(value, size)

    def _try_read(self, addr: int, size: int):
        """Fast-twin read: the value, or None to fall back to bus.read."""
        tr = self._bus_try_read
        return tr(addr, size) if tr is not None else None

    def _try_write(self, addr: int, value: int, size: int) -> bool:
        """Fast-twin write: True when done, False to fall back."""
        tw = self._bus_try_write
        return tw is not None and tw(addr, value, size)

    # ------------------------------------------------------------------
    def _execute(self, instr: Instruction, pc: int, next_pc: int):
        """Generator: execute ``instr``; returns its TimingInfo.

        Compatibility wrapper over the per-mnemonic handler registry;
        ``step`` dispatches through the registry directly so that
        register/immediate-only instructions never build a generator.
        """
        hc = instr._exec_handler_cache
        if hc is None:
            hc = _resolve_handler(instr)
            instr._exec_handler_cache = hc
        k = hc[0]
        if k:
            timing = hc[1](self, instr, pc, next_pc)
            if k == 2 and type(timing) is not TimingInfo:
                timing = yield from timing
            return timing
        return (yield from hc[1](self, instr, pc, next_pc))

    # -- synchronous handlers ------------------------------------------
    # Plain calls for instructions the resolver proved bus-free (all
    # operands in registers or the instruction stream): no generator is
    # created for them.  Semantics are byte-for-byte those of the
    # generator handlers below restricted to register/immediate operands.
    def _exec_move_reg(self, instr, pc, next_pc):
        src, dst = instr.operands
        size = instr.size_bytes
        regs = self.regs
        if src.mode is Mode.DREG:
            value = regs.read_d(src.reg, size)
        elif src.mode is Mode.AREG:
            value = regs.read_a(src.reg, size)
        else:  # IMM
            value = to_unsigned(int(src.value), size)
        if dst.mode is Mode.AREG or instr.mnemonic == "MOVEA":
            regs.write_a(dst.reg, value, size)
        else:
            regs.write_d(dst.reg, value, size)
            regs.ccr.set_nz(value, size)
        return _static_timing(instr)

    def _exec_alu_reg(self, instr, pc, next_pc):
        m = instr.mnemonic
        size = instr.size_bytes
        src, dst = instr.operands
        regs = self.regs
        ccr = regs.ccr
        base = instr._alu_base_cache
        if base is None:
            base = _alu_base(m)
            instr._alu_base_cache = base
        if src.mode is Mode.DREG:
            src_val = regs.read_d(src.reg, size)
        elif src.mode is Mode.AREG:
            src_val = regs.read_a(src.reg, size)
        else:  # IMM
            src_val = to_unsigned(int(src.value), size)
        if m in ALU_ADDR:
            # Word sources sign-extend; operation is on the full 32 bits.
            if size == 2:
                src_val32 = to_unsigned(sign_extend(src_val, 16), 4)
            else:
                src_val32 = src_val
            dst_val = regs.read_a(dst.reg, 4)
            if base == "ADD":
                regs.write_a(dst.reg, dst_val + src_val32, 4)
            elif base == "SUB":
                regs.write_a(dst.reg, dst_val - src_val32, 4)
            else:  # CMPA
                self._sub_flags(dst_val, src_val32, 4, set_x=False)
            return _static_timing(instr)
        if dst.mode is Mode.AREG:
            # Resolver guarantees QUICK here: ADDQ/SUBQ #n,An (no flags).
            dst_val = regs.read_a(dst.reg, 4)
            delta = int(src.value)
            if base == "ADD":
                regs.write_a(dst.reg, dst_val + delta, 4)
            else:
                regs.write_a(dst.reg, dst_val - delta, 4)
            return _static_timing(instr)
        dst_val = regs.read_d(dst.reg, size)
        store = True
        if base == "ADD":
            result = dst_val + src_val
            self._add_flags(dst_val, src_val, result, size)
        elif base == "SUB":
            result = dst_val - src_val
            self._sub_flags(dst_val, src_val, size=size, set_x=True)
        elif base == "CMP":
            result = dst_val
            self._sub_flags(dst_val, src_val, size=size, set_x=False)
            store = False
        elif base == "AND":
            result = dst_val & src_val
            ccr.set_nz(result, size)
        elif base == "OR":
            result = dst_val | src_val
            ccr.set_nz(result, size)
        elif base == "EOR":
            result = dst_val ^ src_val
            ccr.set_nz(result, size)
        else:  # pragma: no cover
            raise AssertionError(base)
        if store:
            regs.write_d(dst.reg, to_unsigned(result, size), size)
        return _static_timing(instr)

    def _exec_dbcc(self, instr, pc, next_pc):
        target = int(instr.target)
        if self.regs.ccr.test(instr.condition):
            return instruction_timing(instr, branch_taken=False)
        reg = instr.operands[0].reg
        counter = (self.regs.read_d(reg, 2) - 1) & 0xFFFF
        self.regs.write_d(reg, counter, 2)
        if counter == 0xFFFF:  # expired
            return instruction_timing(instr, branch_taken=False, dbcc_expired=True)
        self.regs.pc = target
        return instruction_timing(instr, branch_taken=True)

    def _exec_branch(self, instr, pc, next_pc):
        target = int(instr.target)
        taken = True if instr.mnemonic == "BRA" \
            else self.regs.ccr.test(instr.condition)
        if taken:
            self.regs.pc = target
        return instruction_timing(instr, branch_taken=taken)

    def _exec_muldiv_reg(self, instr, pc, next_pc):
        src, dst = instr.operands
        regs = self.regs
        if src.mode is Mode.DREG:
            src_val = regs.read_d(src.reg, 2)
        elif src.mode is Mode.AREG:
            src_val = regs.read_a(src.reg, 2)
        else:  # IMM
            src_val = to_unsigned(int(src.value), 2)
        self._muldiv_core(instr.mnemonic, src_val, dst)
        return instruction_timing(instr, src_value=src_val)

    def _exec_unary_reg(self, instr, pc, next_pc):
        m = instr.mnemonic
        size = instr.size_bytes
        dst = instr.operands[0]
        regs = self.regs
        if m == "TST":
            if dst.mode is Mode.DREG:
                value = regs.read_d(dst.reg, size)
            elif dst.mode is Mode.AREG:
                value = regs.read_a(dst.reg, size)
            else:  # IMM
                value = to_unsigned(int(dst.value), size)
            regs.ccr.set_nz(value, size)
            return _static_timing(instr)
        # read-modify-write on a data register
        old = regs.read_d(dst.reg, size)
        new, _flags_from = self._unary_result(m, old, size)
        regs.write_d(dst.reg, new, size)
        self._unary_flags(m, old, new, size)
        return _static_timing(instr)

    def _exec_shift(self, instr, pc, next_pc):
        count_op, reg_op = instr.operands
        size = instr.size_bytes
        if count_op.mode is Mode.IMM:
            count = int(count_op.value)
        else:
            count = self.regs.read_d(count_op.reg, 4) % 64
        value = self.regs.read_d(reg_op.reg, size)
        new = self._shift(instr.mnemonic, value, count, size)
        self.regs.write_d(reg_op.reg, new, size)
        return instruction_timing(instr, shift_count=count)

    def _exec_halt(self, instr, pc, next_pc):
        self.halted = HaltReason.HALT_INSTRUCTION
        return _static_timing(instr)

    def _exec_nop(self, instr, pc, next_pc):
        return _static_timing(instr)

    def _exec_moveq(self, instr, pc, next_pc):
        ops = instr.operands
        value = to_signed(int(ops[0].value) & 0xFF, 1)
        self.regs.write_d(ops[1].reg, value & 0xFFFF_FFFF, 4)
        self.regs.ccr.set_nz(value & 0xFFFF_FFFF, 4)
        return _static_timing(instr)

    def _exec_lea(self, instr, pc, next_pc):
        ops = instr.operands
        addr = self._ea_address(ops[0], 4, pc)
        self.regs.write_a(ops[1].reg, addr, 4)
        return _static_timing(instr)

    def _exec_exg(self, instr, pc, next_pc):
        a, b = instr.operands
        va = self.regs.d[a.reg] if a.mode is Mode.DREG else self.regs.a[a.reg]
        vb = self.regs.d[b.reg] if b.mode is Mode.DREG else self.regs.a[b.reg]
        if a.mode is Mode.DREG:
            self.regs.d[a.reg] = vb
        else:
            self.regs.a[a.reg] = vb
        if b.mode is Mode.DREG:
            self.regs.d[b.reg] = va
        else:
            self.regs.a[b.reg] = va
        return _static_timing(instr)

    def _exec_swap(self, instr, pc, next_pc):
        r = instr.operands[0].reg
        v = self.regs.d[r]
        v = ((v >> 16) | (v << 16)) & 0xFFFF_FFFF
        self.regs.d[r] = v
        self.regs.ccr.set_nz(v, 4)
        return _static_timing(instr)

    def _exec_ext(self, instr, pc, next_pc):
        r = instr.operands[0].reg
        if instr.size_bytes == 2:  # byte → word
            self.regs.write_d(r, sign_extend(self.regs.read_d(r, 1), 8), 2)
            self.regs.ccr.set_nz(self.regs.read_d(r, 2), 2)
        else:  # word → long
            self.regs.write_d(r, sign_extend(self.regs.read_d(r, 2), 16), 4)
            self.regs.ccr.set_nz(self.regs.read_d(r, 4), 4)
        return _static_timing(instr)

    def _exec_jmp(self, instr, pc, next_pc):
        self.regs.pc = self._ea_address(instr.operands[0], 4, pc)
        return _static_timing(instr)

    def _exec_scc_reg(self, instr, pc, next_pc):
        taken = self.regs.ccr.test(instr.condition)
        self.regs.write_d(instr.operands[0].reg, 0xFF if taken else 0x00, 1)
        return instruction_timing(instr, branch_taken=taken)

    def _exec_bitop_reg(self, instr, pc, next_pc):
        m = instr.mnemonic
        bit_src, dst = instr.operands
        if bit_src.mode is Mode.IMM:
            bit = int(bit_src.value)
        else:
            bit = self.regs.read_d(bit_src.reg, 4)
        bit %= 32
        old = self.regs.read_d(dst.reg, 4)
        mask = 1 << bit
        self.regs.ccr.z = not (old & mask)
        if m == "BSET":
            self.regs.write_d(dst.reg, old | mask, 4)
        elif m == "BCLR":
            self.regs.write_d(dst.reg, old & ~mask, 4)
        elif m == "BCHG":
            self.regs.write_d(dst.reg, old ^ mask, 4)
        return _static_timing(instr)

    def _exec_addx_reg(self, instr, pc, next_pc):
        src, dst = instr.operands
        size = instr.size_bytes
        x_in = int(self.regs.ccr.x)
        src_val = self.regs.read_d(src.reg, size)
        dst_val = self.regs.read_d(dst.reg, size)
        r = self._addx_core(instr.mnemonic, src_val, dst_val, x_in, size)
        self.regs.write_d(dst.reg, r, size)
        return _static_timing(instr)

    # -- shared result/flag cores (no bus traffic) ---------------------
    def _muldiv_core(self, m: str, src_val: int, dst) -> None:
        regs = self.regs
        ccr = regs.ccr
        if m == "MULU":
            result = src_val * regs.read_d(dst.reg, 2)
            regs.write_d(dst.reg, result & 0xFFFF_FFFF, 4)
            ccr.set_nz(result & 0xFFFF_FFFF, 4)
        elif m == "MULS":
            result = to_signed(src_val, 2) * to_signed(regs.read_d(dst.reg, 2), 2)
            regs.write_d(dst.reg, result & 0xFFFF_FFFF, 4)
            ccr.set_nz(result & 0xFFFF_FFFF, 4)
        elif m == "DIVU":
            divisor = src_val
            if divisor == 0:
                raise IllegalInstructionError(f"{self.name}: divide by zero")
            dividend = regs.read_d(dst.reg, 4)
            quot, rem = divmod(dividend, divisor)
            if quot > 0xFFFF:
                ccr.v = True  # overflow: register unchanged
            else:
                regs.write_d(dst.reg, (rem << 16) | quot, 4)
                ccr.set_nz(quot, 2)
        else:  # DIVS
            divisor = to_signed(src_val, 2)
            if divisor == 0:
                raise IllegalInstructionError(f"{self.name}: divide by zero")
            dividend = to_signed(regs.read_d(dst.reg, 4), 4)
            quot = int(dividend / divisor)  # trunc toward zero
            rem = dividend - quot * divisor
            if not -0x8000 <= quot <= 0x7FFF:
                ccr.v = True
            else:
                regs.write_d(
                    dst.reg,
                    ((to_unsigned(rem, 2)) << 16) | to_unsigned(quot, 2),
                    4,
                )
                ccr.set_nz(to_unsigned(quot, 2), 2)

    def _addx_core(self, m: str, src_val: int, dst_val: int, x_in: int,
                   size: int) -> int:
        """ADDX/SUBX arithmetic + flags; returns the unsigned result."""
        ccr = self.regs.ccr
        if m == "ADDX":
            result = dst_val + src_val + x_in
            self._add_flags(dst_val, src_val + x_in, result, size)
        else:
            result = dst_val - src_val - x_in
            borrow = (src_val + x_in) > dst_val
            bits = size * 8
            r = result & ((1 << bits) - 1)
            ccr.n = bool(r >> (bits - 1))
            ccr.c = ccr.x = borrow
            sa, sb = dst_val >> (bits - 1), src_val >> (bits - 1)
            ccr.v = (sa != sb) and ((r >> (bits - 1)) != sa)
        r = to_unsigned(result, size)
        # Z accumulates across a multi-precision chain: only cleared.
        if r != 0:
            ccr.z = False
        return r

    # -- hybrid handlers -----------------------------------------------
    # Plain calls that return a TimingInfo when every bus access was
    # absorbed by the fast twins, or a *generator* (the ``_slow``
    # continuation) the caller must drive when an access may block.  EA
    # side effects have already been applied exactly once by then.
    def _exec_move_mem(self, instr, pc, next_pc):
        src, dst = instr.operands
        size = instr.size_bytes
        value = self._read_operand_now(src, size, pc)
        if value is None:
            return self._move_load_slow(instr, pc)
        if instr.mnemonic == "MOVEA" or dst.mode is Mode.AREG:
            self.regs.write_a(dst.reg, value, size)
            return _static_timing(instr)
        if self._write_operand_now(dst, value, size, pc):
            self.regs.ccr.set_nz(value, size)
            return _static_timing(instr)
        return self._move_store_slow(instr, value)

    def _move_load_slow(self, instr, pc):
        """Generator: MOVE whose source read was refused by the fast twin."""
        size = instr.size_bytes
        value = yield from self._pending_read(size)
        dst = instr.operands[1]
        if instr.mnemonic == "MOVEA" or dst.mode is Mode.AREG:
            self.regs.write_a(dst.reg, value, size)
        else:
            if not self._write_operand_now(dst, value, size, pc):
                yield from self.bus.write(
                    self._pending_addr, to_unsigned(value, size), size
                )
            self.regs.ccr.set_nz(value, size)
        return _static_timing(instr)

    def _move_store_slow(self, instr, value):
        """Generator: MOVE whose destination write was refused."""
        size = instr.size_bytes
        yield from self.bus.write(
            self._pending_addr, to_unsigned(value, size), size
        )
        self.regs.ccr.set_nz(value, size)
        return _static_timing(instr)

    def _exec_bsr(self, instr, pc, next_pc):
        self.regs.sp = (self.regs.sp - 4) & 0xFFFF_FFFF
        if not self._try_write(self.regs.sp, next_pc, 4):
            yield from self.bus.write(self.regs.sp, next_pc, 4)
        self.regs.pc = int(instr.target)
        return _static_timing(instr)

    def _exec_muldiv_mem(self, instr, pc, next_pc):
        src, dst = instr.operands
        src_val = self._read_operand_now(src, 2, pc)
        if src_val is None:
            return self._muldiv_slow(instr)
        self._muldiv_core(instr.mnemonic, src_val, dst)
        return instruction_timing(instr, src_value=src_val)

    def _muldiv_slow(self, instr):
        """Generator: MUL/DIV whose source read was refused."""
        src_val = yield from self._pending_read(2)
        self._muldiv_core(instr.mnemonic, src_val, instr.operands[1])
        return instruction_timing(instr, src_value=src_val)

    def _exec_unary_mem(self, instr, pc, next_pc):
        m = instr.mnemonic
        size = instr.size_bytes
        dst = instr.operands[0]
        if m == "TST":
            value = self._read_operand_now(dst, size, pc)
            if value is None:
                return self._tst_slow(instr)
            self.regs.ccr.set_nz(value, size)
            return _static_timing(instr)
        # read-modify-write (the 68000 reads even for CLR)
        addr = self._ea_address(dst, size, pc)
        old = self._try_read(addr, size)
        if old is None:
            return self._unary_rmw_slow(instr, addr)
        new, _flags_from = self._unary_result(m, old, size)
        if not self._try_write(addr, new, size):
            return self._unary_store_slow(instr, addr, old, new)
        self._unary_flags(m, old, new, size)
        return _static_timing(instr)

    def _tst_slow(self, instr):
        """Generator: TST whose operand read was refused."""
        size = instr.size_bytes
        value = yield from self._pending_read(size)
        self.regs.ccr.set_nz(value, size)
        return _static_timing(instr)

    def _unary_rmw_slow(self, instr, addr):
        """Generator: unary read-modify-write whose read was refused."""
        m = instr.mnemonic
        size = instr.size_bytes
        old = yield from self.bus.read(addr, size)
        new, _flags_from = self._unary_result(m, old, size)
        if not self._try_write(addr, new, size):
            yield from self.bus.write(addr, new, size)
        self._unary_flags(m, old, new, size)
        return _static_timing(instr)

    def _unary_store_slow(self, instr, addr, old, new):
        """Generator: unary read-modify-write whose write-back was refused."""
        size = instr.size_bytes
        yield from self.bus.write(addr, new, size)
        self._unary_flags(instr.mnemonic, old, new, size)
        return _static_timing(instr)

    def _exec_jsr(self, instr, pc, next_pc):
        addr = self._ea_address(instr.operands[0], 4, pc)
        self.regs.sp = (self.regs.sp - 4) & 0xFFFF_FFFF
        if not self._try_write(self.regs.sp, next_pc, 4):
            yield from self.bus.write(self.regs.sp, next_pc, 4)
        self.regs.pc = addr
        return _static_timing(instr)

    def _exec_rts(self, instr, pc, next_pc):
        addr = self._try_read(self.regs.sp, 4)
        if addr is None:
            addr = yield from self.bus.read(self.regs.sp, 4)
        self.regs.sp = (self.regs.sp + 4) & 0xFFFF_FFFF
        self.regs.pc = addr & 0xFFFF_FFFF
        return _static_timing(instr)

    def _exec_pea(self, instr, pc, next_pc):
        addr = self._ea_address(instr.operands[0], 4, pc)
        self.regs.sp = (self.regs.sp - 4) & 0xFFFF_FFFF
        if not self._try_write(self.regs.sp, addr, 4):
            yield from self.bus.write(self.regs.sp, addr, 4)
        return _static_timing(instr)

    def _exec_link(self, instr, pc, next_pc):
        an, disp = instr.operands
        self.regs.sp = (self.regs.sp - 4) & 0xFFFF_FFFF
        if not self._try_write(self.regs.sp, self.regs.a[an.reg], 4):
            yield from self.bus.write(self.regs.sp, self.regs.a[an.reg], 4)
        self.regs.a[an.reg] = self.regs.sp
        self.regs.sp = (self.regs.sp + to_signed(int(disp.value), 2)) \
            & 0xFFFF_FFFF
        return _static_timing(instr)

    def _exec_unlk(self, instr, pc, next_pc):
        an = instr.operands[0].reg
        self.regs.sp = self.regs.a[an]
        value = self._try_read(self.regs.sp, 4)
        if value is None:
            value = yield from self.bus.read(self.regs.sp, 4)
        self.regs.a[an] = value
        self.regs.sp = (self.regs.sp + 4) & 0xFFFF_FFFF
        return _static_timing(instr)

    def _exec_cmpm(self, instr, pc, next_pc):
        ops = instr.operands
        size = instr.size_bytes
        src_val = self._read_operand_now(ops[0], size, pc)
        if src_val is None:
            src_val = yield from self._pending_read(size)
        dst_val = self._read_operand_now(ops[1], size, pc)
        if dst_val is None:
            dst_val = yield from self._pending_read(size)
        self._sub_flags(dst_val, src_val, size, set_x=False)
        return _static_timing(instr)

    def _exec_scc_mem(self, instr, pc, next_pc):
        taken = self.regs.ccr.test(instr.condition)
        value = 0xFF if taken else 0x00
        addr = self._ea_address(instr.operands[0], 1, pc)
        # read-modify-write like the hardware
        if self._try_read(addr, 1) is None:
            yield from self.bus.read(addr, 1)
        if not self._try_write(addr, value, 1):
            yield from self.bus.write(addr, value, 1)
        return instruction_timing(instr, branch_taken=taken)

    def _exec_illegal(self, instr, pc, next_pc):
        raise IllegalInstructionError(
            f"{self.name}: cannot execute {instr.mnemonic}"
        )
        yield  # pragma: no cover — registered as a generator handler

    # ------------------------------------------------------------------
    def _addx_subx(self, instr, pc, next_pc):
        """ADDX/SUBX -(Ay),-(Ax): multi-precision through memory.

        The register form is handled synchronously by
        :meth:`_exec_addx_reg`.
        """
        m = instr.mnemonic
        size = instr.size_bytes
        src, dst = instr.operands
        x_in = int(self.regs.ccr.x)
        src_addr = self._ea_address(src, size, pc)
        src_val = self._try_read(src_addr, size)
        if src_val is None:
            src_val = yield from self.bus.read(src_addr, size)
        dst_addr = self._ea_address(dst, size, pc)
        dst_val = self._try_read(dst_addr, size)
        if dst_val is None:
            dst_val = yield from self.bus.read(dst_addr, size)
        r = self._addx_core(m, src_val, dst_val, x_in, size)
        if not self._try_write(dst_addr, r, size):
            yield from self.bus.write(dst_addr, r, size)
        return _static_timing(instr)

    def _exec_bitop_mem(self, instr, pc, next_pc):
        """BTST/BSET/BCLR/BCHG on memory: Z is the tested (pre-change) bit.

        The data-register form is handled synchronously by
        :meth:`_exec_bitop_reg`.
        """
        m = instr.mnemonic
        bit_src, dst = instr.operands
        if bit_src.mode is Mode.IMM:
            bit = int(bit_src.value)
        else:
            bit = self.regs.read_d(bit_src.reg, 4)
        bit %= 8
        addr = self._ea_address(dst, 1, pc)
        old = self._try_read(addr, 1)
        if old is None:
            old = yield from self.bus.read(addr, 1)
        mask = 1 << bit
        self.regs.ccr.z = not (old & mask)
        if m != "BTST":
            new = {"BSET": old | mask, "BCLR": old & ~mask,
                   "BCHG": old ^ mask}[m]
            if not self._try_write(addr, new, 1):
                yield from self.bus.write(addr, new, 1)
        return _static_timing(instr)

    def _movem(self, instr, pc, next_pc):
        """MOVEM: multi-register transfer.

        Loads/stores proceed in mask order (D0→A7 ascending), except the
        pre-decrement store form which runs A7→D0 with the address moving
        downward, exactly like the hardware.
        """
        size = instr.size_bytes
        ea = instr.operands[0]
        regs = sorted(
            instr.reg_list,
            key=lambda r: (r[0] == "A", r[1]),
        )

        def read_reg(kind, num):
            return self.regs.d[num] if kind == "D" else self.regs.a[num]

        def write_reg(kind, num, value):
            # MOVEM.W loads sign-extend into the full register.
            if size == 2:
                value = to_unsigned(sign_extend(value, 16), 4)
            if kind == "D":
                self.regs.d[num] = value & 0xFFFF_FFFF
            else:
                self.regs.a[num] = value & 0xFFFF_FFFF

        if instr.movem_store:
            if ea.mode is Mode.PREDEC:
                for kind, num in reversed(regs):
                    self.regs.a[ea.reg] = (self.regs.a[ea.reg] - size) \
                        & 0xFFFF_FFFF
                    v = to_unsigned(read_reg(kind, num), size)
                    if not self._try_write(self.regs.a[ea.reg], v, size):
                        yield from self.bus.write(
                            self.regs.a[ea.reg], v, size
                        )
            else:
                addr = self._ea_address(ea, size, pc) \
                    if ea.mode is not Mode.IND else self.regs.a[ea.reg]
                for kind, num in regs:
                    v = to_unsigned(read_reg(kind, num), size)
                    if not self._try_write(addr, v, size):
                        yield from self.bus.write(addr, v, size)
                    addr += size
        else:
            if ea.mode is Mode.POSTINC:
                for kind, num in regs:
                    value = self._try_read(self.regs.a[ea.reg], size)
                    if value is None:
                        value = yield from self.bus.read(
                            self.regs.a[ea.reg], size
                        )
                    write_reg(kind, num, value)
                    self.regs.a[ea.reg] = (self.regs.a[ea.reg] + size) \
                        & 0xFFFF_FFFF
            else:
                addr = self._ea_address(ea, size, pc) \
                    if ea.mode is not Mode.IND else self.regs.a[ea.reg]
                for kind, num in regs:
                    value = self._try_read(addr, size)
                    if value is None:
                        value = yield from self.bus.read(addr, size)
                    write_reg(kind, num, value)
                    addr += size
        return _static_timing(instr)

    # ------------------------------------------------------------------
    def _unary_result(self, m: str, old: int, size: int) -> tuple[int, int]:
        if m == "CLR":
            return 0, 0
        if m == "NOT":
            return to_unsigned(~old, size), 0
        if m == "NEG":
            return to_unsigned(-old, size), 0
        if m == "NEGX":
            x_in = int(self.regs.ccr.x)
            return to_unsigned(-old - x_in, size), x_in
        if m == "TAS":
            return to_unsigned(old | 0x80, 1), 0
        raise AssertionError(m)

    def _unary_flags(self, m: str, old: int, new: int, size: int) -> None:
        ccr = self.regs.ccr
        if m == "CLR":
            ccr.n, ccr.z, ccr.v, ccr.c = False, True, False, False
        elif m == "NOT":
            ccr.set_nz(new, size)
        elif m == "NEG":
            ccr.set_nz(new, size)
            ccr.c = new != 0
            ccr.x = ccr.c
            ccr.v = old == (1 << (size * 8 - 1))  # -MIN overflows
        elif m == "NEGX":
            # Z is only *cleared*, never set (multi-precision chains
            # preserve a zero result built up across words).
            was_z = ccr.z
            ccr.set_nz(new, size)
            ccr.z = was_z and ccr.z
            # Borrow out of 0 − old − X happens unless old == X == 0.
            ccr.c = (old != 0) or (new != 0)
            ccr.x = ccr.c
            sign_bit = 1 << (size * 8 - 1)
            ccr.v = bool(old & sign_bit) and bool(new & sign_bit)
        elif m == "TAS":
            # Flags reflect the *tested* (pre-set) value.
            self.regs.ccr.set_nz(old, 1)

    def _shift(self, m: str, value: int, count: int, size: int) -> int:
        """Apply a shift/rotate; sets flags; returns the new value."""
        bits = size * 8
        mask = (1 << bits) - 1
        ccr = self.regs.ccr
        value &= mask
        if count == 0:
            ccr.set_nz(value, size)
            # Rotates through X report X in C even for a zero count.
            ccr.c = ccr.x if m in ("ROXL", "ROXR") else False
            return value
        carry = False
        if m in ("LSL", "ASL"):
            overflow = False
            for _ in range(count):
                carry = bool(value >> (bits - 1))
                shifted = (value << 1) & mask
                if m == "ASL" and (value >> (bits - 1)) != (shifted >> (bits - 1)):
                    overflow = True
                value = shifted
            ccr.set_nz(value, size)
            ccr.c = ccr.x = carry
            ccr.v = overflow if m == "ASL" else False
        elif m == "LSR":
            for _ in range(count):
                carry = bool(value & 1)
                value >>= 1
            ccr.set_nz(value, size)
            ccr.c = ccr.x = carry
        elif m == "ASR":
            sign = value >> (bits - 1)
            for _ in range(count):
                carry = bool(value & 1)
                value = (value >> 1) | (sign << (bits - 1))
            ccr.set_nz(value, size)
            ccr.c = ccr.x = carry
        elif m == "ROL":
            for _ in range(count):
                top = value >> (bits - 1)
                value = ((value << 1) | top) & mask
                carry = bool(top)
            ccr.set_nz(value, size)
            ccr.c = carry
        elif m == "ROR":
            for _ in range(count):
                low = value & 1
                value = (value >> 1) | (low << (bits - 1))
                carry = bool(low)
            ccr.set_nz(value, size)
            ccr.c = carry
        elif m == "ROXL":
            x = ccr.x
            for _ in range(count):
                top = bool(value >> (bits - 1))
                value = ((value << 1) | int(x)) & mask
                x = top
            ccr.set_nz(value, size)
            ccr.c = ccr.x = x
        elif m == "ROXR":
            x = ccr.x
            for _ in range(count):
                low = bool(value & 1)
                value = (value >> 1) | (int(x) << (bits - 1))
                x = low
            ccr.set_nz(value, size)
            ccr.c = ccr.x = x
        else:  # pragma: no cover
            raise AssertionError(m)
        return value

    # ------------------------------------------------------------------
    def _alu(self, instr, pc, next_pc):
        """Hybrid handler for the ADD/SUB/CMP/logic families (all variants).

        Register/immediate-only forms are handled synchronously by
        :meth:`_exec_alu_reg`; this one covers memory operands, returning
        a slow-continuation generator when a bus access was refused.
        """
        src_val = self._read_operand_now(
            instr.operands[0], instr.size_bytes, pc
        )
        if src_val is None:
            return self._alu_src_slow(instr, pc)
        return self._alu_finish(instr, pc, src_val)

    def _alu_src_slow(self, instr, pc):
        """Generator: ALU op whose source read was refused."""
        src_val = yield from self._pending_read(instr.size_bytes)
        t = self._alu_finish(instr, pc, src_val)
        if type(t) is not TimingInfo:
            t = yield from t
        return t

    def _alu_finish(self, instr, pc, src_val):
        """Rest of an ALU op once the source value is in hand.

        Returns the TimingInfo, or a generator when the destination
        access was refused.
        """
        m = instr.mnemonic
        size = instr.size_bytes
        dst = instr.operands[1]
        regs = self.regs
        base = instr._alu_base_cache
        if base is None:
            base = _alu_base(m)
            instr._alu_base_cache = base

        if m in ALU_ADDR:
            # Word sources sign-extend; operation is on the full 32 bits.
            if size == 2:
                src_val32 = to_unsigned(sign_extend(src_val, 16), 4)
            else:
                src_val32 = src_val
            dst_val = regs.read_a(dst.reg, 4)
            if base == "ADD":
                regs.write_a(dst.reg, dst_val + src_val32, 4)
            elif base == "SUB":
                regs.write_a(dst.reg, dst_val - src_val32, 4)
            else:  # CMPA
                self._sub_flags(dst_val, src_val32, 4, set_x=False)
            return _static_timing(instr)

        if dst.mode is Mode.AREG:
            # ADDQ/SUBQ #n,An (no flags); other An destinations are
            # rejected below by _ea_address, as before the registry.
            if m in QUICK:
                dst_val = regs.read_a(dst.reg, 4)
                delta = int(instr.operands[0].value)
                if base == "ADD":
                    regs.write_a(dst.reg, dst_val + delta, 4)
                else:
                    regs.write_a(dst.reg, dst_val - delta, 4)
                return _static_timing(instr)

        if dst.mode is Mode.DREG:
            dst_val = regs.read_d(dst.reg, size)
            store, result = self._alu_compute(base, dst_val, src_val, size)
            if store:
                regs.write_d(dst.reg, to_unsigned(result, size), size)
            return _static_timing(instr)

        dst_addr = self._ea_address(dst, size, pc)
        dst_val = self._try_read(dst_addr, size)
        if dst_val is None:
            return self._alu_mem_slow(instr, dst_addr, src_val)
        store, result = self._alu_compute(base, dst_val, src_val, size)
        if store:
            result = to_unsigned(result, size)
            if not self._try_write(dst_addr, result, size):
                return self._alu_store_slow(instr, dst_addr, result)
        return _static_timing(instr)

    def _alu_mem_slow(self, instr, dst_addr, src_val):
        """Generator: ALU memory destination whose read was refused."""
        size = instr.size_bytes
        dst_val = yield from self.bus.read(dst_addr, size)
        store, result = self._alu_compute(
            instr._alu_base_cache, dst_val, src_val, size
        )
        if store:
            result = to_unsigned(result, size)
            if not self._try_write(dst_addr, result, size):
                yield from self.bus.write(dst_addr, result, size)
        return _static_timing(instr)

    def _alu_store_slow(self, instr, dst_addr, result):
        """Generator: ALU memory destination whose write-back was refused."""
        yield from self.bus.write(dst_addr, result, instr.size_bytes)
        return _static_timing(instr)

    def _alu_compute(self, base, dst_val, src_val, size):
        """ALU arithmetic + flags; returns ``(store, raw_result)``."""
        ccr = self.regs.ccr
        store = True
        if base == "ADD":
            result = dst_val + src_val
            self._add_flags(dst_val, src_val, result, size)
        elif base == "SUB":
            result = dst_val - src_val
            self._sub_flags(dst_val, src_val, size=size, set_x=True)
        elif base == "CMP":
            result = dst_val
            self._sub_flags(dst_val, src_val, size=size, set_x=False)
            store = False
        elif base == "AND":
            result = dst_val & src_val
            ccr.set_nz(result, size)
        elif base == "OR":
            result = dst_val | src_val
            ccr.set_nz(result, size)
        elif base == "EOR":
            result = dst_val ^ src_val
            ccr.set_nz(result, size)
        else:  # pragma: no cover
            raise AssertionError(base)
        return store, result

    def _add_flags(self, a: int, b: int, result: int, size: int) -> None:
        bits = size * 8
        mask = (1 << bits) - 1
        ccr = self.regs.ccr
        r = result & mask
        ccr.z = r == 0
        ccr.n = bool(r >> (bits - 1))
        ccr.c = result > mask
        ccr.x = ccr.c
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), r >> (bits - 1)
        ccr.v = (sa == sb) and (sr != sa)

    def _sub_flags(self, a: int, b: int, size: int, *, set_x: bool) -> None:
        """Flags for ``a - b`` (CMP/SUB semantics)."""
        bits = size * 8
        mask = (1 << bits) - 1
        ccr = self.regs.ccr
        result = (a - b) & mask
        ccr.z = result == 0
        ccr.n = bool(result >> (bits - 1))
        ccr.c = b > a
        if set_x:
            ccr.x = ccr.c
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), result >> (bits - 1)
        ccr.v = (sa != sb) and (sr != sa)


# ----------------------------------------------------------------------
# Execute-handler registry.
#
# ``_resolve_handler`` maps an assembled instruction to its handler once;
# the ``(kind, function)`` pair is cached on the instruction.  Kinds:
#
# 0 — generator handler: driven through the bus protocol as usual.
# 1 — sync handler: a plain function; the resolver proved, from the
#     mnemonic and operand modes alone, that execution can never touch
#     the bus, so the interpreter skips the generator machinery.
# 2 — hybrid handler: a plain function that returns a TimingInfo when
#     all bus accesses were absorbed by the fast twins, or a generator
#     continuation when one was refused (possible blocking access).

_GEN, _SYNC, _HYBRID = 0, 1, 2

_REG_OR_IMM = (Mode.DREG, Mode.AREG, Mode.IMM)

_SYNC_SINGLETONS = {
    "HALT": CPU._exec_halt,
    "NOP": CPU._exec_nop,
    "MOVEQ": CPU._exec_moveq,
    "LEA": CPU._exec_lea,
    "EXG": CPU._exec_exg,
    "SWAP": CPU._exec_swap,
    "EXT": CPU._exec_ext,
}

_GEN_SINGLETONS = {
    "RTS": CPU._exec_rts,
    "PEA": CPU._exec_pea,
    "LINK": CPU._exec_link,
    "UNLK": CPU._exec_unlk,
    "CMPM": CPU._exec_cmpm,
    "MOVEM": CPU._movem,
}

#: Instructions that end a superinstruction chain: anything that moves the
#: pc non-linearly, plus HALT (which must be seen by the run loop).
_CHAIN_BREAKERS = (
    frozenset(BRANCHES) | frozenset(DBCC) | frozenset(JUMPS)
    | frozenset(("BSR", "JSR", "RTS", "HALT"))
)


def _alu_base(m: str) -> str:
    """Family base mnemonic: ADDI/ADDQ/ADDA → ADD, CMPA/CMPI → CMP, …"""
    if m in ALU_IMM or m in QUICK or m in ("ADDA", "SUBA", "CMPA"):
        return m[:-1]
    return m


def _resolve_handler(instr: Instruction) -> tuple:
    """Pick the execute handler for ``instr``: ``(kind, function)``.

    The choice depends only on fields fixed at assembly time (mnemonic and
    operand modes), so the caller caches it on the instruction.
    """
    m = instr.mnemonic
    ops = instr.operands
    if m == "MOVE" or m == "MOVEA":
        src, dst = ops
        if src.mode in _REG_OR_IMM and dst.mode in (Mode.DREG, Mode.AREG):
            return (_SYNC, CPU._exec_move_reg)
        return (_HYBRID, CPU._exec_move_mem)
    if m in ALU_ALL:
        src, dst = ops
        if src.mode in _REG_OR_IMM and (
            dst.mode is Mode.DREG
            or (dst.mode is Mode.AREG and (m in ALU_ADDR or m in QUICK))
        ):
            return (_SYNC, CPU._exec_alu_reg)
        return (_HYBRID, CPU._alu)
    if m in DBCC:
        return (_SYNC, CPU._exec_dbcc)
    if m in BRANCHES:
        if m == "BSR":
            return (_GEN, CPU._exec_bsr)
        return (_SYNC, CPU._exec_branch)
    if m in MULDIV:
        if ops[0].mode in _REG_OR_IMM:
            return (_SYNC, CPU._exec_muldiv_reg)
        return (_HYBRID, CPU._exec_muldiv_mem)
    if m in UNARY:
        dst = ops[0]
        if dst.mode is Mode.DREG or (m == "TST" and dst.mode in _REG_OR_IMM):
            return (_SYNC, CPU._exec_unary_reg)
        return (_HYBRID, CPU._exec_unary_mem)
    if m in SHIFTS:
        return (_SYNC, CPU._exec_shift)
    fn = _SYNC_SINGLETONS.get(m)
    if fn is not None:
        return (_SYNC, fn)
    if m in JUMPS:
        if m == "JSR":
            return (_GEN, CPU._exec_jsr)
        return (_SYNC, CPU._exec_jmp)
    if m in EXTENDED:
        if ops[0].mode is Mode.DREG:
            return (_SYNC, CPU._exec_addx_reg)
        return (_GEN, CPU._addx_subx)
    if m in SCC:
        if ops[0].mode is Mode.DREG:
            return (_SYNC, CPU._exec_scc_reg)
        return (_GEN, CPU._exec_scc_mem)
    if m in BITOPS:
        if ops[1].mode is Mode.DREG:
            return (_SYNC, CPU._exec_bitop_reg)
        return (_GEN, CPU._exec_bitop_mem)
    fn = _GEN_SINGLETONS.get(m)
    if fn is not None:
        return (_GEN, fn)
    return (_GEN, CPU._exec_illegal)
