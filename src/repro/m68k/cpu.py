"""MC68000 interpreter.

The CPU executes :class:`~repro.m68k.instructions.Instruction` objects
against a *bus* object inside the discrete-event simulation.  All memory
traffic goes through the bus as generator calls so that

* per-region wait states are charged where they belong (instruction stream
  vs operand data),
* accesses to memory-mapped devices (network transfer registers, the SIMD
  instruction space) can block the CPU — which is exactly how PASM's SIMD
  instruction broadcast, implicit network synchronization, and barrier
  mechanism work.

Bus protocol (all methods are generators driven by the sim kernel):

``fetch_instruction(addr)``
    returns the :class:`Instruction` at ``addr`` after charging its
    instruction-stream fetch accesses; may block (SIMD space rendezvous).
``fetch_stream_words(addr, n)``
    charges ``n`` extra instruction-stream accesses (branch-target
    prefetches, RTS pipeline refill).
``read(addr, size)`` / ``write(addr, value, size)``
    operand accesses; may block on device registers.
``internal(cycles)``
    pure execution time (no bus activity).

The interpreter computes results *and* the manual timing
(:func:`~repro.m68k.timing.instruction_timing`) for every executed
instruction, charging ``internal_cycles`` so the total elapsed simulated
time equals the manual time plus whatever the bus added (wait states,
queue/rendezvous stalls, device blocking).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IllegalInstructionError, SimulationError
from repro.m68k.addressing import Mode, Operand
from repro.m68k.instructions import (
    ALU_ADDR,
    ALU_IMM,
    ALU_REG,
    BITOPS,
    BRANCHES,
    DBCC,
    EXTENDED,
    Instruction,
    JUMPS,
    MULDIV,
    QUICK,
    SCC,
    SHIFTS,
)
from repro.m68k.registers import RegisterFile
from repro.m68k.timing import TimingInfo, instruction_timing
from repro.utils.bitops import sign_extend, to_signed, to_unsigned


class HaltReason(enum.Enum):
    """Why a CPU stopped running."""

    HALT_INSTRUCTION = "halt"
    EXTERNAL = "external"


@dataclass
class InstructionRecord:
    """Instrumentation record for one executed instruction."""

    instr: Instruction
    start: float
    end: float
    timing: TimingInfo

    @property
    def elapsed(self) -> float:
        """Wall (simulated) cycles including wait states and stalls."""
        return self.end - self.start


class CPU:
    """One MC68000 core bound to a bus.

    Parameters
    ----------
    env:
        The simulation environment (time in clock cycles).
    bus:
        Object implementing the bus protocol described in the module
        docstring.
    name:
        Label used in error messages and traces.
    """

    def __init__(self, env, bus, name: str = "cpu") -> None:
        self.env = env
        self.bus = bus
        self.name = name
        self.regs = RegisterFile()
        self.halted: HaltReason | None = None
        self.instruction_count = 0
        #: Per-timecat simulated-cycle totals (fed by ``run``/``step``).
        self.category_cycles: dict[str, float] = {}
        #: Optional per-instruction trace (enable with ``trace=True``).
        self.trace_records: list[InstructionRecord] = []
        self.trace = False

    # ------------------------------------------------------------------
    def reset(self, pc: int, sp: int = 0) -> None:
        """Reset the register file and start address."""
        self.regs = RegisterFile()
        self.regs.pc = pc
        self.regs.sp = sp
        self.halted = None

    def run(self, max_instructions: int | None = None):
        """Generator process: execute until HALT (or an instruction cap)."""
        executed = 0
        while self.halted is None:
            yield from self.step()
            executed += 1
            if max_instructions is not None and executed >= max_instructions:
                self.halted = HaltReason.EXTERNAL
        return self.halted

    # ------------------------------------------------------------------
    def step(self):
        """Execute one instruction (generator)."""
        start = self.env.now
        pc = self.regs.pc
        instr = yield from self.bus.fetch_instruction(pc)
        if not isinstance(instr, Instruction):
            raise SimulationError(
                f"{self.name}: no instruction at {pc:#x} (got {instr!r})"
            )
        next_pc = pc + instr.encoded_bytes()
        self.regs.pc = next_pc  # may be overridden by control flow below

        timing = yield from self._execute(instr, pc, next_pc)

        # Charge internal (non-bus) time and any stream accesses beyond the
        # encoded words (branch-target prefetch, RTS refill).
        extra_stream = timing.stream_words - instr.encoded_words()
        if extra_stream > 0:
            yield from self.bus.fetch_stream_words(self.regs.pc, extra_stream)
        internal = timing.internal_cycles
        if internal < 0:
            raise SimulationError(
                f"{self.name}: negative internal time for {instr} ({timing})"
            )
        if internal:
            yield from self.bus.internal(internal)

        end = self.env.now
        self.instruction_count += 1
        cat = instr.timecat
        self.category_cycles[cat] = self.category_cycles.get(cat, 0.0) + (end - start)
        if self.trace:
            self.trace_records.append(InstructionRecord(instr, start, end, timing))

    # ------------------------------------------------------------------
    # effective addresses and operand access
    def _ea_address(self, op: Operand, size: int, instr_addr: int) -> int:
        """Compute the operand address, applying side effects once."""
        mode = op.mode
        r = self.regs
        if mode is Mode.IND:
            return r.a[op.reg]
        if mode is Mode.POSTINC:
            addr = r.a[op.reg]
            step = size
            if op.reg == 7 and size == 1:
                step = 2  # A7 stays word-aligned on the 68000
            r.a[op.reg] = (addr + step) & 0xFFFF_FFFF
            return addr
        if mode is Mode.PREDEC:
            step = size
            if op.reg == 7 and size == 1:
                step = 2
            r.a[op.reg] = (r.a[op.reg] - step) & 0xFFFF_FFFF
            return r.a[op.reg]
        if mode is Mode.DISP:
            return (r.a[op.reg] + sign_extend(op.disp, 16)) & 0xFFFF_FFFF
        if mode is Mode.INDEX:
            kind, num = op.index_reg
            idx = r.d[num] if kind == "D" else r.a[num]
            idx = sign_extend(idx, 16)  # .W index form
            return (r.a[op.reg] + sign_extend(op.disp, 8) + idx) & 0xFFFF_FFFF
        if mode is Mode.ABS_W:
            return sign_extend(int(op.value), 16) & 0xFFFF_FFFF
        if mode is Mode.ABS_L:
            return int(op.value) & 0xFFFF_FFFF
        if mode is Mode.PCDISP:
            return (instr_addr + 2 + sign_extend(op.disp, 16)) & 0xFFFF_FFFF
        raise IllegalInstructionError(f"no address for mode {mode}")

    def _read_operand(self, op: Operand, size: int, instr_addr: int):
        """Generator: operand value (unsigned), charging bus time."""
        if op.mode is Mode.DREG:
            return self.regs.read_d(op.reg, size)
        if op.mode is Mode.AREG:
            return self.regs.read_a(op.reg, size)
        if op.mode is Mode.IMM:
            return to_unsigned(int(op.value), size)
        addr = self._ea_address(op, size, instr_addr)
        value = yield from self.bus.read(addr, size)
        return to_unsigned(value, size)

    def _write_operand(self, op: Operand, value: int, size: int, instr_addr: int):
        """Generator: write ``value`` to the operand location."""
        if op.mode is Mode.DREG:
            self.regs.write_d(op.reg, value, size)
            return None
        if op.mode is Mode.AREG:
            self.regs.write_a(op.reg, value, size)
            return None
        addr = self._ea_address(op, size, instr_addr)
        yield from self.bus.write(addr, to_unsigned(value, size), size)
        return addr

    # ------------------------------------------------------------------
    def _execute(self, instr: Instruction, pc: int, next_pc: int):
        """Generator: execute ``instr``; returns its TimingInfo."""
        m = instr.mnemonic
        size = instr.size_bytes
        ops = instr.operands
        ccr = self.regs.ccr

        if m == "HALT":
            self.halted = HaltReason.HALT_INSTRUCTION
            return instruction_timing(instr)

        if m == "NOP":
            return instruction_timing(instr)

        if m in ("MOVE", "MOVEA"):
            src, dst = ops
            value = yield from self._read_operand(src, size, pc)
            if m == "MOVEA" or dst.mode is Mode.AREG:
                self.regs.write_a(dst.reg, value, size)
            else:
                yield from self._write_operand(dst, value, size, pc)
                ccr.set_nz(value, size)
            return instruction_timing(instr)

        if m == "MOVEQ":
            value = to_signed(int(ops[0].value) & 0xFF, 1)
            self.regs.write_d(ops[1].reg, value & 0xFFFF_FFFF, 4)
            ccr.set_nz(value & 0xFFFF_FFFF, 4)
            return instruction_timing(instr)

        if m == "LEA":
            addr = self._ea_address(ops[0], 4, pc)
            self.regs.write_a(ops[1].reg, addr, 4)
            return instruction_timing(instr)

        if m == "EXG":
            a, b = ops
            va = self.regs.d[a.reg] if a.mode is Mode.DREG else self.regs.a[a.reg]
            vb = self.regs.d[b.reg] if b.mode is Mode.DREG else self.regs.a[b.reg]
            if a.mode is Mode.DREG:
                self.regs.d[a.reg] = vb
            else:
                self.regs.a[a.reg] = vb
            if b.mode is Mode.DREG:
                self.regs.d[b.reg] = va
            else:
                self.regs.a[b.reg] = va
            return instruction_timing(instr)

        if m == "SWAP":
            v = self.regs.d[ops[0].reg]
            v = ((v >> 16) | (v << 16)) & 0xFFFF_FFFF
            self.regs.d[ops[0].reg] = v
            ccr.set_nz(v, 4)
            return instruction_timing(instr)

        if m == "EXT":
            r = ops[0].reg
            if size == 2:  # byte → word
                self.regs.write_d(r, sign_extend(self.regs.read_d(r, 1), 8), 2)
                ccr.set_nz(self.regs.read_d(r, 2), 2)
            else:  # word → long
                self.regs.write_d(r, sign_extend(self.regs.read_d(r, 2), 16), 4)
                ccr.set_nz(self.regs.read_d(r, 4), 4)
            return instruction_timing(instr)

        if m in ("CLR", "NOT", "NEG", "NEGX", "TST", "TAS"):
            dst = ops[0]
            if m == "TST":
                value = yield from self._read_operand(dst, size, pc)
                ccr.set_nz(value, size)
                return instruction_timing(instr)
            # read-modify-write (the 68000 reads even for CLR)
            if dst.mode is Mode.DREG:
                old = self.regs.read_d(dst.reg, size)
                new, flags_from = self._unary_result(m, old, size)
                self.regs.write_d(dst.reg, new, size)
            else:
                addr = self._ea_address(dst, size, pc)
                old = yield from self.bus.read(addr, size)
                new, flags_from = self._unary_result(m, old, size)
                yield from self.bus.write(addr, new, size)
            self._unary_flags(m, old, new, size)
            return instruction_timing(instr)

        if m in MULDIV:
            src, dst = ops
            src_val = yield from self._read_operand(src, 2, pc)
            if m == "MULU":
                result = src_val * self.regs.read_d(dst.reg, 2)
                self.regs.write_d(dst.reg, result & 0xFFFF_FFFF, 4)
                ccr.set_nz(result & 0xFFFF_FFFF, 4)
            elif m == "MULS":
                result = to_signed(src_val, 2) * to_signed(
                    self.regs.read_d(dst.reg, 2), 2
                )
                self.regs.write_d(dst.reg, result & 0xFFFF_FFFF, 4)
                ccr.set_nz(result & 0xFFFF_FFFF, 4)
            elif m == "DIVU":
                divisor = src_val
                if divisor == 0:
                    raise IllegalInstructionError(f"{self.name}: divide by zero")
                dividend = self.regs.read_d(dst.reg, 4)
                quot, rem = divmod(dividend, divisor)
                if quot > 0xFFFF:
                    ccr.v = True  # overflow: register unchanged
                else:
                    self.regs.write_d(dst.reg, (rem << 16) | quot, 4)
                    ccr.set_nz(quot, 2)
            else:  # DIVS
                divisor = to_signed(src_val, 2)
                if divisor == 0:
                    raise IllegalInstructionError(f"{self.name}: divide by zero")
                dividend = to_signed(self.regs.read_d(dst.reg, 4), 4)
                quot = int(dividend / divisor)  # trunc toward zero
                rem = dividend - quot * divisor
                if not -0x8000 <= quot <= 0x7FFF:
                    ccr.v = True
                else:
                    self.regs.write_d(
                        dst.reg,
                        ((to_unsigned(rem, 2)) << 16) | to_unsigned(quot, 2),
                        4,
                    )
                    ccr.set_nz(to_unsigned(quot, 2), 2)
            return instruction_timing(instr, src_value=src_val)

        if m in SHIFTS:
            count_op, reg_op = ops
            if count_op.mode is Mode.IMM:
                count = int(count_op.value)
            else:
                count = self.regs.read_d(count_op.reg, 4) % 64
            value = self.regs.read_d(reg_op.reg, size)
            new = self._shift(m, value, count, size)
            self.regs.write_d(reg_op.reg, new, size)
            return instruction_timing(instr, shift_count=count)

        if m in BRANCHES:
            target = int(instr.target)
            if m == "BSR":
                self.regs.sp = (self.regs.sp - 4) & 0xFFFF_FFFF
                yield from self.bus.write(self.regs.sp, next_pc, 4)
                self.regs.pc = target
                return instruction_timing(instr)
            cond = instr.condition
            taken = True if m == "BRA" else ccr.test(cond)
            if taken:
                self.regs.pc = target
            return instruction_timing(instr, branch_taken=taken)

        if m in DBCC:
            cond = instr.condition
            target = int(instr.target)
            if ccr.test(cond):
                return instruction_timing(instr, branch_taken=False)
            reg = ops[0].reg
            counter = (self.regs.read_d(reg, 2) - 1) & 0xFFFF
            self.regs.write_d(reg, counter, 2)
            if counter == 0xFFFF:  # expired
                return instruction_timing(
                    instr, branch_taken=False, dbcc_expired=True
                )
            self.regs.pc = target
            return instruction_timing(instr, branch_taken=True)

        if m in JUMPS:
            addr = self._ea_address(ops[0], 4, pc)
            if m == "JSR":
                self.regs.sp = (self.regs.sp - 4) & 0xFFFF_FFFF
                yield from self.bus.write(self.regs.sp, next_pc, 4)
            self.regs.pc = addr
            return instruction_timing(instr)

        if m == "RTS":
            addr = yield from self.bus.read(self.regs.sp, 4)
            self.regs.sp = (self.regs.sp + 4) & 0xFFFF_FFFF
            self.regs.pc = addr & 0xFFFF_FFFF
            return instruction_timing(instr)

        if m == "PEA":
            addr = self._ea_address(ops[0], 4, pc)
            self.regs.sp = (self.regs.sp - 4) & 0xFFFF_FFFF
            yield from self.bus.write(self.regs.sp, addr, 4)
            return instruction_timing(instr)

        if m == "LINK":
            an, disp = ops
            self.regs.sp = (self.regs.sp - 4) & 0xFFFF_FFFF
            yield from self.bus.write(self.regs.sp, self.regs.a[an.reg], 4)
            self.regs.a[an.reg] = self.regs.sp
            self.regs.sp = (self.regs.sp + to_signed(int(disp.value), 2)) \
                & 0xFFFF_FFFF
            return instruction_timing(instr)

        if m == "UNLK":
            an = ops[0].reg
            self.regs.sp = self.regs.a[an]
            value = yield from self.bus.read(self.regs.sp, 4)
            self.regs.a[an] = value
            self.regs.sp = (self.regs.sp + 4) & 0xFFFF_FFFF
            return instruction_timing(instr)

        if m == "CMPM":
            src_val = yield from self._read_operand(ops[0], size, pc)
            dst_val = yield from self._read_operand(ops[1], size, pc)
            self._sub_flags(dst_val, src_val, size, set_x=False)
            return instruction_timing(instr)

        if m in EXTENDED:  # ADDX / SUBX
            timing = yield from self._addx_subx(instr, m, ops, size, pc)
            return timing

        if m in SCC:
            taken = ccr.test(instr.condition)
            value = 0xFF if taken else 0x00
            dst = ops[0]
            if dst.mode is Mode.DREG:
                self.regs.write_d(dst.reg, value, 1)
            else:
                addr = self._ea_address(dst, 1, pc)
                # read-modify-write like the hardware
                yield from self.bus.read(addr, 1)
                yield from self.bus.write(addr, value, 1)
            return instruction_timing(instr, branch_taken=taken)

        if m in BITOPS:
            timing = yield from self._bitop(instr, m, ops, pc)
            return timing

        if m == "MOVEM":
            timing = yield from self._movem(instr, size, pc)
            return timing

        if m in QUICK or m in ALU_IMM or m in ALU_ADDR or m in ALU_REG:
            timing = yield from self._alu(instr, m, ops, size, pc)
            return timing

        raise IllegalInstructionError(f"{self.name}: cannot execute {m}")

    # ------------------------------------------------------------------
    def _addx_subx(self, instr: Instruction, m: str, ops, size: int, pc: int):
        """ADDX/SUBX: multi-precision add/subtract through the X flag."""
        ccr = self.regs.ccr
        x_in = int(ccr.x)
        src, dst = ops
        if src.mode is Mode.DREG:
            src_val = self.regs.read_d(src.reg, size)
            dst_val = self.regs.read_d(dst.reg, size)
        else:  # -(Ay),-(Ax)
            src_addr = self._ea_address(src, size, pc)
            src_val = yield from self.bus.read(src_addr, size)
            dst_addr = self._ea_address(dst, size, pc)
            dst_val = yield from self.bus.read(dst_addr, size)
        if m == "ADDX":
            result = dst_val + src_val + x_in
            self._add_flags(dst_val, src_val + x_in, result, size)
        else:
            result = dst_val - src_val - x_in
            borrow = (src_val + x_in) > dst_val
            bits = size * 8
            r = result & ((1 << bits) - 1)
            ccr.n = bool(r >> (bits - 1))
            ccr.c = ccr.x = borrow
            sa, sb = dst_val >> (bits - 1), src_val >> (bits - 1)
            ccr.v = (sa != sb) and ((r >> (bits - 1)) != sa)
        r = to_unsigned(result, size)
        # Z accumulates across a multi-precision chain: only cleared.
        if r != 0:
            ccr.z = False
        if src.mode is Mode.DREG:
            self.regs.write_d(dst.reg, r, size)
        else:
            yield from self.bus.write(dst_addr, r, size)
        return instruction_timing(instr)

    def _bitop(self, instr: Instruction, m: str, ops, pc: int):
        """BTST/BSET/BCLR/BCHG: Z reflects the tested bit (pre-change)."""
        bit_src, dst = ops
        if bit_src.mode is Mode.IMM:
            bit = int(bit_src.value)
        else:
            bit = self.regs.read_d(bit_src.reg, 4)
        if dst.mode is Mode.DREG:
            bit %= 32
            old = self.regs.read_d(dst.reg, 4)
            mask = 1 << bit
            self.regs.ccr.z = not (old & mask)
            if m == "BSET":
                self.regs.write_d(dst.reg, old | mask, 4)
            elif m == "BCLR":
                self.regs.write_d(dst.reg, old & ~mask, 4)
            elif m == "BCHG":
                self.regs.write_d(dst.reg, old ^ mask, 4)
        else:
            bit %= 8
            addr = self._ea_address(dst, 1, pc)
            old = yield from self.bus.read(addr, 1)
            mask = 1 << bit
            self.regs.ccr.z = not (old & mask)
            if m != "BTST":
                new = {"BSET": old | mask, "BCLR": old & ~mask,
                       "BCHG": old ^ mask}[m]
                yield from self.bus.write(addr, new, 1)
        return instruction_timing(instr)

    def _movem(self, instr: Instruction, size: int, pc: int):
        """MOVEM: multi-register transfer.

        Loads/stores proceed in mask order (D0→A7 ascending), except the
        pre-decrement store form which runs A7→D0 with the address moving
        downward, exactly like the hardware.
        """
        ea = instr.operands[0]
        regs = sorted(
            instr.reg_list,
            key=lambda r: (r[0] == "A", r[1]),
        )

        def read_reg(kind, num):
            return self.regs.d[num] if kind == "D" else self.regs.a[num]

        def write_reg(kind, num, value):
            # MOVEM.W loads sign-extend into the full register.
            if size == 2:
                value = to_unsigned(sign_extend(value, 16), 4)
            if kind == "D":
                self.regs.d[num] = value & 0xFFFF_FFFF
            else:
                self.regs.a[num] = value & 0xFFFF_FFFF

        if instr.movem_store:
            if ea.mode is Mode.PREDEC:
                for kind, num in reversed(regs):
                    self.regs.a[ea.reg] = (self.regs.a[ea.reg] - size) \
                        & 0xFFFF_FFFF
                    yield from self.bus.write(
                        self.regs.a[ea.reg],
                        to_unsigned(read_reg(kind, num), size), size,
                    )
            else:
                addr = self._ea_address(ea, size, pc) \
                    if ea.mode is not Mode.IND else self.regs.a[ea.reg]
                for kind, num in regs:
                    yield from self.bus.write(
                        addr, to_unsigned(read_reg(kind, num), size), size
                    )
                    addr += size
        else:
            if ea.mode is Mode.POSTINC:
                for kind, num in regs:
                    value = yield from self.bus.read(
                        self.regs.a[ea.reg], size
                    )
                    write_reg(kind, num, value)
                    self.regs.a[ea.reg] = (self.regs.a[ea.reg] + size) \
                        & 0xFFFF_FFFF
            else:
                addr = self._ea_address(ea, size, pc) \
                    if ea.mode is not Mode.IND else self.regs.a[ea.reg]
                for kind, num in regs:
                    value = yield from self.bus.read(addr, size)
                    write_reg(kind, num, value)
                    addr += size
        return instruction_timing(instr)

    # ------------------------------------------------------------------
    def _unary_result(self, m: str, old: int, size: int) -> tuple[int, int]:
        if m == "CLR":
            return 0, 0
        if m == "NOT":
            return to_unsigned(~old, size), 0
        if m == "NEG":
            return to_unsigned(-old, size), 0
        if m == "NEGX":
            x_in = int(self.regs.ccr.x)
            return to_unsigned(-old - x_in, size), x_in
        if m == "TAS":
            return to_unsigned(old | 0x80, 1), 0
        raise AssertionError(m)

    def _unary_flags(self, m: str, old: int, new: int, size: int) -> None:
        ccr = self.regs.ccr
        if m == "CLR":
            ccr.n, ccr.z, ccr.v, ccr.c = False, True, False, False
        elif m == "NOT":
            ccr.set_nz(new, size)
        elif m == "NEG":
            ccr.set_nz(new, size)
            ccr.c = new != 0
            ccr.x = ccr.c
            ccr.v = old == (1 << (size * 8 - 1))  # -MIN overflows
        elif m == "NEGX":
            # Z is only *cleared*, never set (multi-precision chains
            # preserve a zero result built up across words).
            was_z = ccr.z
            ccr.set_nz(new, size)
            ccr.z = was_z and ccr.z
            # Borrow out of 0 − old − X happens unless old == X == 0.
            ccr.c = (old != 0) or (new != 0)
            ccr.x = ccr.c
            sign_bit = 1 << (size * 8 - 1)
            ccr.v = bool(old & sign_bit) and bool(new & sign_bit)
        elif m == "TAS":
            # Flags reflect the *tested* (pre-set) value.
            self.regs.ccr.set_nz(old, 1)

    def _shift(self, m: str, value: int, count: int, size: int) -> int:
        """Apply a shift/rotate; sets flags; returns the new value."""
        bits = size * 8
        mask = (1 << bits) - 1
        ccr = self.regs.ccr
        value &= mask
        if count == 0:
            ccr.set_nz(value, size)
            # Rotates through X report X in C even for a zero count.
            ccr.c = ccr.x if m in ("ROXL", "ROXR") else False
            return value
        carry = False
        if m in ("LSL", "ASL"):
            overflow = False
            for _ in range(count):
                carry = bool(value >> (bits - 1))
                shifted = (value << 1) & mask
                if m == "ASL" and (value >> (bits - 1)) != (shifted >> (bits - 1)):
                    overflow = True
                value = shifted
            ccr.set_nz(value, size)
            ccr.c = ccr.x = carry
            ccr.v = overflow if m == "ASL" else False
        elif m == "LSR":
            for _ in range(count):
                carry = bool(value & 1)
                value >>= 1
            ccr.set_nz(value, size)
            ccr.c = ccr.x = carry
        elif m == "ASR":
            sign = value >> (bits - 1)
            for _ in range(count):
                carry = bool(value & 1)
                value = (value >> 1) | (sign << (bits - 1))
            ccr.set_nz(value, size)
            ccr.c = ccr.x = carry
        elif m == "ROL":
            for _ in range(count):
                top = value >> (bits - 1)
                value = ((value << 1) | top) & mask
                carry = bool(top)
            ccr.set_nz(value, size)
            ccr.c = carry
        elif m == "ROR":
            for _ in range(count):
                low = value & 1
                value = (value >> 1) | (low << (bits - 1))
                carry = bool(low)
            ccr.set_nz(value, size)
            ccr.c = carry
        elif m == "ROXL":
            x = ccr.x
            for _ in range(count):
                top = bool(value >> (bits - 1))
                value = ((value << 1) | int(x)) & mask
                x = top
            ccr.set_nz(value, size)
            ccr.c = ccr.x = x
        elif m == "ROXR":
            x = ccr.x
            for _ in range(count):
                low = bool(value & 1)
                value = (value >> 1) | (int(x) << (bits - 1))
                x = low
            ccr.set_nz(value, size)
            ccr.c = ccr.x = x
        else:  # pragma: no cover
            raise AssertionError(m)
        return value

    # ------------------------------------------------------------------
    def _alu(self, instr: Instruction, m: str, ops, size: int, pc: int):
        """Generator for the ADD/SUB/CMP/logic families (all variants)."""
        ccr = self.regs.ccr
        src, dst = ops
        base = m.rstrip("IQA")  # ADDI/ADDQ/ADDA → ADD, CMPA/CMPI → CMP...
        if m in ("ADDA", "SUBA", "CMPA"):
            base = m[:-1]
        elif m in ALU_IMM:
            base = m[:-1]
        elif m in QUICK:
            base = m[:-1]

        src_val = yield from self._read_operand(src, size, pc)
        if m in ALU_ADDR:
            # Word sources sign-extend; operation is on the full 32 bits.
            if size == 2:
                src_val32 = to_unsigned(sign_extend(src_val, 16), 4)
            else:
                src_val32 = src_val
            dst_val = self.regs.read_a(dst.reg, 4)
            if base == "ADD":
                self.regs.write_a(dst.reg, dst_val + src_val32, 4)
            elif base == "SUB":
                self.regs.write_a(dst.reg, dst_val - src_val32, 4)
            else:  # CMPA
                self._sub_flags(dst_val, src_val32, 4, set_x=False)
            return instruction_timing(instr)

        if m in QUICK and dst.mode is Mode.AREG:
            dst_val = self.regs.read_a(dst.reg, 4)
            delta = int(src.value)
            if base == "ADD":
                self.regs.write_a(dst.reg, dst_val + delta, 4)
            else:
                self.regs.write_a(dst.reg, dst_val - delta, 4)
            return instruction_timing(instr)

        # Resolve destination (register or memory read-modify-write).
        dst_addr = None
        if dst.mode is Mode.DREG:
            dst_val = self.regs.read_d(dst.reg, size)
        else:
            dst_addr = self._ea_address(dst, size, pc)
            dst_val = yield from self.bus.read(dst_addr, size)

        store = True
        if base == "ADD":
            result = dst_val + src_val
            self._add_flags(dst_val, src_val, result, size)
        elif base == "SUB":
            result = dst_val - src_val
            self._sub_flags(dst_val, src_val, size=size, set_x=True)
        elif base == "CMP":
            result = dst_val
            self._sub_flags(dst_val, src_val, size=size, set_x=False)
            store = False
        elif base == "AND":
            result = dst_val & src_val
            ccr.set_nz(result, size)
        elif base == "OR":
            result = dst_val | src_val
            ccr.set_nz(result, size)
        elif base == "EOR":
            result = dst_val ^ src_val
            ccr.set_nz(result, size)
        else:  # pragma: no cover
            raise AssertionError(base)

        if store:
            result = to_unsigned(result, size)
            if dst.mode is Mode.DREG:
                self.regs.write_d(dst.reg, result, size)
            else:
                yield from self.bus.write(dst_addr, result, size)
        return instruction_timing(instr)

    def _add_flags(self, a: int, b: int, result: int, size: int) -> None:
        bits = size * 8
        mask = (1 << bits) - 1
        ccr = self.regs.ccr
        r = result & mask
        ccr.z = r == 0
        ccr.n = bool(r >> (bits - 1))
        ccr.c = result > mask
        ccr.x = ccr.c
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), r >> (bits - 1)
        ccr.v = (sa == sb) and (sr != sa)

    def _sub_flags(self, a: int, b: int, size: int, *, set_x: bool) -> None:
        """Flags for ``a - b`` (CMP/SUB semantics)."""
        bits = size * 8
        mask = (1 << bits) - 1
        ccr = self.regs.ccr
        result = (a - b) & mask
        ccr.z = result == 0
        ccr.n = bool(result >> (bits - 1))
        ccr.c = b > a
        if set_x:
            ccr.x = ccr.c
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), result >> (bits - 1)
        ccr.v = (sa != sb) and (sr != sa)
