"""Disassembler / annotated listing generator.

Instructions already carry structured operands, so "disassembly" here
means producing a rich listing from an assembled program or a memory of
instructions: addresses, encodings (word counts), symbolic names for the
memory-mapped device registers, static manual timings, and timing
categories — the view you want when arguing about cycle counts.
"""

from __future__ import annotations

from repro.m68k.assembler import AssembledProgram
from repro.m68k.addressing import Mode
from repro.m68k.instructions import BRANCHES, DBCC, Instruction, MULDIV
from repro.m68k.timing import instruction_timing


def _symbolize(instr: Instruction, symbols: dict[int, str]) -> str:
    """Render an instruction with device addresses replaced by names."""
    text = str(instr)
    for op in instr.operands:
        if op.mode in (Mode.ABS_L, Mode.ABS_W) and isinstance(op.value, int):
            name = symbols.get(op.value)
            if name:
                text = text.replace(f"({op.value}).L", name)
                text = text.replace(f"({op.value}).W", name)
    return text


def static_timing_note(instr: Instruction) -> str:
    """Human-readable manual timing for one instruction.

    Data-dependent and outcome-dependent instructions get their ranges.
    """
    m = instr.mnemonic
    if m in ("MULU", "MULS"):
        lo = instruction_timing(instr, src_value=0)
        hi = instruction_timing(instr, src_value=0xFFFF if m == "MULU"
                                else 0x5555)
        return f"{lo.cycles}-{hi.cycles} cyc (data-dependent)"
    if m in BRANCHES and m != "BSR":
        if m == "BRA":
            return f"{instruction_timing(instr).cycles} cyc"
        taken = instruction_timing(instr, branch_taken=True)
        untaken = instruction_timing(instr, branch_taken=False)
        return f"{taken.cycles}/{untaken.cycles} cyc (taken/not)"
    if m in DBCC:
        loop = instruction_timing(instr, branch_taken=True)
        exit_ = instruction_timing(instr, branch_taken=False,
                                   dbcc_expired=True)
        return f"{loop.cycles}/{exit_.cycles} cyc (loop/exit)"
    if m.startswith("S") and instr.condition is not None and m not in MULDIV:
        try:
            t = instruction_timing(instr, branch_taken=True)
            f = instruction_timing(instr, branch_taken=False)
            if t.cycles != f.cycles:
                return f"{f.cycles}/{t.cycles} cyc (false/true)"
            return f"{t.cycles} cyc"
        except Exception:  # memory-destination Scc has one timing
            pass
    try:
        t = instruction_timing(instr)
    except Exception:
        return "(runtime-dependent)"
    return f"{t.cycles} cyc ({t.stream_words}s/{t.data_reads}r/{t.data_writes}w)"


def disassemble(
    program: AssembledProgram,
    *,
    device_symbols: dict[str, int] | None = None,
    with_timing: bool = True,
) -> str:
    """Produce an annotated listing of an assembled program."""
    symbols = {v: k for k, v in (device_symbols or {}).items()}
    # include program labels
    label_at = {}
    for name, value in program.symbols.items():
        label_at.setdefault(value, name)
    lines = []
    for addr in sorted(program.instructions):
        instr = program.instructions[addr]
        label = f"{label_at[addr]}:" if addr in label_at else ""
        text = _symbolize(instr, symbols)
        if isinstance(instr.target, int) and instr.target in label_at:
            text = text.replace(f"${instr.target:X}", label_at[instr.target])
        note = f"  ; {static_timing_note(instr)}" if with_timing else ""
        lines.append(
            f"{addr:06X}  {instr.encoded_words()}w  {label:<10} "
            f"{text:<36}{note}"
        )
    return "\n".join(lines)
