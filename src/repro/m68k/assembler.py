"""Two-pass assembler for the MC68000 subset.

The PASM experiment programs were written in MC68000 assembly; this module
lets the reproduction do the same.  Source is classic Motorola syntax::

            .org    $1000
            .timecat control
            MOVEQ   #3,D4
    loop:   .timecat mult
            MOVE.W  (A0)+,D0
            MULU    D1,D0
            ADD.W   D0,(A1)+
            .timecat control
            DBRA    D4,loop
            HALT

            .data
    vec:    .dc.w   1,2,3
    buf:    .ds.w   64

Supported directives: ``.org``, ``.text``, ``.data``, ``.equ``, ``.dc.b/w/l``,
``.ds.b/w/l``, ``.even``, ``.timecat``.  Comments start with ``;`` or ``*``
(full-line).  Instructions are emitted as structured
:class:`~repro.m68k.instructions.Instruction` objects carrying their byte
address and encoded length, so instruction-stream fetch counts stay faithful
without binary encoding.

``.timecat`` tags following instructions with a timing category (``mult``,
``comm``, ``control``, ``sync``, ``other``); the machine model accumulates
per-category cycle counts from these tags, which is how the paper's
Figures 8–10 execution-time breakdowns are produced.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.m68k.addressing import Mode, Operand
from repro.m68k.instructions import (
    ALL_MNEMONICS,
    BRANCHES,
    DBCC,
    Instruction,
    SCC,
    Size,
    validate,
)

#: Valid ``.timecat`` categories.
TIME_CATEGORIES = ("mult", "comm", "control", "sync", "other")

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_REG_RE = re.compile(r"^(D|A)([0-7])$", re.IGNORECASE)
_INDEX_RE = re.compile(
    r"^\(?A([0-7]),(D|A)([0-7])(?:\.[WL])?\)$", re.IGNORECASE
)


@dataclass
class AssembledProgram:
    """Result of assembling one source file.

    Attributes
    ----------
    instructions:
        Mapping from byte address to :class:`Instruction`.
    entry:
        Address of the first instruction (or the ``.org`` of ``.text``).
    data:
        List of ``(address, bytes)`` initialized-data chunks.
    symbols:
        Label and ``.equ`` values.
    """

    instructions: dict[int, Instruction] = field(default_factory=dict)
    entry: int = 0
    data: list[tuple[int, bytes]] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    text_start: int = 0
    text_end: int = 0

    def listing(self) -> str:
        """Human-readable listing (address, category, instruction)."""
        lines = []
        for addr in sorted(self.instructions):
            ins = self.instructions[addr]
            label = f"{ins.label}:" if ins.label else ""
            lines.append(f"{addr:06X} {label:<12} {str(ins):<32} ;{ins.timecat}")
        return "\n".join(lines)

    def instruction_list(self) -> list[Instruction]:
        """Instructions in address order."""
        return [self.instructions[a] for a in sorted(self.instructions)]


class _Parser:
    """Operand / expression parsing helpers shared by both passes."""

    def __init__(self, symbols: dict[str, int]) -> None:
        self.symbols = symbols

    # -- expressions ------------------------------------------------------
    def eval_expr(self, text: str, line_no: int, *, allow_unresolved: bool) -> int | str:
        """Evaluate an integer expression; return the text when unresolved.

        Supports decimal, ``$hex``, ``%binary``, symbols, unary minus, and
        left-to-right ``+``/``-``/``*`` arithmetic.
        """
        text = text.strip()
        try:
            return self._eval(text)
        except KeyError:
            if allow_unresolved:
                return text
            raise AssemblerError(f"undefined symbol in {text!r}", line_no) from None
        except (ValueError, IndexError):
            raise AssemblerError(f"bad expression {text!r}", line_no) from None

    def _eval(self, text: str) -> int:
        tokens = re.findall(r"[\w.$%]+|[+\-*]", text.replace(" ", ""))
        if not tokens:
            raise ValueError("empty expression")
        # unary minus
        if tokens[0] in "+-":
            tokens.insert(0, "0")
        value = self._atom(tokens[0])
        i = 1
        while i < len(tokens):
            op, rhs = tokens[i], self._atom(tokens[i + 1])
            if op == "+":
                value += rhs
            elif op == "-":
                value -= rhs
            elif op == "*":
                value *= rhs
            else:
                raise ValueError(op)
            i += 2
        return value

    def _atom(self, tok: str) -> int:
        if tok.startswith("$"):
            return int(tok[1:], 16)
        if tok.startswith("%"):
            return int(tok[1:], 2)
        if tok[0].isdigit():
            return int(tok, 10)
        return self.symbols[tok]  # KeyError → unresolved

    # -- operands ---------------------------------------------------------
    def parse_operand(self, text: str, line_no: int) -> Operand:
        text = text.strip()
        if not text:
            raise AssemblerError("empty operand", line_no)

        # Immediate
        if text.startswith("#"):
            value = self.eval_expr(text[1:], line_no, allow_unresolved=True)
            return Operand(Mode.IMM, value=value)

        # Register direct
        m = _REG_RE.match(text)
        if m:
            kind, num = m.group(1).upper(), int(m.group(2))
            return Operand(Mode.DREG if kind == "D" else Mode.AREG, reg=num)
        if text.upper() == "SP":
            return Operand(Mode.AREG, reg=7)

        # Pre-decrement
        m = re.match(r"^-\(A([0-7])\)$", text, re.IGNORECASE)
        if m:
            return Operand(Mode.PREDEC, reg=int(m.group(1)))
        if text.upper() == "-(SP)":
            return Operand(Mode.PREDEC, reg=7)

        # Post-increment
        m = re.match(r"^\(A([0-7])\)\+$", text, re.IGNORECASE)
        if m:
            return Operand(Mode.POSTINC, reg=int(m.group(1)))
        if text.upper() == "(SP)+":
            return Operand(Mode.POSTINC, reg=7)

        # Indirect
        m = re.match(r"^\(A([0-7])\)$", text, re.IGNORECASE)
        if m:
            return Operand(Mode.IND, reg=int(m.group(1)))
        if text.upper() == "(SP)":
            return Operand(Mode.IND, reg=7)

        # Displacement / index / PC-relative: expr(...) or (...) with index
        m = re.match(r"^(.*?)\((.+)\)$", text)
        if m and not text.startswith("("):
            disp_text, inner = m.group(1), m.group(2)
            disp = self.eval_expr(disp_text, line_no, allow_unresolved=False) \
                if disp_text else 0
            inner_up = inner.upper().replace(" ", "")
            if inner_up == "PC":
                return Operand(Mode.PCDISP, disp=int(disp))
            idx = _INDEX_RE.match(inner + ")")
            if idx:
                base = int(idx.group(1))
                kind = idx.group(2).upper()
                num = int(idx.group(3))
                return Operand(
                    Mode.INDEX, reg=base, disp=int(disp), index_reg=(kind, num)
                )
            m2 = re.match(r"^A([0-7])$", inner_up)
            if m2:
                return Operand(Mode.DISP, reg=int(m2.group(1)), disp=int(disp))
            if inner_up == "SP":
                return Operand(Mode.DISP, reg=7, disp=int(disp))
            raise AssemblerError(f"bad operand {text!r}", line_no)

        # (expr).W / (expr).L absolute with explicit size
        m = re.match(r"^\((.+)\)\.([WL])$", text, re.IGNORECASE)
        if m:
            value = self.eval_expr(m.group(1), line_no, allow_unresolved=True)
            mode = Mode.ABS_W if m.group(2).upper() == "W" else Mode.ABS_L
            return Operand(mode, value=value)

        # expr.W absolute short
        m = re.match(r"^(.+)\.W$", text, re.IGNORECASE)
        if m and not _REG_RE.match(m.group(1)):
            value = self.eval_expr(m.group(1), line_no, allow_unresolved=True)
            return Operand(Mode.ABS_W, value=value)

        # bare expression → absolute long
        value = self.eval_expr(text, line_no, allow_unresolved=True)
        return Operand(Mode.ABS_L, value=value)


_REG_LIST_RE = re.compile(
    r"^(?:[DA][0-7](?:-[DA][0-7])?)(?:/(?:[DA][0-7](?:-[DA][0-7])?))*$",
    re.IGNORECASE,
)


def _parse_reg_list(text: str, line_no: int) -> tuple[tuple[str, int], ...] | None:
    """Parse a MOVEM register list like ``D0-D3/A0/A5``; None if not one."""
    text = text.strip()
    if not _REG_LIST_RE.match(text):
        return None
    regs: list[tuple[str, int]] = []
    for part in text.upper().split("/"):
        if "-" in part:
            lo, hi = part.split("-")
            if lo[0] != hi[0]:
                raise AssemblerError(
                    f"register range {part} mixes D and A registers", line_no
                )
            a, b = int(lo[1]), int(hi[1])
            if b < a:
                raise AssemblerError(f"descending register range {part}", line_no)
            regs += [(lo[0], n) for n in range(a, b + 1)]
        else:
            regs.append((part[0], int(part[1])))
    if len(set(regs)) != len(regs):
        raise AssemblerError(f"duplicate register in list {text!r}", line_no)
    return tuple(regs)


def _split_operands(text: str) -> list[str]:
    """Split an operand field on commas not inside parentheses."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


def _strip_comment(line: str) -> str:
    """Remove ``;`` comments (and ``*`` full-line comments)."""
    if line.lstrip().startswith("*"):
        return ""
    out = []
    for ch in line:
        if ch == ";":
            break
        out.append(ch)
    return "".join(out).rstrip()


def assemble(
    source: str,
    *,
    text_origin: int = 0x1000,
    data_origin: int = 0x8000,
    predefined: dict[str, int] | None = None,
) -> AssembledProgram:
    """Assemble ``source`` into an :class:`AssembledProgram`.

    Parameters
    ----------
    text_origin / data_origin:
        Default section origins (overridable with ``.org``).
    predefined:
        Symbols visible to the source (the machine model passes the
        memory-mapped device addresses and per-PE constants this way).
    """
    symbols: dict[str, int] = dict(predefined or {})
    parser = _Parser(symbols)
    program = AssembledProgram(symbols=symbols)

    # ---------------- pass 1: parse, lay out, collect symbols ----------
    parsed: list[Instruction] = []
    section = "text"
    counters = {"text": text_origin, "data": data_origin}
    program.text_start = text_origin
    entry_set = False
    timecat = "other"
    pending_label: str | None = None
    data_chunks: list[tuple[int, bytearray]] = []

    def here() -> int:
        return counters[section]

    def define_label(name: str, line_no: int) -> None:
        if name in symbols:
            raise AssemblerError(f"duplicate symbol {name!r}", line_no)
        symbols[name] = here()

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line.strip():
            continue
        # labels (possibly several, though one is typical)
        while True:
            m = _LABEL_RE.match(line.strip())
            if not m:
                break
            define_label(m.group(1), line_no)
            pending_label = m.group(1)
            line = line.strip()[m.end():]
        stmt = line.strip()
        if not stmt:
            continue

        fields = stmt.split(None, 1)
        word = fields[0]
        rest = fields[1] if len(fields) > 1 else ""

        # ---------------- directives ----------------
        if word.startswith("."):
            d = word.lower()
            if d == ".org":
                counters[section] = int(
                    parser.eval_expr(rest, line_no, allow_unresolved=False)
                )
                if section == "text" and not entry_set:
                    program.text_start = counters["text"]
            elif d == ".text":
                section = "text"
            elif d == ".data":
                section = "data"
            elif d == ".equ":
                parts = _split_operands(rest)
                if len(parts) != 2:
                    raise AssemblerError(".equ needs NAME,VALUE", line_no)
                name = parts[0]
                if name in symbols:
                    raise AssemblerError(f"duplicate symbol {name!r}", line_no)
                symbols[name] = int(
                    parser.eval_expr(parts[1], line_no, allow_unresolved=False)
                )
            elif d == ".even":
                if counters[section] % 2:
                    counters[section] += 1
            elif d == ".timecat":
                cat = rest.strip()
                if cat not in TIME_CATEGORIES:
                    raise AssemblerError(
                        f"unknown .timecat {cat!r}; expected one of "
                        f"{TIME_CATEGORIES}", line_no
                    )
                timecat = cat
            elif d in (".dc.b", ".dc.w", ".dc.l"):
                width = {"b": 1, "w": 2, "l": 4}[d[-1]]
                if section != "data":
                    raise AssemblerError(".dc only allowed in .data", line_no)
                if width > 1 and here() % 2:
                    raise AssemblerError("misaligned .dc", line_no)
                chunk = bytearray()
                for item in _split_operands(rest):
                    val = int(parser.eval_expr(item, line_no, allow_unresolved=False))
                    chunk += (val & ((1 << (8 * width)) - 1)).to_bytes(width, "big")
                data_chunks.append((here(), chunk))
                counters[section] += len(chunk)
            elif d in (".ds.b", ".ds.w", ".ds.l"):
                width = {"b": 1, "w": 2, "l": 4}[d[-1]]
                count = int(parser.eval_expr(rest, line_no, allow_unresolved=False))
                counters[section] += width * count
            else:
                raise AssemblerError(f"unknown directive {word!r}", line_no)
            continue

        # ---------------- instructions ----------------
        if section != "text":
            raise AssemblerError("instruction outside .text", line_no)
        mnemonic, _, size_suffix = word.upper().partition(".")
        size: Size | None = None
        if size_suffix:
            if mnemonic in BRANCHES or mnemonic in DBCC:
                size = None  # .S/.W on branches: encoding fixed at word disp
            else:
                size = Size.from_suffix(size_suffix)
        if mnemonic not in ALL_MNEMONICS:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)
        if size is None and mnemonic not in BRANCHES and mnemonic not in DBCC:
            # Default operation size is word (as in the prototype programs);
            # Scc and TAS are byte operations by definition.
            defaultable = {"MOVE", "MOVEA", "ADD", "SUB", "AND", "OR", "EOR",
                           "CMP", "ADDA", "SUBA", "CMPA", "ADDI", "SUBI",
                           "ANDI", "ORI", "EORI", "CMPI", "ADDQ", "SUBQ",
                           "CLR", "NOT", "NEG", "NEGX", "TST", "LSL", "LSR",
                           "ASL", "ASR", "ROL", "ROR", "ROXL", "ROXR", "EXT",
                           "CMPM", "ADDX", "SUBX", "MOVEM"}
            if mnemonic in defaultable:
                size = Size.WORD
            elif mnemonic == "TAS" or mnemonic in SCC:
                size = Size.BYTE

        operand_texts = _split_operands(rest)
        target: int | str | None = None
        if mnemonic in BRANCHES or mnemonic in DBCC:
            if not operand_texts:
                raise AssemblerError(f"{mnemonic} needs a target", line_no)
            target_text = operand_texts.pop()  # last operand is the target
            target = parser.eval_expr(target_text, line_no, allow_unresolved=True)

        reg_list = None
        movem_store = False
        if mnemonic == "MOVEM":
            if len(operand_texts) != 2:
                raise AssemblerError("MOVEM needs register-list,<ea> or "
                                     "<ea>,register-list", line_no)
            first_list = _parse_reg_list(operand_texts[0], line_no)
            second_list = _parse_reg_list(operand_texts[1], line_no)
            if first_list is not None and second_list is None:
                reg_list, movem_store = first_list, True
                operand_texts = [operand_texts[1]]
            elif second_list is not None and first_list is None:
                reg_list, movem_store = second_list, False
                operand_texts = [operand_texts[0]]
            else:
                raise AssemblerError(
                    "MOVEM needs exactly one register-list operand", line_no
                )

        operands = tuple(
            parser.parse_operand(t, line_no) for t in operand_texts
        )
        instr = Instruction(
            mnemonic=mnemonic,
            size=size,
            operands=operands,
            target=target,
            timecat=timecat,
            address=here(),
            line_no=line_no,
            label=pending_label,
            reg_list=reg_list,
            movem_store=movem_store,
        )
        pending_label = None
        try:
            validate(instr)
        except Exception as exc:
            raise AssemblerError(str(exc), line_no) from exc
        parsed.append(instr)
        if not entry_set:
            program.entry = instr.address
            entry_set = True
        counters["text"] += instr.encoded_bytes()

    program.text_end = counters["text"]

    # ---------------- pass 2: resolve symbols ----------------
    def resolve_operand(op: Operand, line_no: int) -> Operand:
        if isinstance(op.value, str):
            value = parser.eval_expr(op.value, line_no, allow_unresolved=False)
            return dataclasses.replace(op, value=int(value))
        return op

    for instr in parsed:
        new_ops = tuple(resolve_operand(op, instr.line_no) for op in instr.operands)
        instr.operands = new_ops
        if isinstance(instr.target, str):
            instr.target = int(
                parser.eval_expr(instr.target, instr.line_no, allow_unresolved=False)
            )
        program.instructions[instr.address] = instr

    program.data = [(addr, bytes(chunk)) for addr, chunk in data_chunks]
    return program
