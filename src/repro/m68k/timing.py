"""MC68000 instruction timing (M68000UM Section 8 tables).

Every instruction's cost is expressed as a :class:`TimingInfo`:

``cycles``
    total clock cycles assuming zero-wait-state memory (the manual's
    numbers),
``stream_words``
    16-bit *instruction-stream* accesses (opcode, extension words,
    immediates, branch-target prefetches) — these come from the Fetch Unit
    Queue in SIMD mode and from PE main memory in MIMD mode,
``data_reads`` / ``data_writes``
    16-bit operand accesses — always main memory (or a memory-mapped
    device).

The decomposition satisfies ``cycles >= 4 * (stream_words + data_reads +
data_writes)``; the remainder is internal execution time.  Wait states
stretch each access of the corresponding class by a fixed number of cycles,
which is how the paper's "the queue can deliver data with one less wait
state than can the PEs' main memories" becomes a model parameter.

Data-dependent times:

* ``MULU <ea>,Dn`` — ``38 + 2n`` cycles plus EA time, ``n`` = number of 1
  bits in the source (multiplier) operand.
* ``MULS <ea>,Dn`` — ``38 + 2n``, ``n`` = number of 10/01 patterns in the
  source operand with a zero appended at its LSB end.
* shifts — ``6 + 2n`` (word) / ``8 + 2n`` (long), ``n`` = shift count.
* ``Bcc/DBcc`` — taken/not-taken/expired variants.

These formulas are exactly the mechanism the paper studies: in SIMD mode a
broadcast multiply costs the *maximum* of the per-PE times; decoupled into
MIMD streams each PE pays only its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IllegalInstructionError
from repro.m68k.addressing import Mode, ea_timing
from repro.m68k.instructions import (
    ALU_ADDR,
    ALU_IMM,
    ALU_REG,
    BITOPS,
    BRANCHES,
    DBCC,
    EXTENDED,
    Instruction,
    JUMPS,
    MULDIV,
    QUICK,
    SCC,
    SHIFTS,
    SINGLE_REG,
    Size,
    UNARY,
)
from repro.utils.bitops import transitions_count

#: The PASM prototype clock: 8 MHz MC68000s.
CLOCK_HZ = 8_000_000
#: Seconds per clock cycle (125 ns).
CYCLE_SECONDS = 1.0 / CLOCK_HZ


@dataclass(frozen=True)
class TimingInfo:
    """Cost of one instruction execution at zero wait states."""

    cycles: int
    stream_words: int
    data_reads: int = 0
    data_writes: int = 0
    #: Cycles not spent on the bus (ALU/microcode time).  Derived in
    #: ``__post_init__`` — a plain attribute because it is read once per
    #: simulated instruction.
    internal_cycles: int = field(init=False, default=0, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "internal_cycles",
            self.cycles
            - 4 * (self.stream_words + self.data_reads + self.data_writes),
        )

    @property
    def accesses(self) -> int:
        """Total 16-bit bus accesses."""
        return self.stream_words + self.data_reads + self.data_writes

    def with_wait_states(self, ws_stream: float, ws_data: float) -> float:
        """Total cycles with per-access wait states applied."""
        return (
            self.cycles
            + ws_stream * self.stream_words
            + ws_data * (self.data_reads + self.data_writes)
        )

    def __add__(self, other: "TimingInfo") -> "TimingInfo":
        return TimingInfo(
            self.cycles + other.cycles,
            self.stream_words + other.stream_words,
            self.data_reads + other.data_reads,
            self.data_writes + other.data_writes,
        )


def mulu_cycles(multiplier: int) -> int:
    """``MULU`` execution cycles (excluding EA) for a 16-bit multiplier."""
    return 38 + 2 * (multiplier & 0xFFFF).bit_count()

def muls_cycles(multiplier: int) -> int:
    """``MULS`` execution cycles (excluding EA) for a 16-bit multiplier."""
    return 38 + 2 * transitions_count(multiplier, 16)


#: MOVE destination adders, (cycles, extra stream words, data writes),
#: word/byte sizes.
_MOVE_DEST_W = {
    Mode.DREG: (0, 0, 0),
    Mode.AREG: (0, 0, 0),
    Mode.IND: (4, 0, 1),
    Mode.POSTINC: (4, 0, 1),
    Mode.PREDEC: (4, 0, 1),
    Mode.DISP: (8, 1, 1),
    Mode.INDEX: (10, 1, 1),
    Mode.ABS_W: (8, 1, 1),
    Mode.ABS_L: (12, 2, 1),
}
#: MOVE destination adders for long size.
_MOVE_DEST_L = {
    Mode.DREG: (0, 0, 0),
    Mode.AREG: (0, 0, 0),
    Mode.IND: (8, 0, 2),
    Mode.POSTINC: (8, 0, 2),
    Mode.PREDEC: (8, 0, 2),
    Mode.DISP: (12, 1, 2),
    Mode.INDEX: (14, 1, 2),
    Mode.ABS_W: (12, 1, 2),
    Mode.ABS_L: (16, 2, 2),
}

#: LEA effective-address times (cycles, stream words).
_LEA_TIME = {
    Mode.IND: (4, 1),
    Mode.DISP: (8, 2),
    Mode.INDEX: (12, 2),
    Mode.ABS_W: (8, 2),
    Mode.ABS_L: (12, 3),
    Mode.PCDISP: (8, 2),
}

#: JMP times (cycles, stream words).
_JMP_TIME = {
    Mode.IND: (8, 2),
    Mode.DISP: (10, 2),
    Mode.INDEX: (14, 3),
    Mode.ABS_W: (10, 2),
    Mode.ABS_L: (12, 3),
    Mode.PCDISP: (10, 2),
}

#: PEA times (cycles, stream words); all push a long address (2 writes).
_PEA_TIME = {
    Mode.IND: (12, 1),
    Mode.DISP: (16, 2),
    Mode.INDEX: (20, 2),
    Mode.ABS_W: (16, 2),
    Mode.ABS_L: (20, 3),
    Mode.PCDISP: (16, 2),
}

#: JSR times (cycles, stream words); all push a long return address.
_JSR_TIME = {
    Mode.IND: (16, 2),
    Mode.DISP: (18, 2),
    Mode.INDEX: (22, 2),
    Mode.ABS_W: (18, 2),
    Mode.ABS_L: (20, 3),
    Mode.PCDISP: (18, 2),
}


#: The two truly data-dependent multiplies (DIVU/DIVS are modelled with
#: constant worst-case times, so they cache like static instructions).
_MUL = frozenset(("MULU", "MULS"))

#: Families whose timing depends on runtime values/outcomes.  Their
#: timings are memoized per *variant* on the instruction object: MUL by
#: base-cycle count (at most 17 distinct values), shifts by count,
#: branches/DBcc/Scc by outcome.
_DYNAMIC_TIMING = _MUL | SHIFTS | BRANCHES | DBCC | SCC


def instruction_timing(
    instr: Instruction,
    *,
    src_value: int | None = None,
    shift_count: int | None = None,
    branch_taken: bool | None = None,
    dbcc_expired: bool = False,
) -> TimingInfo:
    """Compute the manual timing of one execution of ``instr``.

    Parameters
    ----------
    src_value:
        Runtime source-operand value; required for ``MULU``/``MULS`` (the
        data-dependent multiplier).
    shift_count:
        Runtime shift count for the shift family (register-count form).
    branch_taken:
        Whether a conditional branch was taken (``BRA`` is always taken).
    dbcc_expired:
        For DBcc with the condition false: whether the counter expired
        (loop exit) rather than branching back.

    All timings are memoized on the instruction object — the
    interpreter's hottest path.  Static instructions cache a single
    :class:`TimingInfo`; the data/outcome-dependent families cache one
    per variant (multiplier base cycles, shift count, branch outcome),
    computed on first encounter.
    """
    cached = instr._static_timing_cache
    if cached is not None:
        return cached
    m = instr.mnemonic
    if m not in _DYNAMIC_TIMING:
        t = _instruction_timing_impl(
            instr,
            src_value=src_value,
            shift_count=shift_count,
            branch_taken=branch_taken,
            dbcc_expired=dbcc_expired,
        )
        instr._static_timing_cache = t
        return t
    variants = instr._variant_timing_cache
    if variants is None:
        variants = instr._variant_timing_cache = {}
    if m in _MUL:
        if src_value is None:
            raise IllegalInstructionError(f"{m}: src_value required")
        base = mulu_cycles(src_value) if m == "MULU" else muls_cycles(src_value)
        t = variants.get(base)
        if t is None:
            ea = ea_timing(instr.operands[0], 2)  # word source
            t = TimingInfo(
                cycles=base + ea.cycles,
                stream_words=1 + ea.stream_words,
                data_reads=ea.data_reads,
            )
            variants[base] = t
        return t
    key = shift_count if m in SHIFTS else (branch_taken, dbcc_expired)
    t = variants.get(key)
    if t is None:
        t = _instruction_timing_impl(
            instr,
            src_value=src_value,
            shift_count=shift_count,
            branch_taken=branch_taken,
            dbcc_expired=dbcc_expired,
        )
        variants[key] = t
    return t


def _instruction_timing_impl(
    instr: Instruction,
    *,
    src_value: int | None = None,
    shift_count: int | None = None,
    branch_taken: bool | None = None,
    dbcc_expired: bool = False,
) -> TimingInfo:
    m = instr.mnemonic
    size = instr.size or Size.WORD
    sz = size.bytes
    ops = instr.operands
    is_long = sz == 4

    if m == "MOVE" or m == "MOVEA":
        src, dst = ops
        ea = ea_timing(src, sz)
        dest_table = _MOVE_DEST_L if is_long else _MOVE_DEST_W
        dc, dw_stream, dw = dest_table[dst.mode]
        base = 4
        return TimingInfo(
            cycles=base + ea.cycles + dc,
            stream_words=1 + ea.stream_words + dw_stream,
            data_reads=ea.data_reads,
            data_writes=dw,
        )

    if m == "MOVEQ":
        return TimingInfo(4, 1)

    if m == "LEA":
        cycles, words = _LEA_TIME[ops[0].mode]
        return TimingInfo(cycles, words)

    if m == "EXG":
        return TimingInfo(6, 1)

    if m == "NOP":
        return TimingInfo(4, 1)

    if m == "HALT":
        return TimingInfo(4, 1)

    if m == "RTS":
        return TimingInfo(16, stream_words=2, data_reads=2)

    if m in SINGLE_REG:  # SWAP, EXT
        return TimingInfo(4, 1)

    if m in JUMPS:
        table = _JMP_TIME if m == "JMP" else _JSR_TIME
        cycles, words = table[ops[0].mode]
        writes = 2 if m == "JSR" else 0
        return TimingInfo(cycles, words, data_writes=writes)

    if m == "PEA":
        cycles, words = _PEA_TIME[ops[0].mode]
        return TimingInfo(cycles, words, data_writes=2)

    if m == "LINK":
        return TimingInfo(16, stream_words=2, data_writes=2)

    if m == "UNLK":
        return TimingInfo(12, stream_words=1, data_reads=2)

    if m == "CMPM":
        if is_long:
            return TimingInfo(20, stream_words=1, data_reads=4)
        return TimingInfo(12, stream_words=1, data_reads=2)

    if m in EXTENDED:  # ADDX / SUBX
        if ops[0].mode is Mode.DREG:
            return TimingInfo(8 if is_long else 4, 1)
        if is_long:
            return TimingInfo(30, stream_words=1, data_reads=4, data_writes=2)
        return TimingInfo(18, stream_words=1, data_reads=2, data_writes=1)

    if m in SCC:
        dst = ops[0]
        if dst.mode is Mode.DREG:
            if branch_taken is None:
                raise IllegalInstructionError(f"{m}: condition outcome required")
            return TimingInfo(6 if branch_taken else 4, 1)
        ea = ea_timing(dst, 1)
        return TimingInfo(
            8 + ea.cycles,
            1 + ea.stream_words,
            data_reads=ea.data_reads,
            data_writes=1,
        )

    if m in BITOPS:
        bit_src, dst = ops
        static = bit_src.mode is Mode.IMM
        extra_words = 1 if static else 0
        if dst.mode is Mode.DREG:
            base = {"BTST": 6, "BCHG": 8, "BSET": 8, "BCLR": 10}[m]
            if static:
                base += 4
            return TimingInfo(base, 1 + extra_words)
        ea = ea_timing(dst, 1)
        if m == "BTST":
            base = 8 if static else 4
            return TimingInfo(
                base + ea.cycles,
                1 + extra_words + ea.stream_words,
                data_reads=ea.data_reads,
            )
        base = 12 if static else 8
        return TimingInfo(
            base + ea.cycles,
            1 + extra_words + ea.stream_words,
            data_reads=ea.data_reads,
            data_writes=1,
        )

    if m == "MOVEM":
        n_regs = len(instr.reg_list or ())
        ea_words = instr.encoded_words() - 2  # EA extension words
        per_reg = 8 if is_long else 4
        if instr.movem_store:  # registers → memory
            cycles = 8 + per_reg * n_regs + 4 * ea_words
            return TimingInfo(
                cycles,
                stream_words=2 + ea_words,
                data_writes=(2 if is_long else 1) * n_regs,
            )
        # memory → registers; the hardware's extra prefetch read is folded
        # into internal time so the interpreter's bus-call count matches.
        cycles = 12 + per_reg * n_regs + 4 * ea_words
        return TimingInfo(
            cycles,
            stream_words=2 + ea_words,
            data_reads=(2 if is_long else 1) * n_regs,
        )

    if m in BRANCHES:
        if m == "BSR":
            return TimingInfo(18, stream_words=2, data_writes=2)
        taken = True if m == "BRA" else branch_taken
        if taken is None:
            raise IllegalInstructionError(f"{m}: branch_taken outcome required")
        if taken:
            return TimingInfo(10, 2)
        # Word-displacement encoding: not-taken costs 12(2/0).
        return TimingInfo(12, 2)

    if m in DBCC:
        if branch_taken is None:
            raise IllegalInstructionError(f"{m}: branch_taken outcome required")
        if branch_taken:  # condition false, counter not expired: loop back
            return TimingInfo(10, 2)
        if dbcc_expired:  # condition false, counter expired: fall through
            return TimingInfo(14, 3)
        return TimingInfo(12, 2)  # condition true: fall through

    if m in MULDIV:
        src = ops[0]
        ea = ea_timing(src, 2)  # word source
        if m in ("MULU", "MULS"):
            if src_value is None:
                raise IllegalInstructionError(f"{m}: src_value required")
            base = mulu_cycles(src_value) if m == "MULU" else muls_cycles(src_value)
        elif m == "DIVU":
            # Worst-case constant; documented approximation (DIVU's exact
            # data-dependent time is not exercised by the paper).
            base = 140
        else:  # DIVS
            base = 158
        return TimingInfo(
            cycles=base + ea.cycles,
            stream_words=1 + ea.stream_words,
            data_reads=ea.data_reads,
        )

    if m in SHIFTS:
        if shift_count is None:
            if ops[0].mode is Mode.IMM and isinstance(ops[0].value, int):
                shift_count = ops[0].value
            else:
                raise IllegalInstructionError(f"{m}: shift_count required")
        base = (8 if is_long else 6) + 2 * shift_count
        return TimingInfo(base, instr.encoded_words())

    if m in UNARY:  # CLR, NOT, NEG, TST
        dst = ops[0]
        if m == "TST":
            ea = ea_timing(dst, sz)
            return TimingInfo(
                4 + ea.cycles,
                1 + ea.stream_words,
                data_reads=ea.data_reads,
            )
        if dst.mode is Mode.DREG:
            return TimingInfo(6 if is_long else 4, 1)
        ea = ea_timing(dst, sz)
        base = 10 if m == "TAS" else (12 if is_long else 8)
        # CLR/NOT/NEG/NEGX/TAS on memory: read-modify-write; the EA read
        # is counted in ea, the write in data_writes.
        return TimingInfo(
            base + ea.cycles,
            1 + ea.stream_words,
            data_reads=ea.data_reads,
            data_writes=2 if is_long else 1,
        )

    if m in QUICK:  # ADDQ / SUBQ (#imm in opcode word)
        dst = ops[1]
        if dst.mode is Mode.DREG:
            return TimingInfo(8 if is_long else 4, 1)
        if dst.mode is Mode.AREG:
            return TimingInfo(8, 1)
        ea = ea_timing(dst, sz)
        base = 12 if is_long else 8
        return TimingInfo(
            base + ea.cycles,
            1 + ea.stream_words,
            data_reads=ea.data_reads,
            data_writes=2 if is_long else 1,
        )

    if m in ALU_IMM:  # ADDI/SUBI/ANDI/ORI/EORI/CMPI
        dst = ops[1]
        imm_words = 2 if is_long else 1
        if dst.mode is Mode.DREG:
            if m == "CMPI":
                cycles = 14 if is_long else 8
            else:
                cycles = 16 if is_long else 8
            return TimingInfo(cycles, 1 + imm_words)
        ea = ea_timing(dst, sz)
        if m == "CMPI":
            base = 12 if is_long else 8
            return TimingInfo(
                base + ea.cycles,
                1 + imm_words + ea.stream_words,
                data_reads=ea.data_reads,
            )
        base = 20 if is_long else 12
        return TimingInfo(
            base + ea.cycles,
            1 + imm_words + ea.stream_words,
            data_reads=ea.data_reads,
            data_writes=2 if is_long else 1,
        )

    if m in ALU_ADDR:  # ADDA / SUBA / CMPA
        src = ops[0]
        ea = ea_timing(src, sz)
        if m == "CMPA":
            base = 6
        elif is_long:
            base = 8 if src.mode in (Mode.DREG, Mode.AREG, Mode.IMM) else 6
        else:
            base = 8
        return TimingInfo(
            base + ea.cycles,
            1 + ea.stream_words,
            data_reads=ea.data_reads,
        )

    if m in ALU_REG:  # ADD/SUB/AND/OR/EOR/CMP
        src, dst = ops
        if dst.mode is Mode.DREG:
            ea = ea_timing(src, sz)
            if m == "CMP":
                base = 6 if is_long else 4
            elif is_long:
                base = 8 if src.mode in (Mode.DREG, Mode.AREG, Mode.IMM) else 6
            else:
                base = 4
            return TimingInfo(
                base + ea.cycles,
                1 + ea.stream_words,
                data_reads=ea.data_reads,
            )
        # memory destination (read-modify-write); source is Dn
        ea = ea_timing(dst, sz)
        base = 12 if is_long else 8
        return TimingInfo(
            base + ea.cycles,
            1 + ea.stream_words,
            data_reads=ea.data_reads,
            data_writes=2 if is_long else 1,
        )

    raise IllegalInstructionError(f"no timing rule for {m}")  # pragma: no cover
