"""A simple flat-memory bus for running a single CPU outside the full machine.

Used by unit tests, the serial (SISD) baseline, and the Table 1 raw-MIPS
measurements.  The full PASM PE bus (with SIMD instruction space, network
transfer registers, and DRAM refresh) lives in :mod:`repro.pe`.

Every 16-bit access costs ``4 + wait_states`` cycles; long accesses are two
16-bit accesses, byte accesses one.  Instruction-stream and operand accesses
can be given different wait states — the knob the paper's SIMD fetch
advantage turns.
"""

from __future__ import annotations

from repro.errors import AddressError, BusError
from repro.m68k.assembler import AssembledProgram
from repro.m68k.instructions import Instruction
from repro.sim.localtime import LocalTimeBus


def access_count(size: int) -> int:
    """Number of 16-bit bus accesses for an operand of ``size`` bytes."""
    return 2 if size == 4 else 1


class SimpleBus(LocalTimeBus):
    """Flat RAM + instruction overlay with per-class wait states.

    Parameters
    ----------
    env:
        Simulation environment.
    ram_size:
        Bytes of RAM starting at address 0.
    ws_stream / ws_data:
        Extra cycles per instruction-stream / operand access.
    refresh:
        Optional :class:`repro.memory.dram.RefreshModel`; adds DRAM refresh
        stalls to every RAM access.
    fast_path:
        Conservative local-time execution (see
        :mod:`repro.sim.localtime`).  A SimpleBus has no shared resources,
        so with the fast path on, *every* charge accrues locally and the
        CPU flushes once at halt.  ``None`` consults ``$REPRO_PURE_EVENTS``
        (default: on).
    """

    def __init__(
        self,
        env,
        ram_size: int = 0x2_0000,
        ws_stream: int = 0,
        ws_data: int = 0,
        refresh=None,
        fast_path: bool | None = None,
    ) -> None:
        self.env = env
        self.memory = bytearray(ram_size)
        self.instructions: dict[int, Instruction] = {}
        self.ws_stream = ws_stream
        self.ws_data = ws_data
        self.refresh = refresh
        if refresh is not None:
            self._ref_period, self._ref_steal = refresh.inline_constants()
        else:
            self._ref_period, self._ref_steal = 1, 0
        self.stream_accesses = 0
        self.data_accesses = 0
        self._init_local_clock(fast_path)

    # ------------------------------------------------------------------
    def load_program(self, program: AssembledProgram) -> None:
        """Install a program's instructions and initialized data."""
        self.instructions.update(program.instructions)
        for addr, chunk in program.data:
            if addr + len(chunk) > len(self.memory):
                raise AddressError(
                    f"data chunk at {addr:#x} exceeds RAM size {len(self.memory):#x}"
                )
            self.memory[addr : addr + len(chunk)] = chunk

    # ------------------------------------------------------------------
    def _access_cycles(self, n: int, ws: float) -> float:
        """Access burst cost at the *bus-true* current time.

        The DRAM refresh stall is a pure function of absolute time, so it
        is computed against ``env.now + _local`` (closed form, inlined) —
        identical to the pure-event path, where ``_local`` is always 0.
        """
        cycles = n * (4 + ws)
        steal = self._ref_steal
        if steal:
            phase = (self.env.now + self._local) % self._ref_period
            if phase < steal:
                cycles += steal - phase
        return cycles

    # -- non-generator fast ops (fast path only; None/False = fall back
    # to the generator protocol).  A SimpleBus has no shared resources,
    # so every access succeeds locally when the fast path is on. --------
    def try_fetch_instruction(self, addr: int):
        if not self.fast_path:
            return None
        instr = self.instructions.get(addr)
        if instr is None:
            return None  # generator path raises the BusError
        n = instr.encoded_words()
        self.stream_accesses += n
        self._local += self._access_cycles(n, self.ws_stream)
        self.local_charges += 1
        return instr

    def try_fetch_stream_words(self, addr: int, n: int) -> bool:
        if not self.fast_path:
            return False
        self.stream_accesses += n
        self._local += self._access_cycles(n, self.ws_stream)
        self.local_charges += 1
        return True

    def try_read(self, addr: int, size: int):
        if not self.fast_path:
            return None
        n = access_count(size)
        self.data_accesses += n
        self._local += self._access_cycles(n, self.ws_data)
        self.local_charges += 1
        return self.peek(addr, size)

    def try_write(self, addr: int, value: int, size: int) -> bool:
        if not self.fast_path:
            return False
        n = access_count(size)
        self.data_accesses += n
        self._local += self._access_cycles(n, self.ws_data)
        self.local_charges += 1
        self.poke(addr, value, size)
        return True

    # -- generator protocol ---------------------------------------------
    def fetch_instruction(self, addr: int):
        """Generator: return the Instruction at ``addr``, charging fetches."""
        try:
            instr = self.instructions[addr]
        except KeyError:
            raise BusError(f"no instruction at {addr:#x}") from None
        n = instr.encoded_words()
        self.stream_accesses += n
        cycles = self._access_cycles(n, self.ws_stream)
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            return instr
        yield self.env.sleep(cycles)
        return instr

    def fetch_stream_words(self, addr: int, n: int):
        """Generator: charge ``n`` extra instruction-stream accesses."""
        self.stream_accesses += n
        cycles = self._access_cycles(n, self.ws_stream)
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            return
        yield self.env.sleep(cycles)

    def read(self, addr: int, size: int):
        """Generator: read ``size`` bytes big-endian, charging access time."""
        n = access_count(size)
        self.data_accesses += n
        cycles = self._access_cycles(n, self.ws_data)
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            return self.peek(addr, size)
        yield self.env.sleep(cycles)
        return self.peek(addr, size)

    def write(self, addr: int, value: int, size: int):
        """Generator: write ``size`` bytes big-endian, charging access time."""
        n = access_count(size)
        self.data_accesses += n
        cycles = self._access_cycles(n, self.ws_data)
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            self.poke(addr, value, size)
            return
        yield self.env.sleep(cycles)
        self.poke(addr, value, size)

    def internal(self, cycles: float):
        """Generator: charge non-bus execution time."""
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            return
        yield self.env.sleep(cycles)

    # -- zero-time debug access ----------------------------------------
    def peek(self, addr: int, size: int) -> int:
        if size == 2 and addr % 2:
            raise AddressError(f"misaligned word read at {addr:#x}")
        if addr + size > len(self.memory):
            raise BusError(f"read past end of RAM at {addr:#x}")
        return int.from_bytes(self.memory[addr : addr + size], "big")

    def poke(self, addr: int, value: int, size: int) -> None:
        if size == 2 and addr % 2:
            raise AddressError(f"misaligned word write at {addr:#x}")
        if addr + size > len(self.memory):
            raise BusError(f"write past end of RAM at {addr:#x}")
        self.memory[addr : addr + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "big"
        )
