"""MC68000 processor model.

The PASM prototype used 8 MHz Motorola MC68000 CPUs for both its Processing
Elements and Micro Controllers.  This package models the subset of the
MC68000 needed to run the paper's programs with *faithful documented
timing*, because the paper's central phenomenon — non-deterministic
instruction time — is a direct consequence of the published MC68000 timing
rules:

* ``MULU`` takes ``38 + 2n`` cycles where ``n`` is the number of 1 bits in
  the 16-bit multiplier operand (``MULS``: ``n`` = 01/10 transitions).
* Every instruction's time decomposes into internal cycles plus 4-cycle bus
  accesses; the accesses split into *instruction-stream fetches* (served by
  the Fetch Unit Queue in SIMD mode, by main memory otherwise) and *operand
  accesses* (always main memory / devices), each of which can be stretched
  by per-region wait states.

Public surface: :class:`~repro.m68k.registers.RegisterFile`,
:class:`~repro.m68k.instructions.Instruction`, the
:func:`~repro.m68k.assembler.assemble` two-pass assembler,
:func:`~repro.m68k.timing.instruction_timing`, and the
:class:`~repro.m68k.cpu.CPU` interpreter.
"""

from repro.m68k.addressing import Mode, Operand
from repro.m68k.assembler import AssembledProgram, assemble
from repro.m68k.cpu import CPU, HaltReason
from repro.m68k.instructions import Instruction, Size
from repro.m68k.registers import RegisterFile
from repro.m68k.timing import (
    CLOCK_HZ,
    CYCLE_SECONDS,
    TimingInfo,
    instruction_timing,
    muls_cycles,
    mulu_cycles,
)

__all__ = [
    "Mode",
    "Operand",
    "Instruction",
    "Size",
    "RegisterFile",
    "assemble",
    "AssembledProgram",
    "CPU",
    "HaltReason",
    "TimingInfo",
    "instruction_timing",
    "mulu_cycles",
    "muls_cycles",
    "CLOCK_HZ",
    "CYCLE_SECONDS",
]
