"""MC68000 addressing modes: representation, extension words, and EA timing.

Each operand of an instruction is an :class:`Operand` with a :class:`Mode`.
Two tables drive the timing model:

* :data:`EXTENSION_WORDS` — how many instruction-stream extension words the
  operand occupies (these are fetched from the Fetch Unit Queue in SIMD
  mode, from PE main memory in MIMD mode);
* :func:`ea_timing` — the manual's effective-address calculation times,
  split into cycles / instruction-stream reads / operand (data) reads.

Values are the published MC68000 tables (M68000UM, "Effective Address
Operand Calculation Timing").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache


class Mode(Enum):
    """MC68000 addressing modes (the subset the library uses)."""

    DREG = "Dn"  #: data register direct
    AREG = "An"  #: address register direct
    IND = "(An)"  #: address register indirect
    POSTINC = "(An)+"  #: indirect with post-increment
    PREDEC = "-(An)"  #: indirect with pre-decrement
    DISP = "d16(An)"  #: indirect with 16-bit displacement
    INDEX = "d8(An,Xn)"  #: indirect with index register
    ABS_W = "xxx.W"  #: absolute short
    ABS_L = "xxx.L"  #: absolute long
    PCDISP = "d16(PC)"  #: PC-relative with displacement
    IMM = "#imm"  #: immediate

    @property
    def is_register(self) -> bool:
        return self in (Mode.DREG, Mode.AREG)

    @property
    def is_memory(self) -> bool:
        """True when the operand dereferences memory (not reg / immediate)."""
        return not self.is_register and self is not Mode.IMM

    @property
    def is_alterable(self) -> bool:
        """True when the mode is a legal destination."""
        return self not in (Mode.PCDISP, Mode.IMM)


@dataclass(frozen=True)
class Operand:
    """One instruction operand.

    Attributes
    ----------
    mode:
        The addressing mode.
    reg:
        Register number for register-based modes.
    disp:
        Displacement for :attr:`Mode.DISP` / :attr:`Mode.INDEX` /
        :attr:`Mode.PCDISP`.
    value:
        Immediate value (:attr:`Mode.IMM`) or absolute address
        (:attr:`Mode.ABS_W` / :attr:`Mode.ABS_L`).  May be a string label
        before the assembler's second pass resolves it.
    index_reg:
        ``("D"|"A", number)`` for :attr:`Mode.INDEX`.
    """

    mode: Mode
    reg: int | None = None
    disp: int = 0
    value: int | str | None = None
    index_reg: tuple[str, int] | None = None

    def __str__(self) -> str:
        m = self.mode
        if m is Mode.DREG:
            return f"D{self.reg}"
        if m is Mode.AREG:
            return f"A{self.reg}"
        if m is Mode.IND:
            return f"(A{self.reg})"
        if m is Mode.POSTINC:
            return f"(A{self.reg})+"
        if m is Mode.PREDEC:
            return f"-(A{self.reg})"
        if m is Mode.DISP:
            return f"{self.disp}(A{self.reg})"
        if m is Mode.INDEX:
            kind, num = self.index_reg  # type: ignore[misc]
            return f"{self.disp}(A{self.reg},{kind}{num}.W)"
        if m is Mode.ABS_W:
            return f"({self.value}).W"
        if m is Mode.ABS_L:
            return f"({self.value}).L"
        if m is Mode.PCDISP:
            return f"{self.disp}(PC)"
        if m is Mode.IMM:
            return f"#{self.value}"
        raise AssertionError(m)


def dreg(n: int) -> Operand:
    """Shorthand constructor for a data-register operand."""
    return Operand(Mode.DREG, reg=n)


def areg(n: int) -> Operand:
    """Shorthand constructor for an address-register operand."""
    return Operand(Mode.AREG, reg=n)


def imm(value: int | str) -> Operand:
    """Shorthand constructor for an immediate operand."""
    return Operand(Mode.IMM, value=value)


def absl(value: int | str) -> Operand:
    """Shorthand constructor for an absolute-long operand."""
    return Operand(Mode.ABS_L, value=value)


#: Instruction-stream extension words per mode (word/byte operations).
#: Immediates of long size need one extra word (handled in extension_words).
EXTENSION_WORDS = {
    Mode.DREG: 0,
    Mode.AREG: 0,
    Mode.IND: 0,
    Mode.POSTINC: 0,
    Mode.PREDEC: 0,
    Mode.DISP: 1,
    Mode.INDEX: 1,
    Mode.ABS_W: 1,
    Mode.ABS_L: 2,
    Mode.PCDISP: 1,
    Mode.IMM: 1,
}


def extension_words(operand: Operand, size_bytes: int) -> int:
    """Number of extension words ``operand`` adds to the instruction."""
    n = EXTENSION_WORDS[operand.mode]
    if operand.mode is Mode.IMM and size_bytes == 4:
        n += 1
    return n


# (cycles, total_reads) for effective-address *operand fetch*; writes are
# accounted by the instruction tables.  Keyed by mode, for (byte/word, long).
_EA_TIME = {
    Mode.DREG: ((0, 0), (0, 0)),
    Mode.AREG: ((0, 0), (0, 0)),
    Mode.IND: ((4, 1), (8, 2)),
    Mode.POSTINC: ((4, 1), (8, 2)),
    Mode.PREDEC: ((6, 1), (10, 2)),
    Mode.DISP: ((8, 2), (12, 3)),
    Mode.INDEX: ((10, 2), (14, 3)),
    Mode.ABS_W: ((8, 2), (12, 3)),
    Mode.ABS_L: ((12, 3), (16, 4)),
    Mode.PCDISP: ((8, 2), (12, 3)),
    Mode.IMM: ((4, 1), (8, 2)),
}


@dataclass(frozen=True)
class EATime:
    """Effective-address cost split into stream fetches vs data reads."""

    cycles: int
    stream_words: int  #: extension words (instruction-stream reads)
    data_reads: int  #: operand memory reads (16-bit accesses)


@lru_cache(maxsize=None)
def _ea_time_cached(mode: Mode, is_long: bool) -> EATime:
    """The EA time depends only on (mode, long-or-not): 22 entries total."""
    cycles, reads = _EA_TIME[mode][1 if is_long else 0]
    if mode is Mode.IMM:
        # All immediate reads are instruction-stream fetches.
        stream, data = reads, 0
    else:
        stream = EXTENSION_WORDS[mode]
        data = reads - stream
    assert data >= 0, (mode, is_long)
    return EATime(cycles=cycles, stream_words=stream, data_reads=data)


def ea_timing(operand: Operand, size_bytes: int) -> EATime:
    """Manual EA time for *reading* the operand of the given size.

    The manual's read counts lump instruction-stream extension-word fetches
    with operand data reads; we split them so that per-region wait states
    (Fetch Unit Queue vs PE main memory) can be applied to the right
    accesses.
    """
    return _ea_time_cached(operand.mode, size_bytes == 4)


def ea_address_only_timing(operand: Operand) -> EATime:
    """EA cost when only the *address* is computed (e.g. write-only dest).

    Used for destinations of MOVE/CLR-style instructions where the manual
    folds the address calculation into the instruction's own table; exposed
    for completeness and the macro model's static block analysis.
    """
    full = ea_timing(operand, 2)
    return EATime(
        cycles=full.cycles - 4 * full.data_reads,
        stream_words=full.stream_words,
        data_reads=0,
    )
