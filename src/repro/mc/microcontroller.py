"""Micro Controller: control programs with MC68000-derived timing.

The MC CPU is also an 8 MHz MC68000 executing from its own (DRAM) memory
module.  In SIMD mode it runs all the *control flow* of the algorithm —
loops, index arithmetic, Fetch Unit commands — while the PEs execute the
broadcast data-processing instructions.  Because the Fetch Unit Queue
buffers ahead, this control time overlaps PE computation; the overlap is
the mechanism behind the paper's superlinear SIMD efficiency.

MC programs are written in a small structured DSL (:class:`SetMask`,
:class:`EnqueueBlock`, :class:`EnqueueSync`, :class:`Loop`) rather than a
second assembly language.  *Timing stays honest*: every DSL operation is
costed as the MC68000 instruction sequence it stands for, evaluated with
the same timing tables the PEs use (see :class:`MCCostModel`), including
the MC's own memory wait states and refresh.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fetch_unit.controller import FetchUnitController
from repro.fetch_unit.mask import MaskRegister
from repro.m68k.addressing import absl, dreg, imm
from repro.m68k.instructions import Instruction, Size
from repro.m68k.timing import instruction_timing
from repro.machine.config import PrototypeConfig


# ---------------------------------------------------------------------------
# DSL operations
@dataclass(frozen=True)
class MCOp:
    """Base class for MC control operations."""


@dataclass(frozen=True)
class SetMask(MCOp):
    """Write the Fetch Unit mask register (enable a set of PE slots)."""

    slots: tuple[int, ...]


@dataclass(frozen=True)
class EnqueueBlock(MCOp):
    """Command the Fetch Unit Controller to enqueue a registered block."""

    block: str


@dataclass(frozen=True)
class EnqueueSync(MCOp):
    """Pre-enqueue bare synchronization words (barrier tokens)."""

    count: int


@dataclass(frozen=True)
class Loop(MCOp):
    """A counted loop executed on the MC (DBRA-style).

    ``body`` runs ``count`` times; per-iteration loop control costs the
    DBRA-taken time, the final fall-through the DBRA-expired time, and the
    counter initialization a MOVE-immediate — exactly what the equivalent
    MC68000 code costs.
    """

    count: int
    body: tuple[MCOp, ...]

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError(f"negative loop count {self.count}")


@dataclass(frozen=True)
class WaitController(MCOp):
    """Wait until the Fetch Unit Controller has drained all commands."""


# ---------------------------------------------------------------------------
class MCCostModel:
    """MC68000 cycle costs of the DSL operations.

    Each cost is derived from :func:`~repro.m68k.timing.instruction_timing`
    of the concrete instruction(s) the operation lowers to, with the MC's
    main-memory wait states applied to every access (the MC has no queue to
    fetch from — it *feeds* one).
    """

    def __init__(self, config: PrototypeConfig) -> None:
        self.config = config
        ws = config.ws_main

        def cost(instr: Instruction, **kw) -> float:
            return instruction_timing(instr, **kw).with_wait_states(ws, ws)

        # MOVE.W #imm,(xxx).L — writing a device register.
        self.device_write = cost(
            Instruction("MOVE", Size.WORD, (imm(0), absl(0)))
        )
        # MOVE.W #imm,Dn — loop counter initialization.
        self.loop_setup = cost(Instruction("MOVE", Size.WORD, (imm(0), dreg(0))))
        # DBRA taken (loop back) / expired (fall through).
        dbra = Instruction("DBRA", None, (dreg(0),), target=0)
        self.loop_back = cost(dbra, branch_taken=True)
        self.loop_exit = cost(dbra, branch_taken=False, dbcc_expired=True)

    def op_cost(self, op: MCOp) -> float:
        """MC CPU time to *issue* ``op`` (not counting blocking)."""
        if isinstance(op, SetMask):
            return self.device_write
        if isinstance(op, (EnqueueBlock, EnqueueSync)):
            return self.device_write
        if isinstance(op, WaitController):
            return 0.0
        raise ConfigurationError(f"no cost rule for {op!r}")


# ---------------------------------------------------------------------------
class MicroController:
    """One MC: interprets a control program against its Fetch Unit."""

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        mask: MaskRegister,
        controller: FetchUnitController,
        name: str = "MC",
        batch_charges: bool = False,
    ) -> None:
        self.env = env
        self.config = config
        self.mask = mask
        self.controller = controller
        self.name = name
        self.costs = MCCostModel(config)
        #: Lockstep tier: accrue issue charges and flush them as one
        #: timeout immediately before each observable side effect (mask
        #: write, command submit, drain wait) — same absolute times,
        #: fewer heap events.  ``busy_cycles`` accounting is unchanged.
        self.batch_charges = batch_charges
        self._pending = 0.0
        self.busy_cycles = 0.0  #: MC CPU time spent issuing (≠ blocked time)
        self.blocked_cycles = 0.0  #: time stalled on the command register

    def run_program(self, ops: list[MCOp] | tuple[MCOp, ...]):
        """Generator: execute the control program."""
        yield from self._run_ops(tuple(ops))
        yield from self._flush()

    def _run_ops(self, ops: tuple[MCOp, ...]):
        for op in ops:
            if isinstance(op, Loop):
                yield from self._run_loop(op)
            elif isinstance(op, SetMask):
                yield from self._charge(self.costs.op_cost(op))
                yield from self._flush()
                self.mask.set_enabled(op.slots)
            elif isinstance(op, EnqueueBlock):
                yield from self._charge(self.costs.op_cost(op))
                yield from self._flush()
                t0 = self.env.now
                yield from self.controller.submit_block(op.block)
                self.blocked_cycles += self.env.now - t0
            elif isinstance(op, EnqueueSync):
                yield from self._charge(self.costs.op_cost(op))
                yield from self._flush()
                t0 = self.env.now
                yield from self.controller.submit_sync_words(op.count)
                self.blocked_cycles += self.env.now - t0
            elif isinstance(op, WaitController):
                yield from self._flush()
                yield from self.controller.drained()
            else:
                raise ConfigurationError(f"unknown MC op {op!r}")

    def _run_loop(self, loop: Loop):
        if loop.count == 0:
            return
        yield from self._charge(self.costs.loop_setup)
        for i in range(loop.count):
            yield from self._run_ops(loop.body)
            last = i == loop.count - 1
            yield from self._charge(
                self.costs.loop_exit if last else self.costs.loop_back
            )

    def _charge(self, cycles: float):
        self.busy_cycles += cycles
        if self.batch_charges:
            self._pending += cycles
            return
        yield self.env.timeout(cycles)

    def _flush(self):
        pending = self._pending
        if pending:
            self._pending = 0.0
            yield self.env.timeout(pending)
