"""Micro Controller model: timed control programs driving the Fetch Unit."""

from repro.mc.microcontroller import (
    EnqueueBlock,
    EnqueueSync,
    Loop,
    MCCostModel,
    MCOp,
    MicroController,
    SetMask,
    WaitController,
)

__all__ = [
    "MicroController",
    "MCOp",
    "SetMask",
    "EnqueueBlock",
    "EnqueueSync",
    "Loop",
    "WaitController",
    "MCCostModel",
]
