"""Micro Controllers running real MC68000 code.

The portable way to drive the Fetch Unit is the timed DSL in
:mod:`repro.mc.microcontroller`; this module provides the full-fidelity
alternative: the MC CPU is a real :class:`repro.m68k.cpu.CPU` executing an
assembled control program from its own DRAM, with the Fetch Unit mapped
into its address space:

========== =========== ====================================================
``FUMASK``  write word  set the mask register (bit *i* = i-th PE slot)
``FUCTRL``  write word  command the controller to enqueue block #value
``FUSYNC``  write word  command the controller to enqueue *value* bare
                        sync words (barrier tokens)
``FUWAIT``  read word   returns 0/1 = controller still busy; poll to drain
========== =========== ====================================================

A ``FUCTRL``/``FUSYNC`` write stalls the MC's bus while the controller's
one-deep command register is full — exactly the behaviour the DSL models
with its ``blocked_cycles`` accounting.  Cross-checking the two MC
implementations against each other (see ``tests/test_assembly_mc.py``) is
what validates the DSL's costing.
"""

from __future__ import annotations

from repro.errors import BusError, ConfigurationError
from repro.fetch_unit import FetchUnitController, MaskRegister
from repro.m68k.assembler import AssembledProgram
from repro.m68k.bus import access_count
from repro.m68k.cpu import CPU
from repro.m68k.instructions import Instruction
from repro.machine.config import PrototypeConfig
from repro.memory.module import MemoryModule
from repro.sim.localtime import LocalTimeBus

#: MC-visible device addresses (the MC's map is independent of the PEs').
FU_MASK_ADDR = 0xE0_0000
FU_CTRL_ADDR = 0xE0_0002
FU_SYNC_ADDR = 0xE0_0004
FU_WAIT_ADDR = 0xE0_0006

#: Symbols predefined for MC control programs.
MC_DEVICE_SYMBOLS = {
    "FUMASK": FU_MASK_ADDR,
    "FUCTRL": FU_CTRL_ADDR,
    "FUSYNC": FU_SYNC_ADDR,
    "FUWAIT": FU_WAIT_ADDR,
}

#: MC main-memory size.
MC_RAM_SIZE = 0x4_0000


class MCBus(LocalTimeBus):
    """The MC CPU's bus: DRAM plus the Fetch Unit device registers.

    With ``fast_path`` enabled, DRAM traffic accrues in the local clock
    (see :mod:`repro.sim.localtime`); every Fetch Unit register access is
    a shared interaction and flushes first.
    """

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        mask: MaskRegister,
        controller: FetchUnitController,
        block_ids: dict[int, str],
        name: str = "mcbus",
        fast_path: bool | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.mask = mask
        self.controller = controller
        self.block_ids = dict(block_ids)
        self.name = name
        self.memory = MemoryModule(MC_RAM_SIZE)
        self.instructions: dict[int, Instruction] = {}
        self.device_writes = 0
        self._ref_period, self._ref_steal = config.refresh.inline_constants()
        self._init_local_clock(fast_path)

    def load_program(self, program: AssembledProgram) -> None:
        self.instructions.update(program.instructions)
        for addr, chunk in program.data:
            self.memory.load(addr, chunk)

    # -- timing helpers -------------------------------------------------
    def _ram_cycles(self, n_accesses: int) -> float:
        # Inlined closed form of RefreshModel.stall_cycles at bus-true time.
        cycles = n_accesses * (4 + self.config.ws_main)
        steal = self._ref_steal
        if steal:
            phase = (self.env.now + self._local) % self._ref_period
            if phase < steal:
                cycles += steal - phase
        return cycles

    # -- CPU bus protocol ------------------------------------------------
    # Non-generator fast ops (fast path only; None/False = fall back to
    # the generator protocol).  Only DRAM traffic is private; every Fetch
    # Unit register access goes through the generator path.
    def try_fetch_instruction(self, addr: int):
        if not self.fast_path:
            return None
        instr = self.instructions.get(addr)
        if instr is None:
            return None  # generator path raises the BusError
        self._local += self._ram_cycles(instr.encoded_words())
        self.local_charges += 1
        return instr

    def try_fetch_stream_words(self, addr: int, n: int) -> bool:
        if not self.fast_path:
            return False
        self._local += self._ram_cycles(n)
        self.local_charges += 1
        return True

    def try_read(self, addr: int, size: int):
        if not self.fast_path or addr == FU_WAIT_ADDR:
            return None
        self._local += self._ram_cycles(access_count(size))
        self.local_charges += 1
        return self.memory.read(addr, size)

    def try_write(self, addr: int, value: int, size: int) -> bool:
        if not self.fast_path or addr in (
            FU_MASK_ADDR, FU_CTRL_ADDR, FU_SYNC_ADDR
        ):
            return False
        self._local += self._ram_cycles(access_count(size))
        self.local_charges += 1
        self.memory.write(addr, value, size)
        return True

    def fetch_instruction(self, addr: int):
        try:
            instr = self.instructions[addr]
        except KeyError:
            raise BusError(f"{self.name}: no instruction at {addr:#x}") from None
        n = instr.encoded_words()
        cycles = self._ram_cycles(n)
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            return instr
        yield self.env.sleep(cycles)
        return instr

    def fetch_stream_words(self, addr: int, n: int):
        cycles = self._ram_cycles(n)
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            return
        yield self.env.sleep(cycles)

    def read(self, addr: int, size: int):
        if addr == FU_WAIT_ADDR:
            # Sampling access: flush, then charge through a real event so
            # the busy-flag sample lands at the same event-loop point as
            # on the pure-event path.
            yield from self.sync()
            yield self.env.sleep(4 + self.config.ws_device)
            return 1 if self.controller.outstanding else 0
        n = access_count(size)
        cycles = self._ram_cycles(n)
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            return self.memory.read(addr, size)
        yield self.env.sleep(cycles)
        return self.memory.read(addr, size)

    def write(self, addr: int, value: int, size: int):
        if addr == FU_MASK_ADDR:
            # Charge-then-act: the mask update must happen at the same
            # event-loop point as on the pure-event path.
            yield from self.sync()
            yield self.env.sleep(4 + self.config.ws_device)
            self.mask.set_from_bits(value)
            self.device_writes += 1
            return
        if addr == FU_CTRL_ADDR:
            name = self.block_ids.get(value)
            if name is None:
                raise ConfigurationError(
                    f"{self.name}: FUCTRL write names unknown block id "
                    f"{value}"
                )
            # The write completes when the command register accepts it —
            # the MC stalls while the controller is two blocks behind.
            yield from self.sync()
            yield from self.controller.submit_block(name)
            self.device_writes += 1
            if self.fast_path:
                self._local += 4 + self.config.ws_device
                self.local_charges += 1
                return
            yield self.env.sleep(4 + self.config.ws_device)
            return
        if addr == FU_SYNC_ADDR:
            yield from self.sync()
            yield from self.controller.submit_sync_words(value)
            self.device_writes += 1
            if self.fast_path:
                self._local += 4 + self.config.ws_device
                self.local_charges += 1
                return
            yield self.env.sleep(4 + self.config.ws_device)
            return
        n = access_count(size)
        cycles = self._ram_cycles(n)
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            self.memory.write(addr, value, size)
            return
        yield self.env.sleep(cycles)
        self.memory.write(addr, value, size)

    def internal(self, cycles: float):
        if self.fast_path:
            self._local += cycles
            self.local_charges += 1
            return
        yield self.env.sleep(cycles)


class AssemblyMicroController:
    """An MC whose control program is real assembled MC68000 code."""

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        mask: MaskRegister,
        controller: FetchUnitController,
        block_ids: dict[int, str],
        name: str = "MCasm",
        fast_path: bool | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.bus = MCBus(env, config, mask, controller, block_ids,
                         name=f"{name}.bus", fast_path=fast_path)
        self.cpu = CPU(env, self.bus, name=name)

    def load_program(self, program: AssembledProgram) -> None:
        self.bus.load_program(program)
        self.cpu.reset(pc=program.entry, sp=MC_RAM_SIZE - 4)

    def run_process(self):
        return self.env.process(self.cpu.run(), name=self.name)
