"""Micro Controllers running real MC68000 code.

The portable way to drive the Fetch Unit is the timed DSL in
:mod:`repro.mc.microcontroller`; this module provides the full-fidelity
alternative: the MC CPU is a real :class:`repro.m68k.cpu.CPU` executing an
assembled control program from its own DRAM, with the Fetch Unit mapped
into its address space:

========== =========== ====================================================
``FUMASK``  write word  set the mask register (bit *i* = i-th PE slot)
``FUCTRL``  write word  command the controller to enqueue block #value
``FUSYNC``  write word  command the controller to enqueue *value* bare
                        sync words (barrier tokens)
``FUWAIT``  read word   returns 0/1 = controller still busy; poll to drain
========== =========== ====================================================

A ``FUCTRL``/``FUSYNC`` write stalls the MC's bus while the controller's
one-deep command register is full — exactly the behaviour the DSL models
with its ``blocked_cycles`` accounting.  Cross-checking the two MC
implementations against each other (see ``tests/test_assembly_mc.py``) is
what validates the DSL's costing.
"""

from __future__ import annotations

from repro.errors import BusError, ConfigurationError
from repro.fetch_unit import FetchUnitController, MaskRegister
from repro.m68k.assembler import AssembledProgram
from repro.m68k.bus import access_count
from repro.m68k.cpu import CPU
from repro.m68k.instructions import Instruction
from repro.machine.config import PrototypeConfig
from repro.memory.module import MemoryModule

#: MC-visible device addresses (the MC's map is independent of the PEs').
FU_MASK_ADDR = 0xE0_0000
FU_CTRL_ADDR = 0xE0_0002
FU_SYNC_ADDR = 0xE0_0004
FU_WAIT_ADDR = 0xE0_0006

#: Symbols predefined for MC control programs.
MC_DEVICE_SYMBOLS = {
    "FUMASK": FU_MASK_ADDR,
    "FUCTRL": FU_CTRL_ADDR,
    "FUSYNC": FU_SYNC_ADDR,
    "FUWAIT": FU_WAIT_ADDR,
}

#: MC main-memory size.
MC_RAM_SIZE = 0x4_0000


class MCBus:
    """The MC CPU's bus: DRAM plus the Fetch Unit device registers."""

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        mask: MaskRegister,
        controller: FetchUnitController,
        block_ids: dict[int, str],
        name: str = "mcbus",
    ) -> None:
        self.env = env
        self.config = config
        self.mask = mask
        self.controller = controller
        self.block_ids = dict(block_ids)
        self.name = name
        self.memory = MemoryModule(MC_RAM_SIZE)
        self.instructions: dict[int, Instruction] = {}
        self.device_writes = 0

    def load_program(self, program: AssembledProgram) -> None:
        self.instructions.update(program.instructions)
        for addr, chunk in program.data:
            self.memory.load(addr, chunk)

    # -- timing helpers -------------------------------------------------
    def _ram_cycles(self, n_accesses: int) -> float:
        cycles = n_accesses * (4 + self.config.ws_main)
        cycles += self.config.refresh.stall_cycles(self.env.now, n_accesses)
        return cycles

    # -- CPU bus protocol ------------------------------------------------
    def fetch_instruction(self, addr: int):
        try:
            instr = self.instructions[addr]
        except KeyError:
            raise BusError(f"{self.name}: no instruction at {addr:#x}") from None
        n = instr.encoded_words()
        yield self.env.timeout(self._ram_cycles(n))
        return instr

    def fetch_stream_words(self, addr: int, n: int):
        yield self.env.timeout(self._ram_cycles(n))

    def read(self, addr: int, size: int):
        if addr == FU_WAIT_ADDR:
            yield self.env.timeout(4 + self.config.ws_device)
            return 1 if self.controller.outstanding else 0
        n = access_count(size)
        yield self.env.timeout(self._ram_cycles(n))
        return self.memory.read(addr, size)

    def write(self, addr: int, value: int, size: int):
        if addr == FU_MASK_ADDR:
            yield self.env.timeout(4 + self.config.ws_device)
            self.mask.set_from_bits(value)
            self.device_writes += 1
            return
        if addr == FU_CTRL_ADDR:
            name = self.block_ids.get(value)
            if name is None:
                raise ConfigurationError(
                    f"{self.name}: FUCTRL write names unknown block id "
                    f"{value}"
                )
            # The write completes when the command register accepts it —
            # the MC stalls while the controller is two blocks behind.
            yield from self.controller.submit_block(name)
            yield self.env.timeout(4 + self.config.ws_device)
            self.device_writes += 1
            return
        if addr == FU_SYNC_ADDR:
            yield from self.controller.submit_sync_words(value)
            yield self.env.timeout(4 + self.config.ws_device)
            self.device_writes += 1
            return
        n = access_count(size)
        yield self.env.timeout(self._ram_cycles(n))
        self.memory.write(addr, value, size)

    def internal(self, cycles: float):
        yield self.env.timeout(cycles)


class AssemblyMicroController:
    """An MC whose control program is real assembled MC68000 code."""

    def __init__(
        self,
        env,
        config: PrototypeConfig,
        mask: MaskRegister,
        controller: FetchUnitController,
        block_ids: dict[int, str],
        name: str = "MCasm",
    ) -> None:
        self.env = env
        self.name = name
        self.bus = MCBus(env, config, mask, controller, block_ids,
                         name=f"{name}.bus")
        self.cpu = CPU(env, self.bus, name=name)

    def load_program(self, program: AssembledProgram) -> None:
        self.bus.load_program(program)
        self.cpu.reset(pc=program.entry, sp=MC_RAM_SIZE - 4)

    def run_process(self):
        return self.env.process(self.cpu.run(), name=self.name)
