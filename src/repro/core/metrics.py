"""Speed-up and efficiency, as the paper defines them.

``speedup = T_serial / T_parallel`` and
``efficiency = speedup / p = T_serial / (p · T_parallel)``.

The paper's "superlinear speed-up" is ``efficiency > 1``, achievable in
SIMD mode because (a) PEs fetch broadcast instructions from the static-RAM
Fetch Unit Queue with one less wait state and no DRAM refresh exposure,
and (b) all loop control runs concurrently on the MC, vanishing from the
PE critical path when the queue stays non-empty.
"""

from __future__ import annotations


def speedup(serial_cycles: float, parallel_cycles: float) -> float:
    """T_serial / T_parallel."""
    if serial_cycles <= 0 or parallel_cycles <= 0:
        raise ValueError(
            f"times must be positive (serial={serial_cycles}, "
            f"parallel={parallel_cycles})"
        )
    return serial_cycles / parallel_cycles


def efficiency(serial_cycles: float, parallel_cycles: float, p: int) -> float:
    """T_serial / (p · T_parallel) — the paper's Figure 11/12 quantity."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return speedup(serial_cycles, parallel_cycles) / p


def is_superlinear(serial_cycles: float, parallel_cycles: float, p: int) -> bool:
    """True when the speed-up-to-PE-count ratio exceeds one."""
    return efficiency(serial_cycles, parallel_cycles, p) > 1.0
