"""Core API: the SIMD/MIMD decoupling study.

This package is the library's front door.  It wraps the substrates
(machine simulator + macro timing model) behind one facade,
:class:`~repro.core.study.DecouplingStudy`, and provides the paper's
analysis vocabulary:

* the mode equations (:mod:`~repro.core.equations`):
  ``T_SIMD = Σ_j max_k t_jk`` and ``T_MIMD = max_k Σ_j t_jk``;
* speed-up and efficiency (:mod:`~repro.core.metrics`), with the paper's
  definition ``efficiency = T_serial / (p · T_parallel)`` under which
  SIMD mode exceeds unity ("superlinear speed-up");
* the decoupling crossover finder (:mod:`~repro.core.crossover`): the
  minimum number of variable-execution-time operations per inner loop at
  which asynchronous (S/MIMD) execution beats synchronous (SIMD)
  broadcast.
"""

from repro.core.crossover import CrossoverResult, decoupling_benefit_per_multiply, find_crossover
from repro.core.equations import mimd_time, simd_time, t_mimd_never_exceeds_t_simd
from repro.core.metrics import efficiency, speedup
from repro.core.report import full_report
from repro.core.study import DecouplingStudy, StudyResult

__all__ = [
    "DecouplingStudy",
    "StudyResult",
    "simd_time",
    "mimd_time",
    "t_mimd_never_exceeds_t_simd",
    "speedup",
    "efficiency",
    "find_crossover",
    "CrossoverResult",
    "decoupling_benefit_per_multiply",
    "full_report",
]
