"""The DecouplingStudy facade: run any configuration on either engine.

A study object fixes the machine configuration and data-generation policy,
then answers "how long does (mode, n, p, m) take and where does the time
go?"  Engines:

* ``"micro"`` — the instruction-level machine simulation (exact, produces
  and verifies the numeric product; practical for n ≤ ~32);
* ``"macro"`` — the vectorized performance model (validated against micro;
  used for paper-scale sweeps);
* ``"auto"`` — micro below :attr:`DecouplingStudy.micro_threshold`,
  macro above.

Results are memoised per configuration, so sweeps that revisit the serial
baseline (every efficiency point does) pay for it once.

Every uncached run is delegated to the execution engine
(:mod:`repro.exec`): by default a serial in-process handle that behaves
exactly like the historical single-process path, but a pooled and/or
disk-cached :class:`~repro.exec.ExecutionEngine` can be passed in
(``exec_engine=``) to fan independent runs out across cores and reuse
results between invocations.  :meth:`DecouplingStudy.prefetch` is the
batch entry point exhibits use to declare their whole cell set up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.exec import ExecutionEngine, matmul_spec
from repro.machine import ExecutionMode, PrototypeConfig
from repro.m68k.timing import CYCLE_SECONDS
from repro.core.metrics import efficiency as _efficiency
from repro.core.metrics import speedup as _speedup
from repro.programs import generate_matrices
from repro.utils.rng import DEFAULT_SEED

#: Cells accepted by :meth:`DecouplingStudy.prefetch`:
#: ``(mode, n, p[, added_multiplies[, engine]])``.
PrefetchCell = tuple


@dataclass(frozen=True)
class StudyResult:
    """One timed configuration."""

    mode: ExecutionMode
    n: int
    p: int
    added_multiplies: int
    cycles: float
    breakdown: dict[str, float]
    engine: str
    verified: bool  #: micro runs verify the product matrix; macro is None-ish

    @property
    def seconds(self) -> float:
        return self.cycles * CYCLE_SECONDS


class DecouplingStudy:
    """Reproduction harness for the paper's experiments.

    Parameters
    ----------
    config:
        Machine parameters; defaults to the calibrated prototype.
    seed:
        Data-set seed ("the same data sets were used on all versions").
    b_max:
        Exclusive upper bound of the uniform B values (None = calibrated
        default).
    micro_threshold:
        Largest n the ``auto`` engine runs on the micro simulator.
    exec_engine:
        Execution-engine handle uncached runs are scheduled through.
        ``None`` (the default) uses a private serial in-process engine —
        bit-identical to the historical single-process behaviour.
    """

    def __init__(
        self,
        config: PrototypeConfig | None = None,
        *,
        seed: int = DEFAULT_SEED,
        b_max: int | None = None,
        micro_threshold: int = 16,
        exec_engine: ExecutionEngine | None = None,
    ) -> None:
        self.config = config or PrototypeConfig.calibrated()
        self.seed = seed
        self.b_max = b_max
        self.micro_threshold = micro_threshold
        self.exec_engine = exec_engine
        self._fallback_engine: ExecutionEngine | None = None
        self._cache: dict[tuple, StudyResult] = {}

    @property
    def _engine(self) -> ExecutionEngine:
        if self.exec_engine is not None:
            return self.exec_engine
        if self._fallback_engine is None:
            self._fallback_engine = ExecutionEngine(jobs=1)
        return self._fallback_engine

    # ------------------------------------------------------------------
    def matrices(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        kwargs = {"seed": self.seed}
        if self.b_max is not None:
            kwargs["b_max"] = self.b_max
        return generate_matrices(n, **kwargs)

    def run(
        self,
        mode: ExecutionMode,
        n: int,
        p: int,
        *,
        added_multiplies: int = 0,
        engine: str = "auto",
    ) -> StudyResult:
        """Time one configuration (cached)."""
        if mode is ExecutionMode.SERIAL and p != 1:
            raise ConfigurationError("serial mode requires p == 1")
        engine = self._resolve_engine(n, engine)
        key = (mode, n, p, added_multiplies, engine)
        if key not in self._cache:
            self._cache[key] = self._run_uncached(
                mode, n, p, added_multiplies, engine
            )
        return self._cache[key]

    def _resolve_engine(self, n: int, engine: str) -> str:
        if engine not in ("auto", "micro", "macro"):
            raise ConfigurationError(f"unknown engine {engine!r}")
        if engine == "auto":
            engine = "micro" if n <= self.micro_threshold else "macro"
        return engine

    def _spec(self, mode, n, p, m, engine):
        return matmul_spec(
            mode, n, p, added_multiplies=m, engine=engine,
            seed=self.seed, b_max=self.b_max, config=self.config,
        )

    @staticmethod
    def _payload_result(mode, n, p, m, payload: dict) -> StudyResult:
        return StudyResult(
            mode, n, p, m, payload["cycles"], dict(payload["breakdown"]),
            engine=payload["engine"], verified=payload["verified"],
        )

    def _run_uncached(self, mode, n, p, m, engine) -> StudyResult:
        payload = self._engine.run([self._spec(mode, n, p, m, engine)])[0]
        return self._payload_result(mode, n, p, m, payload)

    # ------------------------------------------------------------------
    def prefetch(self, cells: Iterable[PrefetchCell]) -> int:
        """Batch-compute a set of cells through the execution engine.

        ``cells`` are ``(mode, n, p[, added_multiplies[, engine]])``
        tuples; results land in the study's memo so subsequent
        :meth:`run` calls are free.  On a lazy engine (serial, no cache)
        this is a no-op — on-demand computation is then strictly cheaper,
        and behaviour stays identical to the historical path.  Returns
        the number of jobs submitted to the engine.
        """
        if not self._engine.eager:
            return 0
        ordered: list[tuple[tuple, object]] = []
        seen: set[tuple] = set()
        for cell in cells:
            mode, n, p, *rest = cell
            m = rest[0] if rest else 0
            engine = rest[1] if len(rest) > 1 else "auto"
            if mode is ExecutionMode.SERIAL and p != 1:
                raise ConfigurationError("serial mode requires p == 1")
            engine = self._resolve_engine(n, engine)
            key = (mode, n, p, m, engine)
            if key in self._cache or key in seen:
                continue
            seen.add(key)
            ordered.append((key, self._spec(mode, n, p, m, engine)))
        if not ordered:
            return 0
        payloads = self._engine.run([spec for _, spec in ordered])
        for (key, _), payload in zip(ordered, payloads):
            mode, n, p, m, _engine_name = key
            self._cache[key] = self._payload_result(mode, n, p, m, payload)
        return len(ordered)

    # ------------------------------------------------------------------
    def serial_baseline(self, n: int, *, added_multiplies: int = 0,
                        engine: str = "auto") -> StudyResult:
        return self.run(
            ExecutionMode.SERIAL, n, 1,
            added_multiplies=added_multiplies, engine=engine,
        )

    def speedup(self, mode: ExecutionMode, n: int, p: int,
                *, added_multiplies: int = 0, engine: str = "auto") -> float:
        """T_serial / T_mode for one configuration."""
        ser = self.serial_baseline(n, added_multiplies=added_multiplies,
                                   engine=engine)
        par = self.run(mode, n, p, added_multiplies=added_multiplies,
                       engine=engine)
        return _speedup(ser.cycles, par.cycles)

    def efficiency(self, mode: ExecutionMode, n: int, p: int,
                   *, added_multiplies: int = 0,
                   engine: str = "auto") -> float:
        """T_serial / (p · T_mode) — the paper's efficiency."""
        ser = self.serial_baseline(n, added_multiplies=added_multiplies,
                                   engine=engine)
        par = self.run(mode, n, p, added_multiplies=added_multiplies,
                       engine=engine)
        return _efficiency(ser.cycles, par.cycles, p)
