"""The DecouplingStudy facade: run any configuration on either engine.

A study object fixes the machine configuration and data-generation policy,
then answers "how long does (mode, n, p, m) take and where does the time
go?"  Engines:

* ``"micro"`` — the instruction-level machine simulation (exact, produces
  and verifies the numeric product; practical for n ≤ ~32);
* ``"macro"`` — the vectorized performance model (validated against micro;
  used for paper-scale sweeps);
* ``"auto"`` — micro below :attr:`DecouplingStudy.micro_threshold`,
  macro above.

Results are memoised per configuration, so sweeps that revisit the serial
baseline (every efficiency point does) pay for it once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.m68k.timing import CYCLE_SECONDS
from repro.core.metrics import efficiency as _efficiency
from repro.core.metrics import speedup as _speedup
from repro.programs import build_matmul, expected_product, generate_matrices
from repro.programs.loader import run_matmul
from repro.timing_model import predict_matmul
from repro.utils.rng import DEFAULT_SEED


@dataclass(frozen=True)
class StudyResult:
    """One timed configuration."""

    mode: ExecutionMode
    n: int
    p: int
    added_multiplies: int
    cycles: float
    breakdown: dict[str, float]
    engine: str
    verified: bool  #: micro runs verify the product matrix; macro is None-ish

    @property
    def seconds(self) -> float:
        return self.cycles * CYCLE_SECONDS


class DecouplingStudy:
    """Reproduction harness for the paper's experiments.

    Parameters
    ----------
    config:
        Machine parameters; defaults to the calibrated prototype.
    seed:
        Data-set seed ("the same data sets were used on all versions").
    b_max:
        Exclusive upper bound of the uniform B values (None = calibrated
        default).
    micro_threshold:
        Largest n the ``auto`` engine runs on the micro simulator.
    """

    def __init__(
        self,
        config: PrototypeConfig | None = None,
        *,
        seed: int = DEFAULT_SEED,
        b_max: int | None = None,
        micro_threshold: int = 16,
    ) -> None:
        self.config = config or PrototypeConfig.calibrated()
        self.seed = seed
        self.b_max = b_max
        self.micro_threshold = micro_threshold
        self._cache: dict[tuple, StudyResult] = {}

    # ------------------------------------------------------------------
    def matrices(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        kwargs = {"seed": self.seed}
        if self.b_max is not None:
            kwargs["b_max"] = self.b_max
        return generate_matrices(n, **kwargs)

    def run(
        self,
        mode: ExecutionMode,
        n: int,
        p: int,
        *,
        added_multiplies: int = 0,
        engine: str = "auto",
    ) -> StudyResult:
        """Time one configuration (cached)."""
        if mode is ExecutionMode.SERIAL and p != 1:
            raise ConfigurationError("serial mode requires p == 1")
        if engine not in ("auto", "micro", "macro"):
            raise ConfigurationError(f"unknown engine {engine!r}")
        if engine == "auto":
            engine = "micro" if n <= self.micro_threshold else "macro"
        key = (mode, n, p, added_multiplies, engine)
        if key not in self._cache:
            self._cache[key] = self._run_uncached(
                mode, n, p, added_multiplies, engine
            )
        return self._cache[key]

    def _run_uncached(self, mode, n, p, m, engine) -> StudyResult:
        a, b = self.matrices(n)
        if engine == "macro":
            pred = predict_matmul(
                mode, self.config, n, p, added_multiplies=m, b=b
            )
            return StudyResult(
                mode, n, p, m, pred.cycles, dict(pred.breakdown),
                engine="macro", verified=False,
            )
        machine = PASMMachine(self.config, partition_size=p)
        bundle = build_matmul(
            mode, n, p, added_multiplies=m,
            device_symbols=self.config.device_symbols(),
        )
        run = run_matmul(machine, bundle, a, b)
        verified = bool(np.array_equal(run.product, expected_product(a, b)))
        if not verified:
            raise ConfigurationError(
                f"micro run {mode.value} n={n} p={p} produced a wrong product"
            )
        return StudyResult(
            mode, n, p, m, run.result.cycles, run.result.breakdown(),
            engine="micro", verified=True,
        )

    # ------------------------------------------------------------------
    def serial_baseline(self, n: int, *, added_multiplies: int = 0,
                        engine: str = "auto") -> StudyResult:
        return self.run(
            ExecutionMode.SERIAL, n, 1,
            added_multiplies=added_multiplies, engine=engine,
        )

    def speedup(self, mode: ExecutionMode, n: int, p: int,
                *, added_multiplies: int = 0, engine: str = "auto") -> float:
        """T_serial / T_mode for one configuration."""
        ser = self.serial_baseline(n, added_multiplies=added_multiplies,
                                   engine=engine)
        par = self.run(mode, n, p, added_multiplies=added_multiplies,
                       engine=engine)
        return _speedup(ser.cycles, par.cycles)

    def efficiency(self, mode: ExecutionMode, n: int, p: int,
                   *, added_multiplies: int = 0,
                   engine: str = "auto") -> float:
        """T_serial / (p · T_mode) — the paper's efficiency."""
        ser = self.serial_baseline(n, added_multiplies=added_multiplies,
                                   engine=engine)
        par = self.run(mode, n, p, added_multiplies=added_multiplies,
                       engine=engine)
        return _efficiency(ser.cycles, par.cycles, p)
