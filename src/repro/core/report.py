"""One-call full study report.

:func:`full_report` regenerates every exhibit, replicates the crossover
over data seeds, spot-checks the macro model against the instruction-level
engine, and renders a single self-contained text document — the artifact
you would attach to a reproduction claim.
"""

from __future__ import annotations

import io
from dataclasses import asdict

from repro.core.study import DecouplingStudy
from repro.errors import PEFailStopError
from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig


def _config_section(config: PrototypeConfig) -> str:
    out = io.StringIO()
    out.write("machine configuration (calibrated prototype)\n")
    out.write("-" * 44 + "\n")
    fields = asdict(config)
    fields["refresh"] = (
        f"period={config.refresh.period}, steal={config.refresh.steal}"
    )
    for key in sorted(fields):
        out.write(f"  {key:28s} = {fields[key]}\n")
    return out.getvalue()


def _engine_check_section(study: DecouplingStudy) -> str:
    """Spot-check the macro model against the micro engine at n=16."""
    out = io.StringIO()
    out.write("cross-engine spot check (n=16, p=4)\n")
    out.write("-" * 44 + "\n")
    out.write(f"{'mode':8s} {'micro (cyc)':>12s} {'macro (cyc)':>12s} "
              f"{'error':>8s}\n")
    study.prefetch(
        (mode, 16, 1 if mode is ExecutionMode.SERIAL else 4, 0, engine)
        for mode in ExecutionMode for engine in ("micro", "macro")
    )
    for mode in ExecutionMode:
        p = 1 if mode is ExecutionMode.SERIAL else 4
        micro = study.run(mode, 16, p, engine="micro")
        macro = study.run(mode, 16, p, engine="macro")
        err = (macro.cycles - micro.cycles) / micro.cycles
        out.write(
            f"{mode.label:8s} {micro.cycles:12.0f} {macro.cycles:12.0f} "
            f"{err:+8.2%}\n"
        )
    out.write("(every micro run's product matrix verified against numpy)\n")
    return out.getvalue()


def _fault_section(study: DecouplingStudy) -> str:
    """Demonstrate fail-stop detection: a dead PE must not hang the run.

    Runs the n=16, p=4 S/MIMD matmul with one partition PE fail-stopped
    at cycle 0 and shows the structured error the barrier raises instead
    of deadlocking.  (The network side of fault tolerance — the ESC's
    single-fault guarantee — is exercised exhaustively by the ext-faults
    exhibit below.)
    """
    from repro.faults import FaultPlan, PEFailStop
    from repro.machine.partition import Partition
    from repro.programs import build_matmul, generate_matrices
    from repro.programs.loader import run_matmul

    out = io.StringIO()
    out.write("fail-stop detection check (n=16, p=4, PE dead at t=0)\n")
    out.write("-" * 44 + "\n")
    victim = Partition(study.config, 4).physical_pe(1)
    plan = FaultPlan(failstops=(PEFailStop(pe=victim, at=0.0),),
                     failstop_timeout=30_000.0)
    machine = PASMMachine(study.config, partition_size=4, fault_plan=plan)
    bundle = build_matmul(ExecutionMode.SMIMD, 16, 4,
                          device_symbols=study.config.device_symbols())
    a, b = generate_matrices(16, seed=study.seed)
    try:
        run_matmul(machine, bundle, a, b)
        out.write("  UNEXPECTED: run completed despite the dead PE\n")
    except PEFailStopError as exc:
        out.write(f"  detected fail-stopped PE(s) {list(exc.pes)} at "
                  f"cycle {exc.detected_at:.0f} (timeout {exc.timeout:.0f})\n")
        out.write("  run terminated with a structured error, not a hang\n")
    return out.getvalue()


def full_report(
    study: DecouplingStudy | None = None,
    *,
    seeds: tuple[int, ...] = (1, 2, 19880815),
    include_extensions: bool = True,
) -> str:
    """Produce the complete reproduction report as text."""
    from repro.experiments.runner import EXPERIMENTS
    from repro.experiments.sweeps import crossover_confidence

    study = study or DecouplingStudy()
    out = io.StringIO()
    out.write(
        "Reproduction report: 'Non-Deterministic Instruction Time "
        "Experiments\non the PASM System Prototype' (ICPP 1988) on the "
        "simulated prototype\n"
    )
    out.write("=" * 72 + "\n\n")
    out.write(_config_section(study.config))
    out.write("\n")
    out.write(_engine_check_section(study))
    out.write("\n")
    out.write(_fault_section(study))
    out.write("\n")

    conf = crossover_confidence(study.config, seeds=seeds,
                                exec_engine=study.exec_engine)
    out.write("headline result replication\n")
    out.write("-" * 44 + "\n")
    out.write(f"  {conf}\n  (paper: approximately 14)\n\n")

    for name, runner in EXPERIMENTS.items():
        if not include_extensions and name.startswith("ext-"):
            continue
        result = runner(study)
        out.write(result.render(plot=False))
        out.write("\n\n" + "=" * 72 + "\n\n")
    return out.getvalue()
