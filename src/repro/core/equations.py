"""The paper's execution-time equations (Section 5.2).

For K PEs each executing J instructions, with instruction j on PE k
taking ``t[j, k]`` cycles:

* SIMD mode synchronizes at *every* instruction, so
  ``T_SIMD = Σ_j max_k t[j, k]``;
* MIMD mode lets every PE run free, so
  ``T_MIMD = max_k Σ_j t[j, k]``.

"In general, T_MIMD ≤ T_SIMD" — proved here as a checked property (it is
the rearrangement/max-sum inequality) and exploited by the S/MIMD hybrid.
"""

from __future__ import annotations

import numpy as np


def _validate(times: np.ndarray) -> np.ndarray:
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 2:
        raise ValueError(
            f"instruction-time matrix must be (J instructions, K PEs); "
            f"got shape {t.shape}"
        )
    if np.any(t < 0):
        raise ValueError("instruction times must be non-negative")
    return t


def simd_time(times: np.ndarray) -> float:
    """``T_SIMD``: the sum over instructions of the worst PE's time."""
    t = _validate(times)
    return float(t.max(axis=1).sum())


def mimd_time(times: np.ndarray) -> float:
    """``T_MIMD``: the worst PE's total time."""
    t = _validate(times)
    return float(t.sum(axis=0).max())


def t_mimd_never_exceeds_t_simd(times: np.ndarray) -> bool:
    """The paper's inequality; holds for every time matrix."""
    return mimd_time(times) <= simd_time(times) + 1e-9


def decoupling_gain(times: np.ndarray) -> float:
    """``T_SIMD − T_MIMD``: what full decoupling saves for this workload."""
    return simd_time(times) - mimd_time(times)
