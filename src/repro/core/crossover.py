"""The decoupling crossover: the paper's central question.

"To determine the amount of asynchronous execution needed to achieve a
benefit when executing a portion of a computation asynchronously in MIMD
mode, additional multiplication operations were added to the innermost
loop" (Section 8).  SIMD starts ahead (faster fetches + hidden control
flow); every added variable-time multiply charges SIMD the *max* over PEs
but S/MIMD only each PE's own time.  The crossover is where the lines
meet — ≈14 added multiplies at n=64, p=4 on the prototype.

Also provided: a first-order analytic estimate of the benefit per added
multiply from the multiplier-bit statistics, used by the analysis module
and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError
from repro.machine import ExecutionMode
from repro.core.study import DecouplingStudy
from repro.timing_model.mulstats import max_ones_gap


@dataclass(frozen=True)
class CrossoverResult:
    """Outcome of a crossover search."""

    n: int
    p: int
    crossover: float  #: fractional added-multiply count where curves meet
    sweep: tuple[tuple[int, float, float], ...]  #: (m, T_simd, T_smimd)

    @property
    def found(self) -> bool:
        return not np.isnan(self.crossover)


def find_crossover(
    study: DecouplingStudy,
    n: int = 64,
    p: int = 4,
    *,
    max_multiplies: int = 40,
    engine: str = "macro",
    modes: tuple[ExecutionMode, ExecutionMode] = (
        ExecutionMode.SIMD,
        ExecutionMode.SMIMD,
    ),
) -> CrossoverResult:
    """Sweep added multiplies until the second mode beats the first.

    Returns the linearly interpolated crossover point, with the full sweep
    attached for plotting (the paper's Figure 7).
    """
    first, second = modes
    # Declare the full sweep up front: on a pooled/cached engine every
    # cell computes concurrently; on the default lazy engine this no-ops
    # and cells are computed on demand as before.
    study.prefetch(
        (mode, n, p, m, engine)
        for m in range(max_multiplies + 1)
        for mode in (first, second)
    )
    sweep = []
    crossover = float("nan")
    prev_diff = None
    for m in range(max_multiplies + 1):
        t1 = study.run(first, n, p, added_multiplies=m, engine=engine).cycles
        t2 = study.run(second, n, p, added_multiplies=m, engine=engine).cycles
        sweep.append((m, t1, t2))
        diff = t2 - t1  # positive while the first mode is ahead
        if prev_diff is not None and prev_diff > 0 >= diff:
            crossover = (m - 1) + prev_diff / (prev_diff - diff)
            break
        prev_diff = diff
    return CrossoverResult(n=n, p=p, crossover=crossover, sweep=tuple(sweep))


def decoupling_benefit_per_multiply(
    bits: int, p: int, *, fetch_penalty_cycles: float = 1.0
) -> float:
    """First-order benefit (cycles) of decoupling one added multiply.

    ``2 · (E[max_p ones] − E[ones]) − fetch_penalty``: the broadcast
    multiply pays the slowest PE's data-dependent time while the
    asynchronous one pays its own, minus the extra instruction-fetch cost
    of executing the multiply from main memory instead of the queue.
    A positive value means decoupling eventually wins; the crossover is
    roughly (SIMD's fixed per-iteration advantage) / (this benefit).
    """
    if bits < 1:
        raise CalibrationError(f"need at least one random bit, got {bits}")
    return 2.0 * max_ones_gap(bits, p) - fetch_penalty_cycles
