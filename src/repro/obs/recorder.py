"""Flight recorder: a bounded ring of recent events, dumped on incident.

Logs scroll away and metrics aggregate; what an incident investigation
needs is the *last few thousand raw events* — which requests were in
flight, which got shed, when the pool rebuilt, which alert flipped —
frozen at the moment things went wrong.  :class:`FlightRecorder` keeps
exactly that: a fixed-size deque of structured events that costs one
append per event while healthy, and is serialized into a JSON *incident
bundle* when something pages.

Events carry whatever correlation fields the caller has
(``request_id``, ``trace_id``, job keys), so a bundled request can be
followed with ``pasm-trace``/``grep`` exactly like a live one.

Dump triggers (wired in :mod:`repro.serve.app`):

* ``SIGQUIT`` — operator-requested snapshot of a live process;
* an SLO page — the evaluator's ``on_fire`` hook;
* broker pool crashes — the strongest "something is wrong" signal the
  serving layer has.

Dumps are rate-limited (``min_dump_interval_s``): a page storm
produces one bundle per window, not one per page.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

#: Default bound on retained events.
DEFAULT_CAPACITY = 2048

#: Default directory incident bundles land in.
DEFAULT_DUMP_DIR = ".pasm-flightrec"

#: Environment variable overriding the dump directory.
DUMP_DIR_ENV = "REPRO_FLIGHTREC_DIR"


class FlightRecorder:
    """Thread-safe bounded event ring with JSON incident dumps.

    Parameters
    ----------
    capacity:
        Ring bound; the oldest events fall off.
    dump_dir:
        Where incident bundles are written (created on first dump).
        ``None`` resolves ``$REPRO_FLIGHTREC_DIR`` then the default.
    instance:
        Fleet identity stamped into every bundle.
    min_dump_interval_s:
        Floor between dumps; rate-limited dumps return ``None``.
    clock:
        Wall-clock source (injectable for tests).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 dump_dir: str | None = None, instance: str = "",
                 min_dump_interval_s: float = 10.0,
                 clock=time.time) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dump_dir = (dump_dir
                         or os.environ.get(DUMP_DIR_ENV, "").strip()
                         or DEFAULT_DUMP_DIR)
        self.instance = instance
        self.min_dump_interval_s = min_dump_interval_s
        self._clock = clock
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._last_dump: float | None = None
        self.events_recorded = 0
        self.dumps_written = 0

    # ------------------------------------------------------------------
    def record(self, kind: str, **fields) -> None:
        """Append one event; constant-time, never raises on full."""
        event = {"ts": self._clock(), "kind": kind}
        event.update({k: v for k, v in fields.items() if v is not None})
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._events.append(event)
            self.events_recorded += 1

    def snapshot(self) -> list[dict]:
        """The retained events, oldest first (copies, safe to mutate)."""
        with self._lock:
            return [dict(e) for e in self._events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # ------------------------------------------------------------------
    def bundle(self, reason: str, *, extra: dict | None = None) -> dict:
        """The incident document (no file IO): events + context."""
        events = self.snapshot()
        doc = {
            "bundle": "pasm-flight-recorder",
            "reason": reason,
            "ts": self._clock(),
            "instance": self.instance,
            "pid": os.getpid(),
            "capacity": self.capacity,
            "events_recorded": self.events_recorded,
            "events": events,
        }
        if extra:
            doc["context"] = extra
        return doc

    def dump(self, reason: str, *, extra: dict | None = None,
             force: bool = False) -> str | None:
        """Write one incident bundle; returns its path.

        Returns ``None`` when rate-limited (unless ``force``, the
        SIGQUIT path — an operator asking twice means it).
        """
        now = self._clock()
        with self._lock:
            if (not force and self._last_dump is not None
                    and now - self._last_dump < self.min_dump_interval_s):
                return None
            self._last_dump = now
        doc = self.bundle(reason, extra=extra)
        os.makedirs(self.dump_dir, exist_ok=True)
        safe_reason = "".join(
            c if c.isalnum() or c in "-_" else "-" for c in reason
        )
        name = f"flightrec-{int(now * 1000)}-{safe_reason}.json"
        path = os.path.join(self.dump_dir, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, sort_keys=True, indent=1, default=str)
            handle.write("\n")
        os.replace(tmp, path)
        with self._lock:
            self.dumps_written += 1
        return path
