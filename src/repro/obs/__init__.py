"""repro.obs — end-to-end observability: correlation IDs, span tracing,
Chrome trace-event export, structured logging, and fleet health.

See ``docs/OBSERVABILITY.md`` for the tracing model and how the pieces
connect: :mod:`repro.obs.ids` (W3C-style identifiers),
:mod:`repro.obs.tracer` (recorder + Perfetto export),
:mod:`repro.obs.simtrace` (per-PE simulated-time lanes),
:mod:`repro.obs.schema` (trace validation), :mod:`repro.obs.jsonlog`
(structured serve logs), :mod:`repro.obs.timeseries` (ring-buffer
metric history behind ``GET /v1/timeseries``), :mod:`repro.obs.slo`
(multi-window burn-rate alerting behind ``GET /v1/alerts``),
:mod:`repro.obs.recorder` (flight-recorder incident bundles), and
:mod:`repro.obs.procstats` (``pasm_process_*`` self-metrics).
"""

from repro.obs.ids import (
    format_traceparent,
    new_request_id,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.jsonlog import FORMATS as LOG_FORMATS
from repro.obs.jsonlog import StructuredLogger
from repro.obs.procstats import ProcessStats
from repro.obs.recorder import FlightRecorder
from repro.obs.schema import validate_chrome_trace
from repro.obs.slo import SLO, AlertState, SLOEvaluator, default_slos
from repro.obs.simtrace import (
    arm_machine,
    collect_machine,
    current_job_trace,
    machine_events,
    tracing_job,
)
from repro.obs.timeseries import TimeseriesStore, aggregate_timeseries
from repro.obs.tracer import (
    DEFAULT_MAX_EVENTS,
    TraceContext,
    Tracer,
    export_chrome,
    instant_event,
    lanes_from_chrome,
    span_event,
)

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "LOG_FORMATS",
    "AlertState",
    "FlightRecorder",
    "ProcessStats",
    "SLO",
    "SLOEvaluator",
    "StructuredLogger",
    "TimeseriesStore",
    "TraceContext",
    "Tracer",
    "aggregate_timeseries",
    "arm_machine",
    "collect_machine",
    "current_job_trace",
    "default_slos",
    "export_chrome",
    "format_traceparent",
    "instant_event",
    "lanes_from_chrome",
    "machine_events",
    "new_request_id",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "span_event",
    "tracing_job",
    "validate_chrome_trace",
]
