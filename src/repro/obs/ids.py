"""Correlation identifiers: W3C-style trace/span IDs and request IDs.

The serving layer correlates one logical piece of work across process
boundaries with two identifiers:

* a **request ID** (``X-Request-ID`` header) names one HTTP exchange —
  clients quote it when reporting shed load, and every access-log line
  carries it;
* a **trace ID** (the ``traceparent`` header, `W3C Trace Context`_
  ``00-<trace-id>-<parent-id>-<flags>`` format) names one end-to-end
  operation — it survives dedup (N requests attach to one job, all
  sharing the computing submission's trace) and the spawn boundary into
  pool workers, and it is stamped into every exported Chrome trace.

Only the header *syntax* of W3C Trace Context is implemented (32-hex
trace ID, 16-hex span ID, version ``00``); there is no sampling logic —
tracing is a service-level switch, not a per-request decision.

.. _W3C Trace Context: https://www.w3.org/TR/trace-context/
"""

from __future__ import annotations

import secrets

#: ``traceparent`` version implemented (the only one defined so far).
TRACEPARENT_VERSION = "00"

#: Flags octet: ``01`` = sampled.  Tracing here is all-or-nothing, so
#: every ID this module mints is marked sampled.
TRACEPARENT_FLAGS = "01"

_HEX = set("0123456789abcdef")


def new_trace_id() -> str:
    """A fresh 128-bit trace ID as 32 lowercase hex digits (non-zero)."""
    while True:
        tid = secrets.token_hex(16)
        if any(c != "0" for c in tid):  # all-zero is invalid per the spec
            return tid


def new_span_id() -> str:
    """A fresh 64-bit span ID as 16 lowercase hex digits (non-zero)."""
    while True:
        sid = secrets.token_hex(8)
        if any(c != "0" for c in sid):
            return sid


def new_request_id() -> str:
    """A fresh request ID (``req-`` + 16 hex digits)."""
    return "req-" + secrets.token_hex(8)


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a ``traceparent`` header value."""
    return (f"{TRACEPARENT_VERSION}-{trace_id}-{span_id}-"
            f"{TRACEPARENT_FLAGS}")


def _is_hex(text: str, length: int) -> bool:
    return len(text) == length and all(c in _HEX for c in text) \
        and any(c != "0" for c in text)


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """Parse a ``traceparent`` header into ``(trace_id, parent_span_id)``.

    Returns ``None`` for anything malformed — an invalid header from a
    client must start a fresh trace, never crash the request.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id = parts[0], parts[1], parts[2]
    if version == "ff" or len(version) != 2 or not all(
        c in _HEX or c == "0" for c in version
    ):
        return None
    if not _is_hex(trace_id, 32) or not _is_hex(span_id, 16):
        return None
    return trace_id, span_id
