"""Simulated-time trace collection: per-PE lanes from a PASM machine.

This is the bridge between the span tracer and the simulation engine.
A traced job's :class:`~repro.obs.tracer.TraceContext` rides inside the
:class:`~repro.exec.SimJobSpec` across the ``spawn`` pool boundary;
:func:`tracing_job` re-seeds a module-global recorder from it inside
the worker, and the job-execution code arms each
:class:`~repro.machine.pasm.PASMMachine` it builds
(:func:`arm_machine`) and harvests its lanes after the run
(:func:`collect_machine`).

Cost discipline: every hook here is a no-op returning immediately when
no job trace is active, so the untraced path — the default, gated by
``perf_smoke.py`` — pays one module-global ``None`` check per machine,
not per instruction.  The per-instruction cost of tracing itself is
the pre-existing ``CPU.trace`` record list plus the PE-bus wait-span
list; lane construction happens once, after the run.

Lane model (all timestamps in **simulated cycles**, exported 1 cycle =
1 µs):

* ``PE <i>`` — instruction *category runs*: contiguous
  :class:`~repro.m68k.cpu.InstructionRecord` s with the same ``timecat``
  (mult/comm/control/sync/other) coalesce into one span carrying the
  instruction count and manual-cycle total.  A run breaks where the
  next record does not start where the previous ended — i.e. where the
  PE stalled — so gaps in this lane line up with the waits lane below.
* ``PE <i> waits`` — blocking intervals recorded by the PE bus at its
  shared-resource interaction points: ``queue_wait`` (SIMD fetch from
  an empty Fetch Unit Queue), ``barrier_wait`` (data read from SIMD
  space), ``net_rx_wait`` / ``net_tx_wait`` (transfer-register
  handshakes).  In a SIMD run these render the paper's max-over-PEs
  effect directly: every PE's fetch waits on the slowest sibling.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.tracer import TraceContext, span_event

#: Ceiling on coalesced spans harvested per machine; beyond it the lane
#: ends with a ``truncated`` instant rather than growing unboundedly.
DEFAULT_MAX_SPANS = 100_000

_STATE = None  # the active JobTrace, or None (tracing disabled)


class JobTrace:
    """Mutable event accumulator for one traced job execution."""

    def __init__(self, ctx: TraceContext) -> None:
        self.ctx = ctx
        self.events: list[dict] = []
        self.dropped = 0
        self.machines = 0

    def add(self, events) -> None:
        events = list(events)
        room = self.ctx.max_events - len(self.events)
        if len(events) > room:
            self.dropped += len(events) - room
            events = events[:room]
        self.events.extend(events)


@contextmanager
def tracing_job(ctx: TraceContext | None):
    """Activate job tracing for the duration of the ``with`` block.

    Yields the :class:`JobTrace` state (or ``None`` when ``ctx`` is
    absent/disabled, making the block a transparent no-op).  The global
    is saved and restored, so nested/sequential jobs in one process —
    the in-process serial engine path — cannot leak spans into each
    other.
    """
    global _STATE
    if ctx is None or not ctx.enabled:
        yield None
        return
    previous = _STATE
    state = JobTrace(ctx)
    _STATE = state
    try:
        yield state
    finally:
        _STATE = previous


def current_job_trace() -> JobTrace | None:
    """The active job's trace state, or ``None`` when not tracing."""
    return _STATE


def arm_machine(machine) -> bool:
    """Enable per-instruction + wait tracing on ``machine`` if a job
    trace is active.  Returns whether tracing was armed."""
    if _STATE is None:
        return False
    machine.enable_tracing()
    return True


def collect_machine(machine, *, label: str) -> None:
    """Harvest ``machine``'s per-PE lanes into the active job trace."""
    state = _STATE
    if state is None:
        return
    state.machines += 1
    state.add(machine_events(machine, label=label))


def machine_events(machine, *, label: str,
                   max_spans: int = DEFAULT_MAX_SPANS) -> list[dict]:
    """Build per-PE lane events for one (already run) traced machine.

    Pure function of the machine's instrumentation state; timestamps
    are simulated cycles.  ``label`` names the process row (one row per
    machine, so e.g. the MIPS experiment's SIMD and MIMD phases land on
    separate rows).
    """
    proc = f"sim {label}"
    events: list[dict] = []
    truncated = False
    for logical, pe in enumerate(machine.pes):
        thread = f"PE {logical}"
        run_cat = None
        run_start = run_end = 0.0
        run_count = 0
        run_manual = 0.0

        def flush_run():
            if run_cat is None:
                return
            events.append(span_event(
                run_cat, ts=run_start, dur=run_end - run_start,
                proc=proc, thread=thread, cat="instr",
                args={"instructions": run_count,
                      "manual_cycles": run_manual},
            ))

        for rec in pe.cpu.trace_records:
            cat = rec.instr.timecat
            if cat == run_cat and rec.start == run_end:
                run_end = rec.end
                run_count += 1
                run_manual += rec.timing.cycles
            else:
                flush_run()
                run_cat = cat
                run_start, run_end = rec.start, rec.end
                run_count = 1
                run_manual = rec.timing.cycles
            if len(events) >= max_spans:
                truncated = True
                break
        flush_run()
        if truncated:
            break
        waits = getattr(pe.bus, "wait_spans", None)
        if waits:
            wthread = f"PE {logical} waits"
            for kind, t0, t1 in waits:
                events.append(span_event(
                    kind, ts=t0, dur=t1 - t0,
                    proc=proc, thread=wthread, cat="wait",
                ))
                if len(events) >= max_spans:
                    truncated = True
                    break
        if truncated:
            break
    if truncated:
        last_ts = max((ev["ts"] + ev.get("dur", 0.0) for ev in events),
                      default=0.0)
        events.append({"name": "truncated", "cat": "meta", "ts": last_ts,
                       "proc": proc, "thread": "PE 0",
                       "args": {"max_spans": max_spans}})
    return events
