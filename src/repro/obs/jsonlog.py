"""Structured logging for the serving layer.

``pasm-serve`` runs under process supervisors (systemd, k8s) whose log
pipelines want one machine-parseable line per event.  This module is a
deliberately small alternative to :mod:`logging`: one logger class, two
output formats, no handler/filter graph.

* ``json`` format: one ``json.dumps`` object per line —
  ``{"ts": ..., "level": ..., "event": ..., <fields>}``.
* ``text`` format: ``<iso-ts> <LEVEL> <event> key=value ...`` with
  values quoted (JSON-style) when they contain whitespace or quotes.

Every access-log line carries the request's correlation ID
(``request_id``) and, when tracing, the ``trace_id`` — grep either
format for an ID to reconstruct one request's story.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from datetime import datetime, timezone

LEVELS = ("debug", "info", "warning", "error")
FORMATS = ("text", "json")


def _iso(ts: float) -> str:
    return datetime.fromtimestamp(ts, tz=timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%S.%f"
    )[:-3] + "Z"


def _text_value(value) -> str:
    if isinstance(value, str):
        if value == "" or any(c in value for c in ' "\\\n\t='):
            return json.dumps(value)
        return value
    return json.dumps(value)


class StructuredLogger:
    """A line-oriented logger writing JSON or logfmt-style text.

    ``stream=None`` resolves to ``sys.stderr`` *at emit time*, so tests
    that swap ``sys.stderr`` (pytest's ``capsys``) see the output.  A
    lock keeps concurrent lines whole.
    """

    def __init__(self, stream=None, fmt: str = "text", *,
                 clock=time.time) -> None:
        if fmt not in FORMATS:
            raise ValueError(
                f"unknown log format {fmt!r}; expected one of {FORMATS}"
            )
        self._stream = stream
        self.fmt = fmt
        self._clock = clock
        self._lock = threading.Lock()

    def log(self, level: str, event: str, **fields) -> None:
        ts = self._clock()
        if self.fmt == "json":
            record = {"ts": _iso(ts), "level": level, "event": event}
            record.update(fields)
            line = json.dumps(record, default=str)
        else:
            parts = [_iso(ts), level.upper(), event]
            parts.extend(f"{key}={_text_value(value)}"
                         for key, value in fields.items())
            line = " ".join(parts)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(line + "\n")
            try:
                stream.flush()
            except (ValueError, OSError):  # closed stream at shutdown
                pass

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)
