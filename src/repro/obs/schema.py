"""Structural validation for exported Chrome trace-event JSON.

CI's ``trace-smoke`` job and the test-suite run every exported trace
through :func:`validate_chrome_trace` before declaring it viewable:
Perfetto and ``chrome://tracing`` silently drop or misrender events
with missing fields, unmatched ``B``/``E`` pairs, or timestamps that
go backwards, so "the file loaded" is not a meaningful check.  This
validator returns a list of human-readable problems (empty = valid)
instead of raising, so a smoke job can print *all* defects at once.

Checks applied:

* the document is an object with a ``traceEvents`` list;
* every event is an object with ``name``, ``ph`` and ``pid``;
* every non-metadata event has a ``tid`` and a numeric ``ts``;
* timestamps are non-decreasing in file order (metadata excluded) —
  our exporter sorts, and sorted files load faster in viewers;
* ``B``/``E`` events match up LIFO per ``(pid, tid)`` lane with equal
  names, and no lane ends with an unclosed ``B``;
* ``X`` complete events carry a non-negative numeric ``dur``.
"""

from __future__ import annotations

_REQUIRED = ("name", "ph", "pid")

#: Phases that are *events in time* (everything except metadata).
_TIMED_PHASES = {"B", "E", "X", "i", "I", "R", "C", "b", "e", "n", "s",
                 "t", "f"}


def validate_chrome_trace(doc, *, max_problems: int = 20) -> list[str]:
    """Check a Chrome trace document; returns problems (empty = valid)."""
    problems: list[str] = []

    def report(msg: str) -> bool:
        """Record a problem; True while there is room for more."""
        if len(problems) < max_problems:
            problems.append(msg)
        return len(problems) < max_problems

    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        return ["'traceEvents' is empty"]

    last_ts: float | None = None
    stacks: dict[tuple, list[tuple[int, str]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            if not report(f"event #{i}: not an object"):
                break
            continue
        missing = [f for f in _REQUIRED if f not in ev]
        if missing:
            if not report(f"event #{i}: missing {', '.join(missing)}"):
                break
            continue
        ph = ev["ph"]
        if ph == "M":
            continue
        if ph not in _TIMED_PHASES:
            if not report(f"event #{i}: unknown phase {ph!r}"):
                break
            continue
        if "tid" not in ev:
            if not report(f"event #{i} ({ph} {ev['name']!r}): missing tid"):
                break
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            if not report(f"event #{i} ({ph} {ev['name']!r}): "
                          f"non-numeric ts {ts!r}"):
                break
            continue
        if last_ts is not None and ts < last_ts:
            if not report(f"event #{i} ({ph} {ev['name']!r}): ts {ts} "
                          f"goes backwards (previous {last_ts})"):
                break
        last_ts = ts
        lane = (ev["pid"], ev["tid"])
        if ph == "B":
            stacks.setdefault(lane, []).append((i, ev["name"]))
        elif ph == "E":
            stack = stacks.get(lane)
            if not stack:
                if not report(f"event #{i}: E {ev['name']!r} on lane "
                              f"{lane} with no open B"):
                    break
                continue
            j, open_name = stack.pop()
            # Chrome tolerates E without a name; when present it must
            # match the B it closes or the viewer mispairs the lane.
            if "name" in ev and ev["name"] != open_name:
                if not report(f"event #{i}: E {ev['name']!r} closes "
                              f"B {open_name!r} (event #{j}) on lane "
                              f"{lane}"):
                    break
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or dur < 0:
                if not report(f"event #{i}: X {ev['name']!r} with bad "
                              f"dur {dur!r}"):
                    break
    for lane, stack in stacks.items():
        for j, name in stack:
            if not report(f"event #{j}: B {name!r} on lane {lane} "
                          f"never closed"):
                break
    return problems
