"""In-process metrics timeseries: a ring-buffer store over a registry.

The serving layer's ``GET /metrics`` is an *instantaneous* view — a
saturation drift or a dedup collapse is invisible unless someone is
scraping at the right moment.  :class:`TimeseriesStore` closes that gap
without any external dependency: it self-samples a
:class:`~repro.perf.MetricsRegistry` on an interval, retains a bounded
ring of points per series, and renders the whole history as one JSON
document (``GET /v1/timeseries``).

Semantics mirror the Prometheus data model scaled down to one process:

* **counters** keep their raw cumulative points; per-second *rates*
  are derived on read with counter-reset handling (a restart makes the
  cumulative value drop — the post-reset value is taken as the
  increase, never a negative rate);
* **gauges** keep raw points;
* **summaries** are flattened into one gauge-like series per rendered
  quantile (``…{quantile=0.95}``) plus a cumulative ``…_count`` series
  (a counter, so observation rates derive the same way).

Retention is bounded twice over: at most ``retention_points`` points
per series, and at most ``max_series`` distinct series (oldest-created
evicted first), so a label-cardinality bug cannot grow memory without
limit.

The module is deliberately free of any HTTP or asyncio — the serve and
router layers own the sampling task; tests drive :meth:`sample` with a
fake clock.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Mapping, Sequence

#: Default sampling interval (seconds) for the serving layer.
DEFAULT_INTERVAL_S = 5.0

#: Default bound on retained points per series (720 x 5s = 1 hour).
DEFAULT_RETENTION_POINTS = 720

#: Default bound on distinct series (label-cardinality safety net).
DEFAULT_MAX_SERIES = 2048


def series_key(name: str, labels: Mapping[str, object] | Sequence = ()) -> str:
    """Canonical ``name{k=v,...}`` key for one labelled series."""
    if isinstance(labels, Mapping):
        pairs = sorted((k, str(v)) for k, v in labels.items())
    else:
        pairs = [(k, str(v)) for k, v in labels]
    if not pairs:
        return name
    inner = ",".join(f"{k}={v}" for k, v in pairs)
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`series_key` (labels as a plain dict)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v
    return name, labels


def increase(points: Sequence[tuple[float, float]]) -> float:
    """Total increase of a cumulative counter over its points.

    Counter-reset aware: a drop between consecutive points means the
    process restarted, and the post-reset cumulative value *is* the
    increase since the reset (the standard Prometheus convention).
    Never negative.
    """
    total = 0.0
    prev: float | None = None
    for _, value in points:
        if prev is not None:
            delta = value - prev
            total += delta if delta >= 0 else value
        prev = value
    return max(0.0, total)


def rate_points(
    points: Sequence[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Per-second rate between consecutive cumulative samples.

    Each output point is stamped at the *later* sample's time.  Resets
    (value drops) contribute the post-reset value over the interval, so
    rates stay non-negative through restarts.  Zero-or-negative time
    steps (clock weirdness) are skipped rather than divided by.
    """
    rates: list[tuple[float, float]] = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        dt = t1 - t0
        if dt <= 0:
            continue
        delta = v1 - v0
        if delta < 0:  # counter reset: the new value is the increase
            delta = v1
        rates.append((t1, delta / dt))
    return rates


def window_points(points: Sequence[tuple[float, float]], *,
                  since: float) -> list[tuple[float, float]]:
    """The suffix of ``points`` with timestamps ``>= since``."""
    return [(t, v) for t, v in points if t >= since]


class _Series:
    """One series ring: kind + bounded ``(ts, value)`` points."""

    __slots__ = ("kind", "points")

    def __init__(self, kind: str, retention: int) -> None:
        self.kind = kind
        self.points: deque[tuple[float, float]] = deque(maxlen=retention)


class TimeseriesStore:
    """Bounded, thread-safe history of one registry's metrics.

    Parameters
    ----------
    registry:
        The :class:`~repro.perf.MetricsRegistry` to self-sample.
    interval_s:
        The *intended* sampling cadence — recorded in the rendered
        document so readers (``pasm-top``, the router's fleet
        aggregation) can align buckets.  The store itself never
        sleeps; whoever owns the event loop calls :meth:`sample`.
    retention_points:
        Ring bound per series; the oldest points fall off.
    max_series:
        Bound on distinct series; the oldest-*created* series are
        evicted first when exceeded.
    clock:
        Timestamp source for sample points.  Wall-clock by default so
        points from different fleet members are comparable.
    """

    def __init__(
        self,
        registry,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        retention_points: int = DEFAULT_RETENTION_POINTS,
        max_series: int = DEFAULT_MAX_SERIES,
        clock=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if retention_points < 2:
            raise ValueError(
                f"retention_points must be >= 2, got {retention_points}"
            )
        if max_series < 1:
            raise ValueError(f"max_series must be >= 1, got {max_series}")
        import time as _time

        self.registry = registry
        self.interval_s = interval_s
        self.retention_points = retention_points
        self.max_series = max_series
        self._clock = clock or _time.time
        self._lock = threading.Lock()
        self._series: dict[str, _Series] = {}
        self.samples_taken = 0
        self.series_evicted = 0

    # ------------------------------------------------------------------
    # Write side
    def sample(self, now: float | None = None) -> float:
        """Take one sample of every registry metric; returns its ts."""
        ts = self._clock() if now is None else now
        snapshot = self.registry.snapshot()
        with self._lock:
            for name, metric in snapshot.items():
                kind = metric["kind"]
                if kind == "summary":
                    for label_key, summary in metric["series"].items():
                        for q, value in summary["quantiles"].items():
                            key = series_key(
                                name, tuple(label_key) + (("quantile", q),)
                            )
                            self._append(key, "quantile", ts, value)
                        self._append(
                            series_key(f"{name}_count", label_key),
                            "counter", ts, summary["count"],
                        )
                else:
                    for label_key, value in metric["series"].items():
                        self._append(series_key(name, label_key), kind,
                                     ts, value)
            self.samples_taken += 1
        return ts

    def _append(self, key: str, kind: str, ts: float, value: float) -> None:
        series = self._series.get(key)
        if series is None:
            while len(self._series) >= self.max_series:
                oldest = next(iter(self._series))
                del self._series[oldest]
                self.series_evicted += 1
            series = self._series[key] = _Series(kind, self.retention_points)
        series.points.append((ts, float(value)))

    # ------------------------------------------------------------------
    # Read side
    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._series)

    def points(self, key: str, *,
               since: float | None = None) -> list[tuple[float, float]]:
        """Raw retained points of one series (empty if unknown)."""
        with self._lock:
            series = self._series.get(key)
            pts = list(series.points) if series is not None else []
        if since is not None:
            pts = window_points(pts, since=since)
        return pts

    def kind(self, key: str) -> str | None:
        with self._lock:
            series = self._series.get(key)
            return series.kind if series is not None else None

    def matching(self, name: str,
                 where: Mapping[str, str] | None = None) -> list[str]:
        """Series keys of one metric name, optionally label-filtered."""
        out = []
        for key in self.keys():
            base, labels = parse_series_key(key)
            if base != name:
                continue
            if where and any(labels.get(k) != v for k, v in where.items()):
                continue
            out.append(key)
        return out

    def window_increase(self, key: str, *, since: float) -> float:
        """Counter increase over the window ``[since, now]``.

        The point just *before* the window (when retained) anchors the
        first delta, so a window boundary between samples does not
        swallow an increment.
        """
        pts = self.points(key)
        inside = [i for i, (t, _) in enumerate(pts) if t >= since]
        if not inside:
            return 0.0
        start = max(0, inside[0] - 1)
        return increase(pts[start:])

    def latest(self, key: str) -> tuple[float, float] | None:
        pts = self.points(key)
        return pts[-1] if pts else None

    # ------------------------------------------------------------------
    def to_doc(self, *, since: float | None = None,
               instance: str | None = None) -> dict:
        """The JSON document served at ``GET /v1/timeseries``."""
        with self._lock:
            snapshot = {
                key: (series.kind, list(series.points))
                for key, series in self._series.items()
            }
        series_doc: dict[str, dict] = {}
        for key, (kind, pts) in sorted(snapshot.items()):
            if since is not None:
                pts = window_points(pts, since=since)
            entry: dict = {
                "kind": kind,
                "points": [[round(t, 3), value] for t, value in pts],
            }
            if kind == "counter":
                entry["rate"] = [
                    [round(t, 3), round(r, 6)] for t, r in rate_points(pts)
                ]
            series_doc[key] = entry
        doc = {
            "interval_s": self.interval_s,
            "retention_points": self.retention_points,
            "samples_taken": self.samples_taken,
            "now": self._clock(),
            "series": series_doc,
        }
        if instance is not None:
            doc["instance"] = instance
        return doc


# ---------------------------------------------------------------------------
# Fleet aggregation (the router's /v1/timeseries)
def aggregate_timeseries(docs: Iterable[dict],
                         *, interval_s: float | None = None) -> dict:
    """Merge instance timeseries documents into one fleet-wide view.

    Points are bucketed to the sampling interval (instances sample on
    their own clocks, so exact timestamps never align); within a bucket
    counters, counter rates, ``…_count`` series and plain gauges
    **sum** across instances, gauges named ``*_ratio`` **average**
    (a sum of fractions is meaningless), and quantile series take the
    **max** — the fleet's worst tail is the honest aggregate, while
    averaging quantiles would understate it.
    """
    docs = [d for d in docs if isinstance(d, dict) and d.get("series")]
    if interval_s is None:
        interval_s = max(
            [float(d.get("interval_s", DEFAULT_INTERVAL_S)) for d in docs],
            default=DEFAULT_INTERVAL_S,
        )
    step = max(interval_s, 1e-3)

    def bucket(t: float) -> float:
        return round(round(t / step) * step, 3)

    def combiner(kind: str, key: str) -> str:
        if kind == "quantile":
            return "max"
        if kind == "gauge" and parse_series_key(key)[0].endswith("_ratio"):
            return "mean"
        return "sum"

    # key -> field -> bucket -> (accumulated value, contributions)
    merged: dict[str, dict] = {}
    for doc in docs:
        for key, entry in doc["series"].items():
            kind = entry.get("kind", "gauge")
            slot = merged.setdefault(key, {"kind": kind, "points": {},
                                           "rate": {}})
            for field in ("points", "rate"):
                for t, value in entry.get(field, ()):  # [[ts, v], ...]
                    b = bucket(t)
                    acc, n = slot[field].get(b, (0.0, 0))
                    if combiner(kind, key) == "max":
                        acc = max(acc, value) if n else value
                    else:
                        acc += value
                    slot[field][b] = (acc, n + 1)

    def resolved(slot_field: dict, how: str) -> list[list[float]]:
        out = []
        for t in sorted(slot_field):
            acc, n = slot_field[t]
            out.append([t, acc / n if how == "mean" and n else acc])
        return out

    series_doc = {}
    for key, slot in sorted(merged.items()):
        how = combiner(slot["kind"], key)
        entry: dict = {
            "kind": slot["kind"],
            "points": resolved(slot["points"], how),
        }
        if slot["kind"] == "counter":
            entry["rate"] = resolved(slot["rate"], "sum")
        series_doc[key] = entry
    return {
        "interval_s": interval_s,
        "instances": len(docs),
        "series": series_doc,
    }
