"""Process self-metrics: RSS, CPU seconds, open FDs, uptime.

Every serious exporter carries the ``process_*`` family; ours is
stdlib-only (``resource`` + ``/proc`` with graceful fallbacks) and
namespaced ``pasm_process_*`` so the router's fleet aggregation sums
per-instance lines like any other metric.

* ``pasm_process_resident_memory_bytes`` — current RSS from
  ``/proc/self/status`` (``VmRSS``); falls back to the peak
  (``ru_maxrss``) where ``/proc`` is unavailable (macOS), which is the
  honest best available number there.
* ``pasm_process_cpu_seconds_total{mode=user|system}`` — cumulative
  CPU, surfaced as a true counter (the collector feeds *deltas* into
  the registry, so restarts and registry semantics stay consistent).
* ``pasm_process_open_fds`` — ``/proc/self/fd`` entry count (absent
  off-Linux rather than guessed).
* ``pasm_process_uptime_seconds`` — monotonic seconds since the
  collector was created (process start, for our purposes).
"""

from __future__ import annotations

import os
import resource
import time


class ProcessStats:
    """Collects process self-metrics into a metrics registry.

    ``collect()`` is cheap (two syscalls and one small ``/proc`` read)
    and idempotent per instant — the serve/router layers call it from
    the sampling loop and on every ``/metrics`` render.
    """

    def __init__(self, metrics, *, clock=time.monotonic) -> None:
        self.metrics = metrics
        self._clock = clock
        self._start = clock()
        self._last_cpu = {"user": 0.0, "system": 0.0}
        m = metrics
        m.describe("pasm_process_resident_memory_bytes", "gauge",
                   "Resident set size of this process")
        m.describe("pasm_process_cpu_seconds_total", "counter",
                   "Cumulative CPU seconds, by mode (user/system)")
        m.describe("pasm_process_uptime_seconds", "gauge",
                   "Seconds since this process's collector started")
        if os.path.isdir("/proc/self/fd"):
            m.describe("pasm_process_open_fds", "gauge",
                       "Open file descriptors of this process")

    # ------------------------------------------------------------------
    def collect(self) -> None:
        m = self.metrics
        m.set_gauge("pasm_process_resident_memory_bytes", self._rss_bytes())
        usage = resource.getrusage(resource.RUSAGE_SELF)
        for mode, total in (("user", usage.ru_utime),
                            ("system", usage.ru_stime)):
            delta = total - self._last_cpu[mode]
            if delta > 0:
                m.inc("pasm_process_cpu_seconds_total", delta, mode=mode)
                self._last_cpu[mode] = total
        fds = self._open_fds()
        if fds is not None:
            m.set_gauge("pasm_process_open_fds", fds)
        m.set_gauge("pasm_process_uptime_seconds",
                    self._clock() - self._start)

    # ------------------------------------------------------------------
    @staticmethod
    def _rss_bytes() -> float:
        try:
            with open("/proc/self/status", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("VmRSS:"):
                        return float(line.split()[1]) * 1024.0
        except (OSError, ValueError, IndexError):
            pass
        # ru_maxrss: KiB on Linux, bytes on macOS — peak, not current,
        # but the best portable fallback.
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return float(peak) * (1.0 if peak > 1 << 32 else 1024.0)

    @staticmethod
    def _open_fds() -> int | None:
        try:
            return len(os.listdir("/proc/self/fd"))
        except OSError:
            return None
