"""Declarative SLOs with multi-window burn-rate alerting.

The paper's decoupling claim is about *sustained* behaviour — a single
slow instruction is noise, a saturated fetch queue is signal.  Service
health works the same way: one 429 is load shedding doing its job, a
sustained 429 ratio is an incident.  This module encodes that
distinction with the standard SRE multi-window burn-rate rule:

* every :class:`SLO` names a **measurement** over the timeseries store
  (an error *ratio* derived from counter increases, a latency
  *quantile*, or a *gauge* level) and a **target** it must stay on the
  right side of;
* the **burn rate** is ``measured / target`` (how fast the error
  budget is being spent; 1.0 = exactly on budget);
* an alert **fires** only when the burn rate exceeds its threshold
  over *both* a fast and a slow window — the slow window proves the
  problem is sustained, the fast window proves it is still happening;
* a firing alert **resolves** only after ``resolve_after`` consecutive
  healthy evaluations (hysteresis — a burn rate oscillating around the
  threshold must not flap pages).

:class:`SLOEvaluator` owns the alert state machine, surfaces it as
``pasm_slo_*`` metrics and the ``GET /v1/alerts`` document, emits one
structured log line per transition, and notifies the flight recorder
(which dumps an incident bundle on every page).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.obs.timeseries import TimeseriesStore, parse_series_key

#: Alert states.
OK, FIRING = "ok", "firing"


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    Attributes
    ----------
    name:
        Stable identifier (the ``slo`` label on every surfaced metric).
    kind:
        ``"ratio"`` — measured = (sum of increases over *numerator*
        counter series) / (sum over *denominator* series) within the
        window; ``"quantile"`` — measured = max of the selected
        quantile series' points in the window; ``"gauge"`` — measured
        = mean of the gauge's points in the window.
    metric:
        Base metric name (the denominator metric for ``ratio``).
    target:
        The objective.  With ``direction="upper"`` the measurement must
        stay **at or below** it (latency, error ratio, queue depth);
        with ``"lower"`` it must stay **at or above** it (dedup rate).
    labels:
        Label filter selecting the series (quantile/gauge kinds).
    bad_label / bad_values:
        Ratio kind: numerator series are those whose ``bad_label``
        value matches any of ``bad_values``; a value ending in ``xx``
        matches by first digit (``"5xx"`` matches 500/503).
    fast_window_s / slow_window_s:
        The two burn-rate windows.
    fast_burn / slow_burn:
        Burn-rate thresholds per window (fire needs **both**).
    resolve_after:
        Consecutive healthy evaluations required to resolve.
    min_denominator:
        Ratio kind: below this many window events the ratio is treated
        as healthy (no traffic is not an outage).
    """

    name: str
    kind: str
    metric: str
    target: float
    description: str = ""
    direction: str = "upper"
    labels: tuple[tuple[str, str], ...] = ()
    bad_label: str = "status"
    bad_values: tuple[str, ...] = ("429", "5xx")
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    fast_burn: float = 2.0
    slow_burn: float = 1.0
    resolve_after: int = 3
    min_denominator: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "quantile", "gauge"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.direction not in ("upper", "lower"):
            raise ValueError(f"unknown SLO direction {self.direction!r}")
        if self.target <= 0:
            raise ValueError(f"SLO {self.name}: target must be positive")
        if self.fast_window_s >= self.slow_window_s:
            raise ValueError(
                f"SLO {self.name}: fast window ({self.fast_window_s}s) must "
                f"be shorter than the slow window ({self.slow_window_s}s)"
            )
        if self.resolve_after < 1:
            raise ValueError(f"SLO {self.name}: resolve_after must be >= 1")

    # ------------------------------------------------------------------
    def _bad_match(self, value: str) -> bool:
        for pattern in self.bad_values:
            if pattern.endswith("xx"):
                if value[:1] == pattern[:1] and len(value) == len(pattern):
                    return True
            elif value == pattern:
                return True
        return False

    def measure(self, store: TimeseriesStore, *, now: float,
                window_s: float) -> float | None:
        """The measured value over ``[now - window_s, now]``.

        ``None`` means "no data" (empty window, no traffic) — treated
        as healthy by the evaluator, never as a zero that could fire a
        lower-bound objective.
        """
        since = now - window_s
        where = dict(self.labels)
        if self.kind == "ratio":
            total = bad = 0.0
            for key in store.matching(self.metric, where or None):
                inc = store.window_increase(key, since=since)
                total += inc
                _, labels = parse_series_key(key)
                if self._bad_match(labels.get(self.bad_label, "")):
                    bad += inc
            if total < self.min_denominator:
                return None
            return bad / total
        if self.kind == "quantile":
            values = [
                v for key in store.matching(self.metric, where or None)
                for _, v in store.points(key, since=since)
            ]
            return max(values) if values else None
        values = [
            v for key in store.matching(self.metric, where or None)
            for _, v in store.points(key, since=since)
        ]
        return sum(values) / len(values) if values else None

    def burn_rate(self, measured: float | None) -> float:
        """How fast the budget burns: 1.0 = exactly on target."""
        if measured is None:
            return 0.0
        if self.direction == "upper":
            return measured / self.target
        # Lower bound (e.g. dedup rate must stay >= target): burning
        # means the measurement fell *below* target.
        if measured <= 0:
            return math.inf
        return self.target / measured


@dataclass
class AlertState:
    """Mutable per-SLO alert bookkeeping."""

    slo: SLO
    state: str = OK
    since: float | None = None  #: when the current state was entered
    healthy_streak: int = 0
    fires: int = 0
    last_measured: float | None = None
    last_burn: dict = field(default_factory=dict)

    def doc(self) -> dict:
        slo = self.slo
        return {
            "slo": slo.name,
            "description": slo.description,
            "state": self.state,
            "since": self.since,
            "fires": self.fires,
            "kind": slo.kind,
            "metric": slo.metric,
            "target": slo.target,
            "direction": slo.direction,
            "measured": self.last_measured,
            "burn": dict(self.last_burn),
            "windows_s": [slo.fast_window_s, slo.slow_window_s],
            "burn_thresholds": [slo.fast_burn, slo.slow_burn],
        }


class SLOEvaluator:
    """Evaluates SLOs against a timeseries store; owns alert state.

    Parameters
    ----------
    slos:
        The objectives to evaluate.
    store:
        The :class:`TimeseriesStore` measurements read from.  The
        owner must :meth:`~TimeseriesStore.sample` before each
        :meth:`evaluate` — the evaluator never samples itself.
    metrics:
        Registry receiving ``pasm_slo_status`` / ``pasm_slo_burn_rate``
        gauges and the ``pasm_slo_transitions_total`` counter.
    log:
        Optional :class:`~repro.obs.jsonlog.StructuredLogger`; one
        ``slo_fire`` / ``slo_resolve`` line per transition.
    on_fire / on_resolve:
        Optional callbacks ``(state: AlertState) -> None`` invoked
        after the metrics/log surfaces update — the serve app hooks
        the flight-recorder dump in here.
    """

    def __init__(self, slos, store: TimeseriesStore, *, metrics=None,
                 log=None, on_fire=None, on_resolve=None,
                 clock=time.time) -> None:
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.states = {slo.name: AlertState(slo) for slo in slos}
        self.store = store
        self.metrics = metrics
        self.log = log
        self.on_fire = on_fire
        self.on_resolve = on_resolve
        self._clock = clock
        self.evaluations = 0
        if metrics is not None:
            metrics.describe("pasm_slo_status", "gauge",
                             "1 while the SLO's alert is firing, else 0")
            metrics.describe("pasm_slo_burn_rate", "gauge",
                             "Error-budget burn rate per window "
                             "(1.0 = exactly on target)")
            metrics.describe("pasm_slo_transitions_total", "counter",
                             "Alert transitions by SLO and new state")
            for name in names:
                metrics.set_gauge("pasm_slo_status", 0, slo=name)

    # ------------------------------------------------------------------
    def evaluate(self, now: float | None = None) -> list[AlertState]:
        """One evaluation pass; returns states that transitioned."""
        now = self._clock() if now is None else now
        self.evaluations += 1
        transitioned: list[AlertState] = []
        for state in self.states.values():
            slo = state.slo
            fast = slo.measure(self.store, now=now,
                               window_s=slo.fast_window_s)
            slow = slo.measure(self.store, now=now,
                               window_s=slo.slow_window_s)
            burn_fast = slo.burn_rate(fast)
            burn_slow = slo.burn_rate(slow)
            state.last_measured = fast
            state.last_burn = {"fast": _finite(burn_fast),
                               "slow": _finite(burn_slow)}
            breaching = (burn_fast >= slo.fast_burn
                         and burn_slow >= slo.slow_burn)
            if state.state == OK:
                if breaching:
                    self._transition(state, FIRING, now)
                    transitioned.append(state)
            else:
                if breaching:
                    state.healthy_streak = 0
                else:
                    state.healthy_streak += 1
                    if state.healthy_streak >= slo.resolve_after:
                        self._transition(state, OK, now)
                        transitioned.append(state)
            if self.metrics is not None:
                for window, burn in (("fast", burn_fast), ("slow", burn_slow)):
                    self.metrics.set_gauge("pasm_slo_burn_rate",
                                           _finite(burn), slo=slo.name,
                                           window=window)
        return transitioned

    def _transition(self, state: AlertState, to: str, now: float) -> None:
        state.state = to
        state.since = now
        state.healthy_streak = 0
        if to == FIRING:
            state.fires += 1
        if self.metrics is not None:
            self.metrics.set_gauge("pasm_slo_status",
                                   1 if to == FIRING else 0,
                                   slo=state.slo.name)
            self.metrics.inc("pasm_slo_transitions_total",
                             slo=state.slo.name, to=to)
        if self.log is not None:
            event = "slo_fire" if to == FIRING else "slo_resolve"
            self.log.log("error" if to == FIRING else "info", event,
                         slo=state.slo.name,
                         measured=state.last_measured,
                         target=state.slo.target,
                         burn_fast=state.last_burn.get("fast"),
                         burn_slow=state.last_burn.get("slow"))
        hook = self.on_fire if to == FIRING else self.on_resolve
        if hook is not None:
            hook(state)

    # ------------------------------------------------------------------
    @property
    def firing(self) -> list[AlertState]:
        return [s for s in self.states.values() if s.state == FIRING]

    def to_doc(self, *, instance: str | None = None) -> dict:
        """The JSON document served at ``GET /v1/alerts``."""
        doc = {
            "firing": len(self.firing),
            "evaluations": self.evaluations,
            "alerts": [s.doc() for s in self.states.values()],
        }
        if instance is not None:
            doc["instance"] = instance
        return doc


def _finite(value: float) -> float:
    """Clamp inf burn rates to something JSON- and gauge-friendly."""
    return min(value, 1e9)


# ---------------------------------------------------------------------------
def default_slos(
    *,
    error_ratio: float = 0.05,
    p95_latency_s: float = 60.0,
    queue_depth: float = 48.0,
    dedup_min: float | None = None,
    fast_window_s: float = 60.0,
    slow_window_s: float = 300.0,
    resolve_after: int = 3,
) -> list[SLO]:
    """The serving layer's standard objectives.

    ``dedup_min`` is off by default: a healthy low-traffic instance
    legitimately has a near-zero hit ratio, so the dedup-collapse
    objective only makes sense where the operator knows the workload
    repeats (pass e.g. ``dedup_min=0.5``).
    """
    window = {"fast_window_s": fast_window_s, "slow_window_s": slow_window_s,
              "resolve_after": resolve_after}
    slos = [
        SLO(name="error-ratio", kind="ratio",
            metric="pasm_serve_requests_total", target=error_ratio,
            description="Fraction of requests answered 429/5xx",
            bad_label="status", bad_values=("429", "5xx"), **window),
        SLO(name="latency-p95", kind="quantile",
            metric="pasm_serve_job_latency_seconds", target=p95_latency_s,
            labels=(("quantile", "0.95"),),
            description="p95 submit-to-done latency of computed jobs",
            **window),
        SLO(name="queue-depth", kind="gauge",
            metric="pasm_serve_queue_depth", target=queue_depth,
            description="Mean jobs waiting for a worker", **window),
    ]
    if dedup_min is not None:
        slos.append(SLO(
            name="dedup-rate", kind="gauge",
            metric="pasm_serve_cache_hit_ratio", target=dedup_min,
            direction="lower",
            description="Fraction of submissions absorbed without "
                        "computing (dedup collapse detector)",
            **window))
    return slos
