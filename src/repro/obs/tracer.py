"""A dependency-free span tracer with Chrome trace-event export.

Spans are recorded as plain JSON-able dictionaries so they can cross
the ``spawn`` process boundary (pool workers pickle their event lists
back to the broker) and accumulate from several sources — wall-clock
serve/broker/engine lanes and simulated-cycle per-PE lanes — into one
timeline.  :func:`export_chrome` renders the combined list in the
Chrome trace-event JSON format, viewable in `Perfetto`_ or
``chrome://tracing``.

Two clock domains share one file: wall-clock lanes use microseconds
since the tracer was created, simulated lanes use **cycles** rendered
as microseconds (1 cycle = 1 µs, so timestamps stay integral and the
paper's cycle counts are readable straight off the ruler).  Each domain
lives on its own process row, so the mixed units never share an axis.

Event dictionaries
------------------
A **span**: ``{"name", "cat", "ts", "dur", "proc", "thread", "args"?}``
— ``ts``/``dur`` are floats in the lane's time unit; ``proc`` and
``thread`` are human-readable lane names (numeric pid/tid are assigned
at export).  An **instant** is the same without ``dur``.  Lanes are
expected to be *sequential* (spans on one thread never overlap); the
exporter emits matched B/E pairs and :mod:`repro.obs.schema` verifies
the nesting invariant.

.. _Perfetto: https://ui.perfetto.dev/
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.ids import new_trace_id

#: Default ceiling on retained events per tracer / traced job.  A 16x16
#: micro matmul executes ~10^5 instructions per PE; category runs
#: coalesce most of that, but a cap keeps a pathological job from
#:  exhausting broker memory.  Dropped events are counted, not silent.
DEFAULT_MAX_EVENTS = 200_000

#: ``displayTimeUnit`` hint for viewers.
_DISPLAY_UNIT = "ms"


@dataclass(frozen=True)
class TraceContext:
    """The picklable tracing state a job carries across process bounds.

    Attached to a :class:`~repro.exec.SimJobSpec` (``spec.trace``), it
    re-seeds the recorder inside a spawn-context pool worker so the
    worker's simulated-time spans join the submitting side's trace.
    ``enabled=False`` is a carried-but-dormant context (never attached
    in practice; the field exists so call sites can guard uniformly).
    """

    trace_id: str
    parent_span: str = ""
    enabled: bool = True
    max_events: int = DEFAULT_MAX_EVENTS


def span_event(name: str, *, ts: float, dur: float, proc: str,
               thread: str, cat: str = "", args: dict | None = None) -> dict:
    """Build one span event dictionary."""
    ev = {"name": name, "cat": cat, "ts": float(ts), "dur": float(dur),
          "proc": proc, "thread": thread}
    if args:
        ev["args"] = args
    return ev


def instant_event(name: str, *, ts: float, proc: str, thread: str,
                  cat: str = "", args: dict | None = None) -> dict:
    """Build one instant event dictionary."""
    ev = {"name": name, "cat": cat, "ts": float(ts),
          "proc": proc, "thread": thread}
    if args:
        ev["args"] = args
    return ev


class Tracer:
    """Thread-safe event recorder for one logical operation.

    The tracer is the *wall-clock* anchor: :meth:`clock_us` is
    microseconds since construction, and :meth:`span` times a ``with``
    block on that clock.  Simulated-time events produced elsewhere are
    merged in with :meth:`extend`.
    """

    def __init__(self, trace_id: str | None = None, *,
                 max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def clock_us(self) -> float:
        """Microseconds of wall time since this tracer was created."""
        return (time.perf_counter() - self._t0) * 1e6

    def _append(self, event: dict) -> None:
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                return
            self.events.append(event)

    def add_span(self, name: str, *, ts: float, dur: float, proc: str,
                 thread: str, cat: str = "", args: dict | None = None) -> None:
        self._append(span_event(name, ts=ts, dur=dur, proc=proc,
                                thread=thread, cat=cat, args=args))

    def add_instant(self, name: str, *, ts: float | None = None, proc: str,
                    thread: str, cat: str = "",
                    args: dict | None = None) -> None:
        if ts is None:
            ts = self.clock_us()
        self._append(instant_event(name, ts=ts, proc=proc, thread=thread,
                                   cat=cat, args=args))

    @contextmanager
    def span(self, name: str, *, proc: str, thread: str, cat: str = "",
             args: dict | None = None):
        """Record a wall-clock span around a ``with`` block."""
        start = self.clock_us()
        try:
            yield self
        finally:
            self.add_span(name, ts=start, dur=self.clock_us() - start,
                          proc=proc, thread=thread, cat=cat, args=args)

    def extend(self, events) -> None:
        """Merge a batch of event dictionaries (e.g. from a worker)."""
        with self._lock:
            room = self.max_events - len(self.events)
            events = list(events)
            if len(events) > room:
                self.dropped += len(events) - room
                events = events[:room]
            self.events.extend(events)

    # ------------------------------------------------------------------
    def to_chrome(self, meta: dict | None = None) -> dict:
        """The Chrome trace-event JSON document for everything recorded."""
        extra = dict(meta or {})
        if self.dropped:
            extra["dropped_events"] = self.dropped
        return export_chrome(self.events, trace_id=self.trace_id, meta=extra)

    def write(self, path, meta: dict | None = None) -> int:
        """Write the Chrome trace JSON to ``path``; returns event count."""
        doc = self.to_chrome(meta)
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return len(doc["traceEvents"])


# ---------------------------------------------------------------------------
# Chrome trace-event export / import
# ---------------------------------------------------------------------------
def export_chrome(events, *, trace_id: str | None = None,
                  meta: dict | None = None) -> dict:
    """Render event dictionaries as a Chrome trace-event JSON document.

    Numeric ``pid``/``tid`` are assigned per distinct ``proc`` /
    ``(proc, thread)`` in order of first appearance, and announced with
    ``process_name``/``thread_name`` metadata events so viewers show
    the human-readable lane names.  Spans become matched ``B``/``E``
    pairs; zero-duration spans and instants become ``i`` events.  All
    timed events are sorted by timestamp (``E`` before ``i`` before
    ``B`` at equal timestamps, so back-to-back spans on one lane close
    before the next opens).
    """
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    metadata: list[dict] = []
    timed: list[tuple[float, int, int, dict]] = []
    order = 0
    for ev in events:
        proc, thread = ev["proc"], ev["thread"]
        pid = pids.get(proc)
        if pid is None:
            pid = pids[proc] = len(pids) + 1
            metadata.append({"ph": "M", "name": "process_name", "pid": pid,
                             "tid": 0, "args": {"name": proc}})
        tkey = (proc, thread)
        tid = tids.get(tkey)
        if tid is None:
            tid = tids[tkey] = sum(
                1 for (p, _t) in tids if p == proc
            ) + 1
            metadata.append({"ph": "M", "name": "thread_name", "pid": pid,
                             "tid": tid, "args": {"name": thread}})
        base = {"name": ev["name"], "cat": ev.get("cat") or "event",
                "pid": pid, "tid": tid}
        if "args" in ev:
            base["args"] = ev["args"]
        dur = ev.get("dur")
        ts = ev["ts"]
        if dur is not None and dur > 0:
            begin = dict(base, ph="B", ts=ts)
            end = {"name": ev["name"], "ph": "E", "pid": pid, "tid": tid,
                   "ts": ts + dur}
            timed.append((ts, 2, order, begin))
            timed.append((ts + dur, 0, order, end))
        else:
            timed.append((ts, 1, order, dict(base, ph="i", ts=ts, s="t")))
        order += 1
    timed.sort(key=lambda item: (item[0], item[1], item[2]))
    doc = {
        "traceEvents": metadata + [item[3] for item in timed],
        "displayTimeUnit": _DISPLAY_UNIT,
        "otherData": {
            "generator": "repro.obs",
            "clock_note": ("wall-clock lanes in microseconds; simulated "
                           "lanes in cycles rendered as microseconds "
                           "(1 cycle = 1 us)"),
        },
    }
    if trace_id:
        doc["otherData"]["trace_id"] = trace_id
    if meta:
        doc["otherData"].update(meta)
    return doc


def lanes_from_chrome(doc: dict) -> dict[tuple[str, str], list[dict]]:
    """Reconstruct per-lane span/instant lists from a Chrome trace doc.

    Returns ``{(process_name, thread_name): [event, ...]}`` with events
    in the internal dictionary form (``ts``/``dur``/``name``/``cat``).
    ``B``/``E`` pairs are re-joined per lane (LIFO); ``X`` complete
    events and ``i`` instants are accepted too, so traces from other
    producers render as well.  Raises ``ValueError`` on unmatched
    ``B``/``E`` nesting — use :mod:`repro.obs.schema` for a diagnostic
    (non-raising) check.
    """
    procs: dict[int, str] = {}
    threads: dict[tuple[int, int], str] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") != "M":
            continue
        if ev.get("name") == "process_name":
            procs[ev["pid"]] = ev.get("args", {}).get("name", str(ev["pid"]))
        elif ev.get("name") == "thread_name":
            threads[(ev["pid"], ev["tid"])] = \
                ev.get("args", {}).get("name", str(ev["tid"]))

    def lane(ev) -> tuple[str, str]:
        pid, tid = ev.get("pid", 0), ev.get("tid", 0)
        return (procs.get(pid, f"pid {pid}"),
                threads.get((pid, tid), f"tid {tid}"))

    lanes: dict[tuple[str, str], list[dict]] = {}
    stacks: dict[tuple[int, int], list[dict]] = {}
    for ev in doc.get("traceEvents", ()):
        ph = ev.get("ph")
        if ph == "M":
            lanes.setdefault(lane(ev), [])
            continue
        key = (ev.get("pid", 0), ev.get("tid", 0))
        out = lanes.setdefault(lane(ev), [])
        if ph == "B":
            stacks.setdefault(key, []).append(
                {"name": ev.get("name", "?"), "cat": ev.get("cat", ""),
                 "ts": ev["ts"], "args": ev.get("args", {})}
            )
        elif ph == "E":
            stack = stacks.get(key) or []
            if not stack:
                raise ValueError(f"unmatched E event on lane {lane(ev)}")
            span = stack.pop()
            span["dur"] = ev["ts"] - span["ts"]
            out.append(span)
        elif ph == "X":
            out.append({"name": ev.get("name", "?"),
                        "cat": ev.get("cat", ""), "ts": ev["ts"],
                        "dur": ev.get("dur", 0.0),
                        "args": ev.get("args", {})})
        elif ph in ("i", "I", "R"):
            out.append({"name": ev.get("name", "?"),
                        "cat": ev.get("cat", ""), "ts": ev["ts"],
                        "args": ev.get("args", {})})
    leftovers = [k for k, stack in stacks.items() if stack]
    if leftovers:
        raise ValueError(f"unclosed B events on lanes {leftovers}")
    for spans in lanes.values():
        spans.sort(key=lambda s: s["ts"])
    return lanes
