"""Symmetric-ring pipeline model for the network transfer phase.

During a rotation step every PE sends its outgoing column to its left
neighbor, element by element, over the circuit-switched ring.  All PEs run
the same code at the same rate, so the timeline of one PE (with its
incoming bytes arriving on its *own* send schedule, by symmetry) captures
the whole phase:

* a transmit-register write blocks until the circuit's mover has picked up
  the previous byte (1-deep register);
* a mover carries one byte at a time with latency L and cannot pick up the
  next byte until the destination register has been drained;
* in polling mode (pure MIMD), every network access is preceded by a
  status poll loop, which both costs instructions and quantizes waits to
  the poll period.

The model walks the actual transfer-fragment instructions with the same
manual timings the micro engine charges, so its per-element period matches
the micro engine's measured comm time to within start-up effects (enforced
by the cross-engine tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.m68k.addressing import Mode, dreg, imm
from repro.m68k.instructions import Instruction
from repro.machine.config import PrototypeConfig
from repro.programs.common import xfer_element_source
from repro.timing_model.fragments import CostEnv, instruction_cost


@dataclass(frozen=True)
class CommPhase:
    """Cost of one n-element transfer phase."""

    cycles: float  #: total phase duration (setup + all elements)
    per_element_steady: float  #: steady-state element period
    setup_cycles: float  #: loop-counter setup before the first element


def _classify(instr: Instruction, config: PrototypeConfig) -> str:
    for op in instr.operands:
        if op.mode in (Mode.ABS_L, Mode.ABS_W) and isinstance(op.value, int):
            if op.value == config.net_tx_addr:
                return "tx"
            if op.value == config.net_rx_addr:
                return "rx"
            if op.value == config.net_status_addr:
                return "status"
    return "plain"


def _xfer_instructions(config: PrototypeConfig) -> list[Instruction]:
    """The non-polling transfer fragment, assembled once."""
    from repro.m68k.assembler import assemble

    source = xfer_element_source(polling=False)
    return assemble(
        source, predefined=config.device_symbols()
    ).instruction_list()


def _poll_costs(env: CostEnv, config: PrototypeConfig):
    """(sample_offset, iter_cost, exit_cost) of one status-poll loop.

    The loop is ``MOVE.W NETSTAT,Dn / AND.W #bit,Dn / BEQ back``; the
    status is sampled when the MOVE's device access completes.
    """
    from repro.m68k.addressing import absl

    move = Instruction("MOVE", None, (absl(config.net_status_addr), dreg(5)))
    and_i = Instruction("AND", None, (imm(1), dreg(5)))
    beq = Instruction("BEQ", None, (), target=0)
    move_c, _ = instruction_cost(move, env, config)
    and_c, _ = instruction_cost(and_i, env, config)
    taken_c, _ = instruction_cost(beq, env, config, branch_taken=True)
    exit_c, _ = instruction_cost(beq, env, config, branch_taken=False)
    return move_c, and_c + taken_c, and_c + exit_c


def comm_pipeline(
    config: PrototypeConfig,
    env: CostEnv,
    *,
    polling: bool,
    n_elements: int,
    pe_loop: bool = True,
) -> CommPhase:
    """Walk one transfer phase of ``n_elements`` 16-bit elements.

    ``pe_loop=False`` models SIMD mode, where the element loop runs on the
    MC and the PE sees only the broadcast element blocks (no counter setup
    or DBRA).
    """
    instrs = _xfer_instructions(config)
    kinds = [_classify(i, config) for i in instrs]
    device_access = 4 + env.ws_device

    # Pre-compute fixed instruction costs; net instructions split into
    # (pre, access) so blocking lands at the device-access point.
    costs = []
    for instr, kind in zip(instrs, kinds):
        total, _ = instruction_cost(instr, env, config)
        if kind in ("tx", "rx"):
            costs.append((kind, total - device_access, device_access))
        else:
            costs.append((kind, total, 0.0))

    # Loop machinery: counter setup once, DBRA per element.
    dbra = Instruction("DBRA", None, (dreg(2),), target=0)
    dbra_taken, _ = instruction_cost(dbra, env, config, branch_taken=True)
    dbra_exp, _ = instruction_cost(
        dbra, env, config, branch_taken=False, dbcc_expired=True
    )
    setup = Instruction("MOVE", None, (imm(0), dreg(2)))
    setup_c, _ = instruction_cost(setup, env, config)

    if polling:
        poll_sample, poll_iter, poll_exit = _poll_costs(env, config)

    L = config.net_byte_latency
    t = 0.0
    tx_free = 0.0  # mover picked up the previous outgoing byte
    deliver_prev = -1e18  # mover free after delivering previous byte
    arrivals: list[float] = []  # delivery times of incoming bytes
    last_read = -1e18  # my rx register drained at this time
    next_in = 0  # index of next incoming byte to read
    out_idx = 0  # outgoing byte counter
    periods = []

    def wait_until(cond_time: float) -> float:
        """Advance t past a poll loop (polling) or return block target."""
        nonlocal t
        if not polling:
            t = max(t, cond_time)
            return t
        while True:
            sample = t + poll_sample
            if cond_time <= sample:
                t = sample + poll_exit
                return t
            t = sample + poll_iter

    for e in range(n_elements):
        t_start = t
        for kind, pre, access in costs:
            if kind == "plain":
                t += pre
            elif kind == "tx":
                t += pre
                # must wait for tx register free (previous byte picked up)
                wait_until(tx_free)
                t += access
                # mover: picks up when free after previous delivery
                pickup = max(t, deliver_prev)
                deliver = max(pickup + L, last_read)
                arrivals.append(deliver)
                tx_free = pickup
                deliver_prev = deliver
                out_idx += 1
            elif kind == "rx":
                t += pre
                # by ring symmetry my incoming bytes follow my own send
                # schedule: arrival of byte next_in is arrivals[next_in]
                arrival = arrivals[next_in]
                wait_until(arrival)
                t += access
                last_read = t
                next_in += 1
        if pe_loop:
            t += dbra_taken if e < n_elements - 1 else dbra_exp
        periods.append(t - t_start)

    steady = periods[-1] if periods else 0.0
    setup = setup_c if pe_loop else 0.0
    return CommPhase(
        cycles=setup + t,
        per_element_steady=steady,
        setup_cycles=setup,
    )
