"""The macro (performance-model) engine.

The micro engine executes real instructions and is exact, but Python
cannot instruction-step an n=256 matrix multiplication (10⁸ simulated
instructions) in reasonable time.  The macro engine evaluates the *same
generated programs* analytically:

* static per-fragment costs come from the same
  :func:`repro.m68k.timing.instruction_timing` tables, applied to the same
  assembled fragments the micro engine runs;
* the data-dependent multiply times come from the same multiplier schedule
  (:func:`repro.programs.data.multiplier_schedule`) over the same seeded B
  matrices — summed per-PE for the asynchronous modes and maxed across PEs
  per broadcast for SIMD, which is Equation (1)/(2) of the paper;
* network-transfer costs come from a symmetric-ring pipeline fixed point
  over the actual transfer-fragment instruction timings;
* SIMD overlap is a bottleneck model: each repeating unit proceeds at the
  slowest of {PE execution, MC issue rate, Fetch Unit Controller transfer
  rate}.

Cross-engine agreement is enforced by tests (micro vs macro within a few
percent at n ≤ 16), which is what licenses using the macro engine for the
paper-scale sweeps in Figures 6–12.
"""

from repro.timing_model.fragments import CostEnv, StaticCost, static_cost
from repro.timing_model.mulstats import (
    expected_max_ones,
    expected_ones,
    ones_of_schedule,
)
from repro.timing_model.pipeline import comm_pipeline
from repro.timing_model.models import ModelResult, predict_matmul

__all__ = [
    "CostEnv",
    "StaticCost",
    "static_cost",
    "expected_ones",
    "expected_max_ones",
    "ones_of_schedule",
    "comm_pipeline",
    "ModelResult",
    "predict_matmul",
]
