"""Static cost analysis of assembled program fragments.

Walks the *same instruction lists* the micro engine executes and sums
their manual timings under a mode's wait-state environment, splitting by
timing category and pulling the data-dependent multiplies out as counts
(their variable ``2·ones`` cycles are added by the models from the
multiplier schedule; their fixed 38 cycles are counted here).

Device accesses (network registers) are recognized by operand address so
that DRAM refresh and main-memory wait states are charged only to real
memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.m68k.addressing import Mode
from repro.m68k.instructions import BRANCHES, DBCC, Instruction
from repro.m68k.timing import instruction_timing
from repro.machine.config import PrototypeConfig


@dataclass(frozen=True)
class CostEnv:
    """Wait-state environment for one execution mode.

    ``ws_stream`` applies to instruction-stream accesses (queue in SIMD,
    main RAM otherwise); ``ws_data`` to operand RAM accesses; ``ws_device``
    to network/timer registers.  ``refresh_per_call`` is the average DRAM
    refresh stall per *bus call* (the micro engine checks refresh once per
    call), applied to RAM calls only; ``stream_is_ram`` says whether
    instruction fetches see DRAM refresh (False in SIMD mode).
    """

    ws_stream: float
    ws_data: float
    ws_device: float
    ws_status: float
    refresh_per_call: float
    stream_is_ram: bool

    @classmethod
    def for_mode(cls, config: PrototypeConfig, simd_stream: bool) -> "CostEnv":
        return cls(
            ws_stream=config.ws_queue if simd_stream else config.ws_main,
            ws_data=config.ws_main,
            ws_device=config.ws_device,
            ws_status=config.ws_status,
            refresh_per_call=config.refresh.average_stall_per_access,
            stream_is_ram=not simd_stream,
        )


@dataclass
class StaticCost:
    """Aggregated fixed cost of a fragment (one execution)."""

    cycles: float = 0.0
    by_category: dict[str, float] = field(default_factory=dict)
    var_multiplies: int = 0  #: count of data-dependent MULU/MULS executions
    var_category: str = "mult"

    def add(self, cycles: float, category: str) -> None:
        self.cycles += cycles
        self.by_category[category] = self.by_category.get(category, 0.0) + cycles

    def scaled(self, times: float) -> "StaticCost":
        out = StaticCost(
            cycles=self.cycles * times,
            by_category={k: v * times for k, v in self.by_category.items()},
            var_multiplies=int(self.var_multiplies * times),
            var_category=self.var_category,
        )
        return out

    def __iadd__(self, other: "StaticCost") -> "StaticCost":
        self.cycles += other.cycles
        for k, v in other.by_category.items():
            self.by_category[k] = self.by_category.get(k, 0.0) + v
        self.var_multiplies += other.var_multiplies
        return self

    def copy(self) -> "StaticCost":
        return self.scaled(1.0)


def _device_class(op, config: PrototypeConfig) -> str | None:
    """Classify an absolute operand: None (RAM), "status", or "device"."""
    if op.mode in (Mode.ABS_L, Mode.ABS_W) and isinstance(op.value, int):
        addr = op.value
        if 0 <= addr < config.ram_size:
            return None
        if addr == config.net_status_addr:
            return "status"
        return "device"
    return None


def instruction_cost(
    instr: Instruction,
    env: CostEnv,
    config: PrototypeConfig,
    *,
    branch_taken: bool | None = None,
    dbcc_expired: bool = False,
) -> tuple[float, bool]:
    """Fixed cycles of one instruction execution; True if data-dep MULU.

    Data-dependent multiplies are charged their 38-cycle base (the
    ``2·ones`` part is the models' job).  Shifts take their count from the
    immediate operand (the programs only use immediate-count shifts).
    """
    m = instr.mnemonic
    is_var_mul = m in ("MULU", "MULS")
    kw = {}
    if is_var_mul:
        kw["src_value"] = 0  # base 38 cycles
    if m in BRANCHES or m in DBCC:
        kw["branch_taken"] = branch_taken
        kw["dbcc_expired"] = dbcc_expired
    t = instruction_timing(instr, **kw)

    # Split data accesses between RAM and device by operand address.
    device_data = 0
    status_data = 0
    for op in instr.operands:
        klass = _device_class(op, config)
        if klass == "device":
            device_data += 1
        elif klass == "status":
            status_data += 1
    data_accesses = t.data_reads + t.data_writes
    status_accesses = min(status_data, data_accesses)
    device_accesses = min(device_data, data_accesses - status_accesses)
    ram_accesses = data_accesses - device_accesses - status_accesses

    cycles = (
        t.cycles
        + env.ws_stream * t.stream_words
        + env.ws_data * ram_accesses
        + env.ws_device * device_accesses
        + env.ws_status * status_accesses
    )
    # Refresh: one opportunity per bus call touching RAM.
    calls = 0
    if t.stream_words and env.stream_is_ram:
        calls += 1
    if ram_accesses:
        calls += 1  # read and/or write calls; approximation: dominated by 1
        if t.data_reads and t.data_writes and device_accesses == 0:
            calls += 1
    cycles += env.refresh_per_call * calls
    return cycles, is_var_mul


def static_cost(
    instrs: list[Instruction], env: CostEnv, config: PrototypeConfig
) -> StaticCost:
    """Fixed cost of executing a straight-line fragment once."""
    out = StaticCost()
    for instr in instrs:
        if instr.mnemonic in BRANCHES or instr.mnemonic in DBCC:
            raise ValueError(
                f"static_cost is for straight-line fragments; got {instr} — "
                "model loops with loop_overhead()"
            )
        cycles, is_var = instruction_cost(instr, env, config)
        out.add(cycles, instr.timecat)
        if is_var:
            out.var_multiplies += 1
    return out


def loop_overhead(
    count: int, env: CostEnv, config: PrototypeConfig, category: str = "control"
) -> StaticCost:
    """PE-side DBRA loop cost: counter init + (count−1) taken + 1 expired."""
    from repro.m68k.addressing import dreg, imm

    out = StaticCost()
    if count <= 0:
        return out
    init = Instruction("MOVE", None, (imm(0), dreg(0)), timecat=category)
    init_c, _ = instruction_cost(init, env, config)
    dbra = Instruction("DBRA", None, (dreg(0),), target=0, timecat=category)
    taken_c, _ = instruction_cost(dbra, env, config, branch_taken=True)
    exp_c, _ = instruction_cost(
        dbra, env, config, branch_taken=False, dbcc_expired=True
    )
    out.add(init_c + (count - 1) * taken_c + exp_c, category)
    return out
