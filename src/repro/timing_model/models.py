"""Closed-form/vectorized execution-time predictions for all four modes.

Every prediction mirrors the *structure of the generated programs* (see
:mod:`repro.programs`): the same fragments, the same loop counts, the same
multiplier schedule.  The only non-trivial modelling choices, validated
against the micro engine by the cross-engine tests, are:

* **per-step max coupling** for the asynchronous modes: the S/MIMD barrier
  (and MIMD's blocking ring transfers) re-align PEs every rotation step,
  so the data-dependent multiply skew costs ``Σ_j max_i`` rather than the
  uncoupled ``max_i Σ_j`` of the paper's Equation (2) — the difference is
  small because per-step skew is bounded;
* **per-instruction max coupling** for SIMD (the paper's Equation (1)),
  applied within each MC group, with cross-group alignment at the transfer
  phases;
* **bottleneck overlap** for SIMD control flow: each phase takes the
  slower of the PE execution time and the MC issue + Fetch Unit transfer
  time; when PEs dominate (the usual case), MC control flow vanishes from
  the critical path — the paper's superlinearity mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.m68k.addressing import absl, areg, dreg, imm
from repro.m68k.assembler import assemble
from repro.m68k.instructions import Instruction, Size
from repro.m68k.timing import CYCLE_SECONDS, instruction_timing
from repro.machine.config import PrototypeConfig
from repro.machine.modes import ExecutionMode
from repro.machine.partition import Partition
from repro.mc import MCCostModel
from repro.programs.common import (
    inner_body_source,
    layout_symbols,
    reset_tables_source,
    rotate_source,
    setup_v_source,
)
from repro.programs.data import MatmulLayout, multiplier_schedule
from repro.timing_model.fragments import (
    CostEnv,
    static_cost,
    loop_overhead,
)
from repro.timing_model.mulstats import ones_of_schedule
from repro.timing_model.pipeline import comm_pipeline


@dataclass
class ModelResult:
    """Macro-engine prediction for one configuration."""

    mode: ExecutionMode
    n: int
    p: int
    added_multiplies: int
    cycles: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles * CYCLE_SECONDS


# ---------------------------------------------------------------------------
def _assemble_fragment(source: str, layout: MatmulLayout,
                       config: PrototypeConfig):
    symbols = layout_symbols(layout)
    symbols.update(config.device_symbols())
    return assemble(source, predefined=symbols).instruction_list()


def _cost(source, layout, config, env):
    return static_cost(_assemble_fragment(source, layout, config), env, config)


class _Pieces:
    """Shared fragment costs for one (config, layout, m, env)."""

    def __init__(self, config, layout, m, env):
        self.body = _cost(inner_body_source(m), layout, config, env)
        self.setup_v = _cost(setup_v_source(), layout, config, env)
        self.reset = _cost(reset_tables_source(), layout, config, env)
        self.rotate = _cost(rotate_source(layout), layout, config, env)
        self.clear_unit = _cost(
            "        .timecat other\n        CLR.W (A1)+", layout, config, env
        )
        self.lea_c = _cost(
            "        .timecat other\n        LEA CBASE,A1", layout, config, env
        )
        self.halt = _cost("        .timecat control\n        HALT",
                          layout, config, env)


def _var_schedule(b: np.ndarray, p: int) -> np.ndarray:
    """2·ones of the multiplier schedule, shape (p, n, cols)."""
    return 2.0 * ones_of_schedule(multiplier_schedule(b, p))


# ---------------------------------------------------------------------------
def predict_serial(
    config: PrototypeConfig, n: int, m: int, b: np.ndarray
) -> ModelResult:
    layout = MatmulLayout(n, 1)
    env = CostEnv.for_mode(config, simd_stream=False)
    pieces = _Pieces(config, layout, m, env)
    total = {"mult": 0.0, "comm": 0.0, "control": 0.0, "other": 0.0, "sync": 0.0}

    def add(cost, scale=1.0):
        for cat, cyc in cost.by_category.items():
            total[cat] += cyc * scale

    words = n * n
    add(pieces.lea_c)
    add(loop_overhead(words, env, config, "other"))
    add(pieces.clear_unit, words)

    # preamble: LEA BBASE,A2 / LEA CBASE,A5
    add(_cost("        .timecat control\n        LEA BBASE,A2\n"
              "        LEA CBASE,A5", layout, config, env))
    add(loop_overhead(n, env, config))  # c loop
    # per c: LEA ABASE,A0 (control) + r-loop overhead + ADDA
    add(_cost("        .timecat control\n        LEA ABASE,A0",
              layout, config, env), n)
    adda = Instruction("ADDA", Size.WORD, (imm(layout.col_bytes), areg(5)),
                       timecat="control")
    from repro.timing_model.fragments import instruction_cost

    adda_c, _ = instruction_cost(adda, env, config)
    total["control"] += n * adda_c
    add(loop_overhead(n, env, config), n)  # r loops
    # per (c, r): multiplier load + C column reset (mult category)
    add(_cost("        .timecat mult\n        MOVE.W (A2)+,D1\n"
              "        MOVEA.L A5,A1", layout, config, env), n * n)
    add(loop_overhead(n, env, config), n * n)  # k loops
    add(pieces.body, n * n * n)  # fixed body (MULU at base 38)
    # data-dependent multiply time: every B element drives n·(1+m) muls
    total["mult"] += float(n * (1 + m) * 2.0 * ones_of_schedule(b).sum())
    add(pieces.halt)

    cycles = sum(total.values())
    return ModelResult(ExecutionMode.SERIAL, n, 1, m, cycles,
                       {k: v for k, v in total.items() if v})


# ---------------------------------------------------------------------------
def _async_common(config, layout, m, env, *, polling: bool):
    """Fixed per-PE cost pieces shared by MIMD and S/MIMD."""
    n, cols = layout.n, layout.cols
    pieces = _Pieces(config, layout, m, env)
    total = {"mult": 0.0, "comm": 0.0, "control": 0.0, "other": 0.0, "sync": 0.0}

    def add(cost, scale=1.0):
        for cat, cyc in cost.by_category.items():
            total[cat] += cyc * scale

    words = n * cols
    add(pieces.lea_c)
    add(loop_overhead(words, env, config, "other"))
    add(pieces.clear_unit, words)
    add(loop_overhead(n, env, config))  # j loop
    add(pieces.reset, n)
    add(loop_overhead(cols, env, config), n)  # v loops
    add(pieces.setup_v, n * cols)
    add(loop_overhead(n, env, config), n * cols)  # k loops
    add(pieces.body, n * cols * n)
    add(pieces.rotate, n)
    phase = comm_pipeline(config, env, polling=polling, n_elements=n)
    total["comm"] += n * phase.cycles
    add(pieces.halt)
    return total, phase


def _barrier_cost(config: PrototypeConfig) -> float:
    """MOVE.W SIMDSPACE,D5: stream from RAM, data word from the queue."""
    instr = Instruction(
        "MOVE", Size.WORD, (absl(config.simd_space_base), dreg(5))
    )
    t = instruction_timing(instr)
    return (
        t.cycles
        + config.ws_main * t.stream_words
        + config.ws_queue * t.data_reads
        + config.refresh.average_stall_per_access
    )


def predict_async(
    config: PrototypeConfig,
    n: int,
    p: int,
    m: int,
    b: np.ndarray,
    *,
    barrier: bool,
) -> ModelResult:
    """MIMD (``barrier=False``) or S/MIMD (``barrier=True``) prediction."""
    layout = MatmulLayout(n, p)
    env = CostEnv.for_mode(config, simd_stream=False)
    total, _ = _async_common(config, layout, m, env, polling=not barrier)

    # Data-dependent multiply time with per-step coupling: each PE pays its
    # own multiply time (mean over PEs for the breakdown); the slowest PE
    # per rotation step sets the pace (skew charged to sync/comm).
    var = _var_schedule(b, p)  # (p, n, cols), cycles per multiply pass
    per_step = n * (1 + m) * var.sum(axis=2)  # (p, n_steps)
    own_mean = float(per_step.mean(axis=0).sum())
    coupled = float(per_step.max(axis=0).sum())
    skew_wait = coupled - own_mean  # mean wait at the per-step sync point
    total["mult"] += own_mean
    if barrier:
        total["sync"] += n * _barrier_cost(config) + skew_wait
    else:
        total["comm"] += skew_wait

    cycles = sum(total.values())
    mode = ExecutionMode.SMIMD if barrier else ExecutionMode.MIMD
    return ModelResult(mode, n, p, m, cycles,
                       {k: v for k, v in total.items() if v})


# ---------------------------------------------------------------------------
def predict_simd(
    config: PrototypeConfig, n: int, p: int, m: int, b: np.ndarray
) -> ModelResult:
    layout = MatmulLayout(n, p)
    cols = layout.cols
    env = CostEnv.for_mode(config, simd_stream=True)
    pieces = _Pieces(config, layout, m, env)
    mc = MCCostModel(config)
    total = {"mult": 0.0, "comm": 0.0, "control": 0.0, "other": 0.0, "sync": 0.0}

    def add(cost, scale=1.0):
        for cat, cyc in cost.by_category.items():
            total[cat] += cyc * scale

    # MC issue cost of one EnqueueBlock inside a loop iteration.
    issue = mc.device_write
    loop_iter = mc.loop_back

    def mc_loop(count: int, per_iter: float) -> float:
        if count == 0:
            return mc.loop_setup
        return (
            mc.loop_setup + count * per_iter
            + (count - 1) * mc.loop_back + mc.loop_exit
        )

    cpw = config.controller_cycles_per_word

    def unit(pe_cost: float, words: int) -> float:
        """Sustained repeating unit: slowest of PE / MC issue / controller."""
        return max(pe_cost, issue + loop_iter, cpw * words)

    # ---- clear phase ----
    words_c = n * cols
    pe_clear = unit(pieces.clear_unit.cycles, 1)
    total["other"] += pieces.lea_c.cycles + words_c * pe_clear
    # ---- compute phases ----
    # Per (j, v) pass: setup_v + n bodies.  PE-side fixed costs:
    body_fixed = pieces.body.cycles  # includes (1+m) MULUs at base 38
    body_words = sum(
        i.encoded_words()
        for i in _assemble_fragment(inner_body_source(m), layout, config)
    )
    setup_words = sum(
        i.encoded_words()
        for i in _assemble_fragment(setup_v_source(), layout, config)
    )
    # Variable multiply time: per-instruction max within each MC group.
    part = Partition(config, p)
    group = part.pes_per_mc_used  # PEs per Fetch Unit
    var = _var_schedule(b, p).reshape(-1, group, n, cols)  # (groups, g, n, cols)
    gmax = var.max(axis=1)  # (groups, n_steps, cols): per-broadcast max
    # compute phase per (group, j): Σ_v [setup_v + n·(body_fixed + (1+m)·max)]
    pass_var = n * (1 + m) * gmax  # (groups, n, cols)
    pe_pass_fixed = (
        max(pieces.setup_v.cycles, issue + loop_iter, cpw * setup_words)
        + n * max(body_fixed, issue + loop_iter, cpw * body_words)
    )
    # MC cost per (j): reset + v-loop of (setup issue + body loop)
    mc_phase_j = issue + mc_loop(cols, issue + mc_loop(n, issue))
    pe_phase_gj = (
        pieces.reset.cycles + cols * pe_pass_fixed + pass_var.sum(axis=2)
    )  # (groups, n)
    phase_j = np.maximum(pe_phase_gj.max(axis=0), mc_phase_j)  # (n,)
    # The whole compute phase (reset, setup_v, bodies) is tagged ``mult``
    # in the program source, matching the micro engine's attribution.
    total["mult"] += float(phase_j.sum())

    # ---- transfer phases ----
    # In SIMD the transfer loop runs on the MC, so the PE-side phase is the
    # element pipeline without any DBRA/counter machinery.
    phase = comm_pipeline(config, env, polling=False, n_elements=n,
                          pe_loop=False)
    rotate_unit = max(pieces.rotate.cycles, issue)
    mc_comm_j = issue + mc_loop(n, issue)
    pe_comm_j = phase.cycles
    comm_j = max(pe_comm_j, mc_comm_j)
    total["other"] += n * rotate_unit
    total["comm"] += n * comm_j

    # ---- startup + finish ----
    startup = mc.device_write + cpw * 2  # first block reaches the queue
    total["control"] += startup + pieces.halt.cycles

    cycles = sum(total.values())
    return ModelResult(ExecutionMode.SIMD, n, p, m, cycles,
                       {k: v for k, v in total.items() if v})


# ---------------------------------------------------------------------------
def predict_matmul(
    mode: ExecutionMode,
    config: PrototypeConfig,
    n: int,
    p: int,
    *,
    added_multiplies: int = 0,
    b: np.ndarray,
) -> ModelResult:
    """Predict the execution time of one (mode, n, p, m) configuration."""
    if mode is ExecutionMode.SERIAL:
        return predict_serial(config, n, added_multiplies, b)
    if mode is ExecutionMode.SIMD:
        return predict_simd(config, n, p, added_multiplies, b)
    return predict_async(
        config, n, p, added_multiplies, b,
        barrier=mode is ExecutionMode.SMIMD,
    )
