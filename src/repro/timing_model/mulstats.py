"""Statistics of the data-dependent multiply time.

For uniform random b over ``2**bits`` values, ``ones(b)`` is
Binomial(bits, 1/2).  The SIMD-vs-asynchronous tradeoff the paper measures
is governed by the gap between the *expected maximum* over p PEs and the
mean: each broadcast multiply costs ``38 + 2·max_i ones(b_i)`` in SIMD
mode but ``38 + 2·ones(b_i)`` per PE asynchronously, so the decoupling
benefit per multiply is ``2·(E[max_p] − E)`` cycles (minus the SIMD fetch
advantage — see :mod:`repro.core.crossover`).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import stats

from repro.utils.bitops import ones_count


def expected_ones(bits: int) -> float:
    """E[ones(b)] for b uniform over ``2**bits`` values."""
    return bits / 2.0


@lru_cache(maxsize=None)
def expected_max_ones(bits: int, p: int) -> float:
    """Exact E[max of p iid Binomial(bits, 1/2)] via the order-statistic CDF.

    ``E[max] = Σ_k k · (F(k)^p − F(k-1)^p)``.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    k = np.arange(bits + 1)
    cdf = stats.binom.cdf(k, bits, 0.5)
    cdf_prev = np.concatenate([[0.0], cdf[:-1]])
    return float(np.sum(k * (cdf**p - cdf_prev**p)))


def max_ones_gap(bits: int, p: int) -> float:
    """E[max_p ones] − E[ones]: the per-multiply decoupling lever (in bits)."""
    return expected_max_ones(bits, p) - expected_ones(bits)


def ones_of_schedule(schedule: np.ndarray) -> np.ndarray:
    """Popcounts of a multiplier schedule array (any shape)."""
    return ones_count(schedule.astype(np.uint64), 16)


def simd_mult_extra_cycles(schedule_ones: np.ndarray) -> float:
    """Σ over broadcasts of 2·max_i ones — the SIMD variable multiply time.

    ``schedule_ones`` has shape (p, n_steps, cols); the max is over PEs
    (axis 0) because a broadcast multiply is released to completion only at
    the slowest PE's pace, and the result is summed over every (step,
    column) inner-loop pass.  Multiply by n·(1+m) passes externally.
    """
    return float(2.0 * schedule_ones.max(axis=0).sum())


def async_mult_extra_cycles(schedule_ones: np.ndarray) -> np.ndarray:
    """Per-(PE, step) variable multiply cycles for the asynchronous modes.

    Returns shape (p, n_steps): Σ_v 2·ones for each PE and rotation step,
    ready for the per-step max (S/MIMD barrier coupling) or the global sum.
    """
    return 2.0 * schedule_ones.sum(axis=2)
