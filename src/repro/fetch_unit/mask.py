"""The Fetch Unit mask register."""

from __future__ import annotations

from repro.errors import ConfigurationError


class MaskRegister:
    """Selects which PEs of an MC group participate in SIMD instructions.

    The register holds a bit per PE slot of the group.  Its *current* value
    is captured by the Fetch Unit whenever a word is enqueued, so changing
    the mask never affects words already in the queue (matching the
    hardware described in the paper).
    """

    def __init__(self, pe_slots: tuple[int, ...]) -> None:
        if not pe_slots:
            raise ConfigurationError("mask register needs at least one PE slot")
        self.pe_slots = tuple(pe_slots)
        self._enabled = frozenset(pe_slots)

    @property
    def enabled(self) -> frozenset[int]:
        """The currently enabled PE slots."""
        return self._enabled

    def set_enabled(self, slots) -> None:
        slots = frozenset(slots)
        unknown = slots - frozenset(self.pe_slots)
        if unknown:
            raise ConfigurationError(
                f"mask enables unknown PE slots {sorted(unknown)}"
            )
        self._enabled = slots

    def enable_all(self) -> None:
        self._enabled = frozenset(self.pe_slots)

    def set_from_bits(self, bits: int) -> None:
        """Interpret ``bits`` with bit *i* controlling ``pe_slots[i]``."""
        self.set_enabled(
            slot for i, slot in enumerate(self.pe_slots) if bits & (1 << i)
        )

    def __contains__(self, slot: int) -> bool:
        return slot in self._enabled
