"""The Fetch Unit Queue and its release-on-all-requests rule.

Items carry either a broadcast :class:`~repro.m68k.instructions.Instruction`
or a bare synchronization word (for the barrier mechanism).  Each item
occupies as many queue slots as its encoded word count — the queue is a
word FIFO in hardware — and remembers the mask under which it was enqueued.

PEs call :meth:`FetchUnitQueue.request`; the head item is released only
when *every* PE in its mask has a pending request.  PEs not in the mask
keep waiting for a later item that includes them (disabled PEs "do not
participate in the instruction and wait until an instruction is broadcast
for which they are enabled").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from repro.errors import SimulationError
from repro.m68k.instructions import Instruction
from repro.sim import Environment, Event


@dataclass(frozen=True)
class QueueItem:
    """One queue entry: an instruction or a synchronization word."""

    payload: Instruction | None  #: None = bare data word (barrier token)
    words: int  #: queue slots occupied / PE fetch accesses required
    mask: frozenset[int]  #: PE slots that must fetch this item

    @property
    def is_sync(self) -> bool:
        return self.payload is None


def sync_item(mask) -> QueueItem:
    """A one-word synchronization token for the barrier mechanism."""
    return QueueItem(payload=None, words=1, mask=frozenset(mask))


class FetchUnitQueue:
    """Finite word-FIFO with the all-enabled-PEs release rule."""

    def __init__(
        self, env: Environment, capacity_words: int, name: str = "fuq"
    ) -> None:
        if capacity_words < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity_words}")
        self.env = env
        self.name = name
        self.capacity_words = capacity_words
        self._items: deque[QueueItem] = deque()
        self._words_used = 0
        self._requests: dict[int, Event] = {}
        self._space_waiters: deque[tuple[Event, QueueItem]] = deque()
        # -- statistics ---------------------------------------------------
        self.releases = 0
        self.words_enqueued = 0
        self.empty_stall_cycles = 0.0  #: PE time spent waiting on empty queue
        self._all_arrived_at: float | None = None
        self.high_water = 0
        #: (time, words_used) samples, recorded at every occupancy change.
        self.occupancy_samples: list[tuple[float, int]] = []

    def _sample(self) -> None:
        self.occupancy_samples.append((self.env.now, self._words_used))

    # ------------------------------------------------------------------
    @property
    def words_used(self) -> int:
        return self._words_used

    @property
    def is_empty(self) -> bool:
        return not self._items

    def space_left(self) -> int:
        return self.capacity_words - self._words_used

    # ------------------------------------------------------------------
    def enqueue(self, item: QueueItem):
        """Generator: append ``item``, blocking while the FIFO lacks space."""
        if not item.mask:
            raise SimulationError("cannot enqueue an item with an empty mask")
        if item.words > self.capacity_words:
            raise SimulationError(
                f"item of {item.words} words exceeds queue capacity "
                f"{self.capacity_words}"
            )
        if item.words > self.space_left() or self._space_waiters:
            ev = self.env.event(name=f"space:{self.name}")
            self._space_waiters.append((ev, item))
            yield ev
        else:
            self._admit(item)

    def try_enqueue(self, item: QueueItem) -> bool:
        """Non-blocking enqueue; False when the FIFO lacks space."""
        if item.words > self.space_left() or self._space_waiters:
            return False
        self._admit(item)
        return True

    def _admit(self, item: QueueItem) -> None:
        self._items.append(item)
        self._words_used += item.words
        self.words_enqueued += item.words
        self.high_water = max(self.high_water, self._words_used)
        self._sample()
        self._try_release()

    # ------------------------------------------------------------------
    def request(self, pe_slot: int):
        """Generator (PE side): wait for the next item this PE may fetch."""
        if pe_slot in self._requests:
            raise SimulationError(
                f"PE slot {pe_slot} already has a pending request on {self.name}"
            )
        ev = self.env.event(name=f"req:{self.name}:{pe_slot}")
        self._requests[pe_slot] = ev
        self._try_release()
        item = yield ev
        return item

    # ------------------------------------------------------------------
    def _try_release(self) -> None:
        """Release head items while their whole mask has requests pending."""
        while self._items:
            head = self._items[0]
            if not head.mask <= self._requests.keys():
                # Record when the full mask first assembled with an empty /
                # not-yet-matching queue for empty-stall statistics.
                return
            # All enabled PEs are waiting: release.
            if self._all_arrived_at is not None:
                self.empty_stall_cycles += self.env.now - self._all_arrived_at
                self._all_arrived_at = None
            self._items.popleft()
            self._words_used -= head.words
            self.releases += 1
            self._sample()
            waiters = [self._requests.pop(slot) for slot in head.mask]
            for ev in waiters:
                ev.succeed(head)
            self._refill_from_waiters()
        # Queue empty: if some mask could be satisfied later, note the time
        # all *current* requesters assembled (approximation: first moment
        # the queue is empty with requests outstanding).
        if self._requests and self._all_arrived_at is None:
            self._all_arrived_at = self.env.now

    def _refill_from_waiters(self) -> None:
        while self._space_waiters:
            ev, item = self._space_waiters[0]
            if item.words > self.capacity_words - self._words_used:
                return
            self._space_waiters.popleft()
            self._items.append(item)
            self._words_used += item.words
            self.words_enqueued += item.words
            self.high_water = max(self.high_water, self._words_used)
            ev.succeed()
