"""The Fetch Unit Queue and its release-on-all-requests rule.

Items carry either a broadcast :class:`~repro.m68k.instructions.Instruction`
or a bare synchronization word (for the barrier mechanism).  Each item
occupies as many queue slots as its encoded word count — the queue is a
word FIFO in hardware — and remembers the mask under which it was enqueued.

PEs call :meth:`FetchUnitQueue.request`; the head item is released only
when *every* PE in its mask has a pending request.  PEs not in the mask
keep waiting for a later item that includes them (disabled PEs "do not
participate in the instruction and wait until an instruction is broadcast
for which they are enabled").

Lockstep tier (see :mod:`repro.sim.lockstep`): PEs instead call
:meth:`FetchUnitQueue.request_at` with a *stamped arrival* — their
bus-true time — without flushing their local clocks.  The release time
of the head item is then computed directly, ``T_r = max(admit time, max
of the mask's stamped arrivals)``, and a single **carrier** event fires
at ``T_r``, resuming the whole batch of waiting PEs synchronously.  One
heap event replaces the ~2·p (flush + succeed per PE) the event
rendezvous costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from repro.errors import SimulationError
from repro.m68k.instructions import Instruction
from repro.sim import Environment, Event
from repro.sim.lockstep import fire_event


@dataclass(frozen=True)
class QueueItem:
    """One queue entry: an instruction or a synchronization word."""

    payload: Instruction | None  #: None = bare data word (barrier token)
    words: int  #: queue slots occupied / PE fetch accesses required
    mask: frozenset[int]  #: PE slots that must fetch this item

    @property
    def is_sync(self) -> bool:
        return self.payload is None


def sync_item(mask) -> QueueItem:
    """A one-word synchronization token for the barrier mechanism."""
    return QueueItem(payload=None, words=1, mask=frozenset(mask))


class FetchUnitQueue:
    """Finite word-FIFO with the all-enabled-PEs release rule."""

    def __init__(
        self,
        env: Environment,
        capacity_words: int,
        name: str = "fuq",
        lockstep: bool = False,
    ) -> None:
        if capacity_words < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity_words}")
        self.env = env
        self.name = name
        self.capacity_words = capacity_words
        self.lockstep = lockstep
        self._items: deque[QueueItem] = deque()
        self._words_used = 0
        self._requests: dict[int, Event] = {}
        self._space_waiters: deque[tuple[Event, QueueItem]] = deque()
        # -- lockstep rendezvous state -------------------------------------
        self._arrivals: dict[int, float] = {}  #: stamped bus-true arrivals
        #: Schedule instants of the stamped arrivals: the time the pure
        #: event engine *scheduled* the charge event that completes at
        #: the arrival (``arrival - last charge duration``).  Heap order
        #: at equal timestamps follows schedule order, so this is what
        #: breaks admit-vs-release ties in :meth:`_settle_admits`.
        self._scheds: dict[int, float] = {}
        self._carrier_pending = False  #: a carrier event is on the heap
        self._releasing = False  #: inside the carrier's release loop
        #: Release time at which the settled occupancy last hit zero —
        #: the event-schedule instant the queue became empty (clamps the
        #: empty-stall latch in :meth:`_settle_admits`).
        self._stats_empty_since = 0.0
        self._ls_stall_start: float | None = None  #: latched stall origin
        #: Per-item admit times, parallel to ``_items`` (lockstep only) —
        #: the release-time floor, since fast-forwarded admits may be
        #: recorded before env.now reaches them.
        self._admit_times: deque[float] = deque()
        #: Bulk-staged (item, transfer_cycles) pairs from the controller;
        #: admit times are computed analytically as space frees.
        self._staged: deque[tuple[QueueItem, float]] = deque()
        self._stage_clock = 0.0  #: admit-chain time of the staged block
        self._stage_done: Event | None = None  #: fired when staging drains
        # -- vectorized tier (repro.sim.vectorized) ------------------------
        #: Attached VectorExecutor, or None (plain lockstep).
        self._vec = None
        #: Slots whose pending request came through
        #: :meth:`register_request_inline` — i.e. PEs streaming through
        #: the CPU loop's recycled-event park, which understands the
        #: vectorized ``(None, t)`` sentinel.  Generator-path requests
        #: (trace_waits fetches, barrier data reads) are never batched.
        self._inline_slots: set[int] = set()
        # -- statistics ---------------------------------------------------
        self.releases = 0
        self.words_enqueued = 0
        self.empty_stall_cycles = 0.0  #: PE time spent waiting on empty queue
        self._all_arrived_at: float | None = None
        self._hw = 0
        #: (time, words_used) samples, recorded at every occupancy change.
        self._occ: list[tuple[float, int]] = []
        #: Lockstep: admits recorded at computed (possibly future) times,
        #: held back until every release that precedes them has been
        #: computed, then applied in true time order — staging admits
        #: words long before the lazy rendezvous computation pops earlier
        #: releases, and applying them eagerly would show occupancy peaks
        #: the event schedule never reaches.  Entries are
        #: ``(t, words, sample, sched)`` kept sorted by ``t``; ``sample``
        #: is False for space-waiter refills, which the event engine
        #: admits without an occupancy sample.  ``sched`` is the schedule
        #: instant of the admit's transfer-timeout event (staged free
        #: admits), or None for admits that happen *inside* an already
        #: executing event — space-bound refills, release cascades, and
        #: real-time enqueues — which therefore precede any tied release
        #: still sitting on the heap.
        self._pending_admits: list[tuple[float, int, bool, float | None]] = []
        self._stats_words = 0  #: settled occupancy (lockstep stats view)
        self.lockstep_releases = 0  #: items released via computed rendezvous
        self.lockstep_batch_pes = 0  #: PE resumptions delivered by carriers
        self.lockstep_carriers = 0  #: carrier events scheduled
        self.vectorized_instructions = 0  #: words executed by vector batches
        self.vectorized_batches = 0  #: batches delivered (1 resumption/PE)
        self.scalar_fallbacks = 0  #: instruction words released scalar
        #: while a VectorExecutor was attached

    def _sample(self) -> None:
        self._occ.append((self.env.now, self._words_used))

    # -- statistics settlement (lockstep) ------------------------------
    def _push_admit(self, t: float, words: int, sample: bool = True,
                    sched: float | None = None) -> None:
        pend = self._pending_admits
        i = len(pend)
        while i > 0 and pend[i - 1][0] > t:
            i -= 1
        pend.insert(i, (t, words, sample, sched))

    def _settle_admits(self, limit: float, inclusive: bool = True,
                       enabler_sched: float = float("-inf"),
                       stall_view: tuple | None = None) -> None:
        """Apply pending admits up to ``limit`` to the stats view.

        The equal-time tie-break is causal, matching the event engine's
        heap order.  An admit that *enables* a release (the head admitted
        exactly at the release instant) is that release's last enabling
        event and processes first (``inclusive``).  An independent admit
        coinciding with an already-enabled release replays the heap's
        schedule order: at equal timestamps the event scheduled earlier
        pops first, so the admit's transfer timeout (scheduled one word
        transfer before ``t``) beats a release enabled by a *short*
        final charge and loses to one enabled by a *long* final charge.
        ``enabler_sched`` is the release's side of that comparison — the
        schedule instant of its last enabling arrival event; admits with
        ``sched`` None happened inside an already-executing event and
        always settle first.

        ``stall_view`` is ``(amin, asched)`` — the earliest arrival
        among the requesters registered in the event schedule and the
        schedule instant of that arrival's charge event — supplied when
        the settled occupancy is zero: the admit that turns it non-zero
        is the event engine's empty->non-empty transition, and any
        request registered against the empty queue before it starts the
        empty-stall clock (the pure engine latches ``_all_arrived_at``
        at its first such registration, clamped to the release that
        emptied the queue).  A request tying the admit's timestamp
        registered first only if its charge event was scheduled first
        (``asched < sched``).  A cascade admit — ``sched`` None landing
        exactly at the emptying release — refills synchronously inside
        that release's event and latches nothing.
        """
        pend = self._pending_admits
        while pend:
            t, words, sample, sched = pend[0]
            if t > limit:
                break
            if (t == limit and not inclusive
                    and sched is not None and sched > enabler_sched):
                break
            pend.pop(0)
            if (stall_view is not None and self._stats_words == 0
                    and self._ls_stall_start is None
                    and not (sched is None
                             and t == self._stats_empty_since)):
                amin, asched = stall_view
                if amin < t or (amin == t and sched is not None
                                and asched < sched):
                    self._ls_stall_start = max(self._stats_empty_since,
                                               amin)
            self._stats_words += words
            if self._stats_words > self._hw:
                self._hw = self._stats_words
            if sample:
                self._occ.append((t, self._stats_words))

    def _has_admit_tie(self, t_r: float) -> bool:
        """True when some pending *scheduled* admit lands exactly at
        ``t_r`` (entries are sorted; earlier ones settle unconditionally,
        so the tie entry need not be at the front)."""
        for entry in self._pending_admits:
            t = entry[0]
            if t > t_r:
                return False
            if t == t_r and entry[3] is not None:
                return True
        return False

    @property
    def high_water(self) -> int:
        self._settle_admits(float("inf"))
        return self._hw

    @property
    def occupancy_samples(self) -> list[tuple[float, int]]:
        self._settle_admits(float("inf"))
        return self._occ

    # ------------------------------------------------------------------
    @property
    def words_used(self) -> int:
        return self._words_used

    @property
    def is_empty(self) -> bool:
        return not self._items

    def space_left(self) -> int:
        return self.capacity_words - self._words_used

    # ------------------------------------------------------------------
    def enqueue(self, item: QueueItem):
        """Generator: append ``item``, blocking while the FIFO lacks space."""
        if not item.mask:
            raise SimulationError("cannot enqueue an item with an empty mask")
        if item.words > self.capacity_words:
            raise SimulationError(
                f"item of {item.words} words exceeds queue capacity "
                f"{self.capacity_words}"
            )
        if item.words > self.space_left() or self._space_waiters:
            ev = self.env.event(name=f"space:{self.name}")
            self._space_waiters.append((ev, item))
            yield ev
        else:
            self._admit(item)

    def try_enqueue(self, item: QueueItem) -> bool:
        """Non-blocking enqueue; False when the FIFO lacks space."""
        if item.words > self.space_left() or self._space_waiters:
            return False
        self._admit(item)
        return True

    def _admit(self, item: QueueItem) -> None:
        self._admit_at(item, self.env.now)

    def _admit_at(self, item: QueueItem, t: float,
                  sched: float | None = None) -> None:
        """Admit ``item`` at recorded time ``t`` (>= env.now for staged
        admits whose transfer completes in the simulated future).

        ``sched`` is the schedule instant of the admit's heap event
        (staged transfers only); None marks an admit performed inside an
        already-executing event — see :meth:`_settle_admits`.  The
        empty-stall latch happens there too, when this admit *settles*
        in event-schedule order, not here at the (possibly leapfrogged)
        env step that computed it."""
        self._items.append(item)
        self._words_used += item.words
        self.words_enqueued += item.words
        if self.lockstep:
            self._admit_times.append(t)
            self._push_admit(t, item.words, sched=sched)
        else:
            self._hw = max(self._hw, self._words_used)
            self._occ.append((t, self._words_used))
        self._try_release()

    # -- lockstep bulk staging -----------------------------------------
    def stage_block(self, entries):
        """Hand a whole command block over for computed admission.

        ``entries`` is a sequence of ``(item, transfer_cycles)`` pairs in
        transfer order.  Replaces the controller's per-item timeout +
        blocking-enqueue loop: admit times follow the same recurrence the
        event engine walks — each transfer starts when the previous item
        was admitted, and admission waits for FIFO space, which frees at
        computed release times — but entirely in arithmetic.

        Returns ``(t_end, None)`` when everything was admitted
        synchronously (``t_end`` = last admit time), or ``(None, event)``
        with an event that fires with ``t_end`` once releases free enough
        space.  The caller must re-join simulated time at ``t_end``
        before touching any other shared state.
        """
        if not self.lockstep:
            raise SimulationError(f"{self.name}: stage_block needs lockstep")
        if self._staged or self._stage_done is not None:
            raise SimulationError(
                f"{self.name}: a staged block is already in flight"
            )
        for item, _ in entries:
            if not item.mask:
                raise SimulationError(
                    "cannot enqueue an item with an empty mask")
            if item.words > self.capacity_words:
                raise SimulationError(
                    f"item of {item.words} words exceeds queue capacity "
                    f"{self.capacity_words}"
                )
        self._stage_clock = self.env.now
        self._staged.extend(entries)
        self._pump_staging(self.env.now)
        if not self._staged:
            return self._stage_clock, None
        ev = self.env.event(name=f"staged:{self.name}")
        self._stage_done = ev
        return None, ev

    def _pump_staging(self, free_at: float) -> float | None:
        """Admit staged items whose transfer is done and that fit now.

        ``free_at`` is the (computed) time the triggering release freed
        space; an item whose transfer completed earlier is admitted at
        that instant, exactly when the blocking enqueue would unblock.
        Returns the earliest admit time performed, or None if nothing
        was admitted (empty-stall latch support: an admit at ``free_at``
        is synchronous with the triggering release's cascade).
        """
        staged = self._staged
        first: float | None = None
        while staged:
            item, cycles = staged[0]
            if item.words > self.capacity_words - self._words_used:
                return first
            start = self._stage_clock
            ready = start + cycles
            bound = ready < free_at
            if bound:
                ready = free_at
            staged.popleft()
            self._stage_clock = ready
            if first is None:
                first = ready
            # A free admit's heap event (the transfer timeout) was
            # scheduled at the transfer start; a space-bound admit runs
            # inside the release cascade that freed its space (None).
            self._admit_at(item, ready, sched=None if bound else start)
        ev = self._stage_done
        if ev is not None:
            self._stage_done = None
            fire_event(ev, self._stage_clock)
        return first

    def stall_horizon(self) -> float:
        """Simulated time implied by a stalled staged transfer (-inf when
        none).  Deadlock-watchdog support: in the event engine the
        controller's last act before blocking on space is the next item's
        transfer timeout, so the heap drains no earlier than that."""
        if self._staged:
            return self._stage_clock + self._staged[0][1]
        return float("-inf")

    # ------------------------------------------------------------------
    def request(self, pe_slot: int):
        """Generator (PE side): wait for the next item this PE may fetch."""
        if pe_slot in self._requests:
            raise SimulationError(
                f"PE slot {pe_slot} already has a pending request on {self.name}"
            )
        ev = self.env.event(name=f"req:{self.name}:{pe_slot}")
        self._requests[pe_slot] = ev
        self._try_release()
        item = yield ev
        return item

    def register_request_at(self, pe_slot: int, arrival: float,
                            ev: Event | None = None,
                            sched: float | None = None) -> Event:
        """Register a stamped lockstep request; return the event to park on.

        Non-generator entry so the CPU's hot loop can park on the request
        with a single ``yield`` (no sub-generator frames).  ``ev`` lets
        the caller supply a recycled event object.  ``sched`` is the
        schedule instant of the arrival's final charge event (defaults
        to -inf: ties break release-first, the pre-sched behaviour).
        """
        if pe_slot in self._requests:
            raise SimulationError(
                f"PE slot {pe_slot} already has a pending request on {self.name}"
            )
        if ev is None:
            ev = self.env.event(name=f"req:{self.name}:{pe_slot}")
        self._requests[pe_slot] = ev
        self._arrivals[pe_slot] = arrival
        self._scheds[pe_slot] = float("-inf") if sched is None else sched
        self._try_release()
        return ev

    def register_request_inline(self, pe_slot: int, arrival: float,
                                ev: Event, sched: float) -> Event:
        """Stamped request that may resolve the rendezvous *synchronously*.

        When this registration completes the head's mask and the release
        time precedes every pending heap event, the release cascade runs
        right here: the other waiters are resumed nested, and ``ev``
        comes back already fired (``callbacks is None``) with the
        ``(item, t_r)`` pair in its value — the caller continues without
        parking.  This is what lets the mask-completing PE *stream*
        through a broadcast block with zero heap events.  Callers that
        cannot consume an already-fired event must use
        :meth:`register_request_at` (carrier delivery only).
        """
        if pe_slot in self._requests:
            raise SimulationError(
                f"PE slot {pe_slot} already has a pending request on {self.name}"
            )
        self._requests[pe_slot] = ev
        self._arrivals[pe_slot] = arrival
        self._scheds[pe_slot] = sched
        self._inline_slots.add(pe_slot)
        if not self._releasing and not self._carrier_pending and self._items:
            self._run_releases()
        return ev

    def request_at(self, pe_slot: int, arrival: float,
                   sched: float | None = None):
        """Generator (PE side, lockstep): stamped fetch request.

        The PE does *not* flush its local clock first: ``arrival`` is its
        bus-true time (``env.now + local``) and the caller zeroes the
        local clock at the call.  The PE resumes — carrier-delivered —
        with the ``(item, t_r)`` release pair as the yield value;
        ``t_r`` is the computed rendezvous instant (env.now may lag
        behind it during queue fast-forward) and the caller rebases its
        local clock from it.
        """
        pair = yield self.register_request_at(pe_slot, arrival, sched=sched)
        return pair

    def cancel_lockstep_request(self, pe_slot: int, after: float) -> None:
        """Withdraw a stamped request whose arrival lies strictly after
        ``after`` (fail-stop support).

        A PE struck at ``after`` dies mid-charge in the event schedule,
        *before* its request would have registered — the early-registered
        lockstep stamp must be withdrawn or it could wrongly complete a
        rendezvous mask.  A stamp at or before the strike stays: the
        pure-event flush sleep (scheduled earlier than the strike kicker)
        lands first at equal times, so that request did register.
        """
        arrival = self._arrivals.get(pe_slot)
        if arrival is not None and arrival > after:
            del self._arrivals[pe_slot]
            self._scheds.pop(pe_slot, None)
            del self._requests[pe_slot]
        # Either way the PE is dead: it can no longer stream inline, so
        # the vector engine must not batch (and re-register) on its
        # behalf even when its last stamp stood.  A standing request is
        # still released scalar — the stale succeed is absorbed, and the
        # dead PE simply never stamps again, exactly as in the event
        # schedule.
        self._inline_slots.discard(pe_slot)

    def pending_arrival_max(self) -> float:
        """Latest stamped arrival among pending requests (-inf if none).

        Used by the fail-stop watchdog: when the heap drains, surviving
        PEs' unflushed local clocks — visible here as future stamps —
        are time that *would* have elapsed in the event schedule.
        """
        return max(self._arrivals.values(), default=float("-inf"))

    # ------------------------------------------------------------------
    def _try_release(self) -> None:
        """Release head items while their whole mask has requests pending."""
        if self.lockstep:
            self._try_release_lockstep()
            return
        while self._items:
            head = self._items[0]
            if not head.mask <= self._requests.keys():
                # Record when the full mask first assembled with an empty /
                # not-yet-matching queue for empty-stall statistics.
                return
            # All enabled PEs are waiting: release.
            if self._all_arrived_at is not None:
                self.empty_stall_cycles += self.env.now - self._all_arrived_at
                self._all_arrived_at = None
            self._items.popleft()
            self._words_used -= head.words
            self.releases += 1
            self._sample()
            waiters = [self._requests.pop(slot) for slot in head.mask]
            for ev in waiters:
                ev.succeed(head)
            self._refill_from_waiters()
        # Queue empty: if some mask could be satisfied later, note the time
        # all *current* requesters assembled (approximation: first moment
        # the queue is empty with requests outstanding).
        if self._requests and self._all_arrived_at is None:
            self._all_arrived_at = self.env.now

    # -- lockstep rendezvous -------------------------------------------
    def _head_release_time(self) -> float | None:
        """``T_r`` for the head item, or None while its mask is short."""
        head = self._items[0]
        if not head.mask <= self._requests.keys():
            return None
        t_r = self._admit_times[0]  #: rendezvous floor: head admit time
        arrivals = self._arrivals
        for slot in head.mask:
            a = arrivals.get(slot, 0.0)
            if a > t_r:
                t_r = a
        return t_r

    def _try_release_lockstep(self) -> None:
        """Schedule the carrier once the head's release time is known.

        Called at every stamped registration and every admit — the exact
        env-steps at which the event engine would learn the rendezvous is
        complete — so the carrier's heap position (and hence all
        same-timestamp tie-breaking) matches the succeed events it
        replaces.
        """
        if self._releasing or self._carrier_pending or not self._items:
            return
        t_r = self._head_release_time()
        if t_r is not None:
            self._schedule_carrier(t_r)

    def _schedule_carrier(self, t_r: float) -> None:
        self._carrier_pending = True
        self.lockstep_carriers += 1
        carrier = self.env.event(name=f"carrier:{self.name}")
        carrier.callbacks.append(self._carrier_fired)
        self.env.schedule(carrier, t_r - self.env.now)

    def _carrier_fired(self, _event: Event) -> None:
        self._carrier_pending = False
        self._run_releases()

    def _run_releases(self) -> None:
        """Batch-release every head whose time has come.

        Releases whose computed time lies *before the next heap event*
        are fast-forwarded inline — simulated time becomes data carried
        in the recorded release time, and env.now only catches up when
        some other actor (controller resync, network, fault kicker) has
        an event pending.  The heap bound guarantees no foreign event
        could have interleaved, so the fast-forwarded schedule is the
        event schedule.  Classic space waiters disable fast-forward:
        their wakeups are heap-delivered at env.now and must coincide
        with the release instant (S-MIMD sync feeder path).
        """
        self._releasing = True
        env = self.env
        try:
            t_cursor = env.now
            while self._items:
                t_r = self._head_release_time()
                if t_r is None:
                    return
                if t_r < t_cursor:
                    # Head became releasable mid-cascade; in the event
                    # engine its succeed fires at the enabling release.
                    t_r = t_cursor
                if t_r > env.now and (self._space_waiters
                                      or not t_r < env.peek()):
                    self._schedule_carrier(t_r)
                    return
                vec = self._vec
                if vec is not None:
                    if vec.try_batch(self, t_r):
                        # A whole run of broadcast words just executed
                        # vectorized; resume the cascade after its last
                        # recorded release.
                        t_cursor = vec.last_release
                        continue
                    if not self._items[0].mask <= self._requests.keys():
                        # try_batch flushed a live batch, and the PE whose
                        # in-flight registration call entered this loop
                        # consumed its sentinel synchronously (it had not
                        # parked yet), vacating its request.  It re-stamps
                        # the identical arrival the moment the call
                        # unwinds, re-forming this exact rendezvous.
                        return
                self._release_head_now(t_r)
                t_cursor = t_r
        finally:
            self._releasing = False

    def _release_head_now(self, t_r: float) -> None:
        """Release the head at recorded time ``t_r`` (>= env.now) and
        resume its batch of PEs.

        Ordering mirrors the event engine's release exactly: stall
        accounting, pop + occupancy sample, staging pump / space-waiter
        refill (their state mutations happen before any succeed is
        *processed* there), and only then the PE resumptions — delivered
        synchronously in mask-iteration order, the order the succeed
        events would pop.  Each waiter receives the ``(item, t_r)``
        pair so it can rebase its local clock when ``t_r`` is ahead of
        env.now.
        """
        head = self._items[0]
        waiters = [self._requests[slot] for slot in head.mask]
        if self._vec is not None and head.payload is not None:
            self.scalar_fallbacks += 1
        self._pop_head_vector(t_r)
        self.lockstep_batch_pes += len(waiters)
        value = (head, t_r)
        for ev in waiters:
            fire_event(ev, value)

    def _pop_head_vector(self, t_r: float,
                         vec_mask: frozenset | None = None,
                         enabler_sched: float | None = None,
                         batch_view: tuple | None = None) -> QueueItem:
        """Pop the head at release time ``t_r`` with the exact scalar
        release accounting, but *without* resuming the waiting PEs.

        The vectorized tier (:meth:`~repro.sim.vectorized.VectorExecutor
        .try_batch`) calls this once per batched word — every stats and
        staging side effect lands at the same relative point as in
        :meth:`_release_head_now`, while PE resumption is deferred to a
        single end-of-batch sentinel delivery.

        With ``vec_mask`` (== ``head.mask``) the mask's request/arrival
        slots are *kept registered*: the PEs stay parked across the whole
        batch, their re-registration after each word would rewrite the
        identical entries, so the dict churn is skipped.

        ``enabler_sched`` overrides the admit-tie comparison point (the
        schedule instant of the release's last enabling arrival event):
        the vector executor passes it from its live batch state, whose
        completion stamps supersede the registered arrival dicts.
        ``batch_view`` likewise supplies the batch's earliest live
        arrival stamp (and its charge event's schedule instant) for
        the empty-stall latch when the settled occupancy is zero going
        into this pop.
        """
        head = self._items[0]
        head_admit = self._admit_times[0]
        inclusive = head_admit == t_r
        staged = self._staged
        # Pre-release staging probe: does the next staged transfer
        # complete *exactly* at this release, fitting without the head's
        # space?  Then its timeout event and the release's enabling
        # arrival tie on the heap and schedule order decides who goes
        # first — the event engine may admit it before the release.
        probe = bool(
            staged and not inclusive
            and self._stage_clock + staged[0][1] == t_r
            and staged[0][0].words <= self.capacity_words - self._words_used
        )
        if enabler_sched is None:
            enabler_sched = float("-inf")
            if not inclusive and (probe or self._has_admit_tie(t_r)):
                # An admit ties with this release: find the schedule
                # instant of the latest arrival attaining t_r (the
                # enabling event) to replay the heap order.
                arrivals = self._arrivals
                scheds = self._scheds
                enabler_sched = max(
                    (scheds.get(s, float("-inf")) for s in head.mask
                     if arrivals.get(s) == t_r),
                    default=float("-inf"))
        stall_view = None
        if self._stats_words == 0 and self._ls_stall_start is None:
            # The first settle below is the event engine's empty->
            # non-empty transition: give _settle_admits the earliest
            # registered arrival (and the schedule instant of its charge
            # event) so it can latch the empty-stall origin.  During a
            # live batch the mask slots' dict entries are stale — the
            # executor's batch_view carries the current stamps; fold in
            # any foreign requesters.
            if vec_mask is not None and len(self._arrivals) <= len(vec_mask):
                stall_view = batch_view  # no foreign requesters
            else:
                scheds = self._scheds
                neg_inf = float("-inf")
                amin, asched = batch_view if batch_view else (None, None)
                for s, a in self._arrivals.items():
                    if vec_mask is not None and s in vec_mask:
                        continue
                    sc = scheds.get(s, neg_inf)
                    if amin is None or a < amin or (a == amin
                                                   and sc < asched):
                        amin, asched = a, sc
                if amin is not None:
                    stall_view = (amin, asched)
        self._settle_admits(t_r, inclusive=inclusive,
                            enabler_sched=enabler_sched,
                            stall_view=stall_view)
        if probe and self._stage_clock <= enabler_sched:
            # Admit-before-release: run the staged admission now, while
            # the head still occupies the queue, and settle it against
            # the same enabler — the occupancy peak spans both.
            item, cycles = staged.popleft()
            start = self._stage_clock
            self._stage_clock = t_r
            self._admit_at(item, t_r, sched=start)
            self._settle_admits(t_r, inclusive=False,
                                enabler_sched=enabler_sched,
                                stall_view=stall_view)
        self._items.popleft()
        self._admit_times.popleft()
        if self._ls_stall_start is not None:
            self.empty_stall_cycles += t_r - self._ls_stall_start
            self._ls_stall_start = None
        self._words_used -= head.words
        self.releases += 1
        self.lockstep_releases += 1
        self._stats_words -= head.words
        self._occ.append((t_r, self._stats_words))
        # Settled occupancy is the event-schedule view: zero here means
        # the queue is empty *in the event engine* right after this
        # release, even when leapfrogged computed admits (times <= t_r
        # but heap-ordered after the release) already sit in ``_items``.
        # The empty-stall clock restarts at whichever settle next turns
        # the stats non-zero (see _settle_admits), clamped to this
        # instant — requesters already registered (masked-out PEs, early
        # stampers) are what the pure engine's release-time latch sees.
        if self._stats_words == 0:
            self._stats_empty_since = t_r
        if vec_mask is None:
            for slot in head.mask:
                del self._requests[slot]
                self._arrivals.pop(slot, None)
                self._scheds.pop(slot, None)
                self._inline_slots.discard(slot)
        if self._staged or self._stage_done is not None:
            # The probe above may have drained staging; pumping with an
            # empty deque still fires the stage-done event.
            self._pump_staging(t_r)
        else:
            self._refill_from_waiters()
        return head

    def _refill_from_waiters(self) -> float | None:
        first: float | None = None
        while self._space_waiters:
            ev, item = self._space_waiters[0]
            if item.words > self.capacity_words - self._words_used:
                return first
            self._space_waiters.popleft()
            self._items.append(item)
            self._words_used += item.words
            self.words_enqueued += item.words
            if self.lockstep:
                self._admit_times.append(self.env.now)
                self._push_admit(self.env.now, item.words, sample=False)
            else:
                self._hw = max(self._hw, self._words_used)
            if first is None:
                first = self.env.now
            ev.succeed()
        return first
