"""The MC Fetch Unit: SIMD instruction broadcast hardware.

Per the paper (Section 3), each Micro Controller contains a Fetch Unit
with:

* a **Mask Register** selecting which of its PEs participate in following
  instructions — the mask value is enqueued alongside every word;
* a **Fetch Unit Controller** that autonomously moves a block of SIMD
  instructions from Fetch Unit RAM into the queue, word by word, so the MC
  CPU proceeds without waiting;
* a finite FIFO **Queue** from which PEs fetch: an item is *released only
  after every enabled PE has issued a request* for it.

That release rule is the source of three phenomena the paper measures:
per-instruction max-coupling in SIMD mode (variable-time instructions cost
the slowest PE's time), nearly-free barrier synchronization for MIMD
programs (a data read from SIMD space blocks until all PEs read), and —
because the queue buffers ahead — overlap of MC control flow with PE
computation (the superlinear-speed-up mechanism).
"""

from repro.fetch_unit.mask import MaskRegister
from repro.fetch_unit.queue import FetchUnitQueue, QueueItem, sync_item
from repro.fetch_unit.controller import FetchUnitController

__all__ = [
    "MaskRegister",
    "FetchUnitQueue",
    "QueueItem",
    "sync_item",
    "FetchUnitController",
]
