"""The Fetch Unit Controller: autonomous block enqueuer.

The MC CPU writes a control word naming a block of SIMD instructions held
in Fetch Unit RAM; the controller then moves the block into the queue word
by word while the MC proceeds with other work.  The one-deep command
register means the MC only stalls when it issues a *third* block before the
first finished transferring.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fetch_unit.mask import MaskRegister
from repro.fetch_unit.queue import FetchUnitQueue, QueueItem, sync_item
from repro.m68k.instructions import Instruction
from repro.sim import Environment, Store


class FetchUnitController:
    """Moves registered blocks from Fetch Unit RAM into the queue.

    Parameters
    ----------
    cycles_per_word:
        Transfer rate of the controller's word mover (one queue slot per
        this many cycles).
    """

    def __init__(
        self,
        env: Environment,
        queue: FetchUnitQueue,
        mask: MaskRegister,
        cycles_per_word: int = 4,
        name: str = "fuc",
    ) -> None:
        self.env = env
        self.queue = queue
        self.mask = mask
        self.cycles_per_word = cycles_per_word
        self.name = name
        self._blocks: dict[str, list[Instruction]] = {}
        self._commands = Store(env, capacity=1, name=f"cmd:{name}")
        self.busy = False
        self.words_transferred = 0
        self._outstanding = 0
        self._idle_waiters: list = []
        env.process(self._run(), name=f"controller:{name}")

    # ------------------------------------------------------------------
    def register_block(self, name: str, instructions: list[Instruction]) -> None:
        """Store a straight-line block in Fetch Unit RAM."""
        if not instructions:
            raise ConfigurationError(f"block {name!r} is empty")
        for instr in instructions:
            if instr.mnemonic in ("BRA", "BSR") or instr.mnemonic.startswith("DB"):
                raise ConfigurationError(
                    f"block {name!r} contains control flow ({instr}); SIMD "
                    "blocks must be straight-line — loops run on the MC"
                )
        self._blocks[name] = list(instructions)

    def block_words(self, name: str) -> int:
        return sum(i.encoded_words() for i in self._blocks[name])

    @property
    def outstanding(self) -> int:
        """Commands submitted but not yet fully transferred."""
        return self._outstanding

    # ------------------------------------------------------------------
    def submit_block(self, name: str):
        """Generator (MC side): command transfer of a registered block."""
        if name not in self._blocks:
            raise ConfigurationError(f"unknown block {name!r}")
        self._outstanding += 1
        yield self._commands.put(("block", name))

    def submit_sync_words(self, count: int):
        """Generator (MC side): enqueue ``count`` bare data words (barrier)."""
        if count < 1:
            raise ConfigurationError(f"sync word count must be >= 1, got {count}")
        self._outstanding += 1
        yield self._commands.put(("sync", count))

    def drained(self):
        """Generator: wait until all submitted commands are transferred."""
        while self._outstanding:
            ev = self.env.event(name=f"idle:{self.name}")
            self._idle_waiters.append(ev)
            yield ev
        return None

    # ------------------------------------------------------------------
    def _run(self):
        while True:
            kind, arg = yield self._commands.get()
            self.busy = True
            if kind == "block":
                for instr in self._blocks[arg]:
                    words = instr.encoded_words()
                    yield self.env.timeout(self.cycles_per_word * words)
                    item = QueueItem(
                        payload=instr, words=words, mask=self.mask.enabled
                    )
                    yield from self.queue.enqueue(item)
                    self.words_transferred += words
            else:  # sync words
                for _ in range(arg):
                    yield self.env.timeout(self.cycles_per_word)
                    yield from self.queue.enqueue(sync_item(self.mask.enabled))
                    self.words_transferred += 1
            self.busy = False
            self._outstanding -= 1
            if not self._outstanding:
                waiters, self._idle_waiters = self._idle_waiters, []
                for ev in waiters:
                    ev.succeed()
