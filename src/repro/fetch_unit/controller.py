"""The Fetch Unit Controller: autonomous block enqueuer.

The MC CPU writes a control word naming a block of SIMD instructions held
in Fetch Unit RAM; the controller then moves the block into the queue word
by word while the MC proceeds with other work.  The one-deep command
register means the MC only stalls when it issues a *third* block before the
first finished transferring.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fetch_unit.mask import MaskRegister
from repro.fetch_unit.queue import FetchUnitQueue, QueueItem, sync_item
from repro.m68k.instructions import Instruction
from repro.sim import Environment, Store


class FetchUnitController:
    """Moves registered blocks from Fetch Unit RAM into the queue.

    Parameters
    ----------
    cycles_per_word:
        Transfer rate of the controller's word mover (one queue slot per
        this many cycles).
    """

    def __init__(
        self,
        env: Environment,
        queue: FetchUnitQueue,
        mask: MaskRegister,
        cycles_per_word: int = 4,
        name: str = "fuc",
    ) -> None:
        self.env = env
        self.queue = queue
        self.mask = mask
        self.cycles_per_word = cycles_per_word
        self.name = name
        self._blocks: dict[str, list[Instruction]] = {}
        self._commands = Store(env, capacity=1, name=f"cmd:{name}")
        self.busy = False
        self.words_transferred = 0
        self._outstanding = 0
        self._idle_waiters: list = []
        env.process(self._run(), name=f"controller:{name}")

    # ------------------------------------------------------------------
    def register_block(self, name: str, instructions: list[Instruction]) -> None:
        """Store a straight-line block in Fetch Unit RAM."""
        if not instructions:
            raise ConfigurationError(f"block {name!r} is empty")
        for instr in instructions:
            if instr.mnemonic in ("BRA", "BSR") or instr.mnemonic.startswith("DB"):
                raise ConfigurationError(
                    f"block {name!r} contains control flow ({instr}); SIMD "
                    "blocks must be straight-line — loops run on the MC"
                )
        self._blocks[name] = list(instructions)

    def block_words(self, name: str) -> int:
        return sum(i.encoded_words() for i in self._blocks[name])

    @property
    def outstanding(self) -> int:
        """Commands submitted but not yet fully transferred."""
        return self._outstanding

    # ------------------------------------------------------------------
    def submit_block(self, name: str):
        """Generator (MC side): command transfer of a registered block."""
        if name not in self._blocks:
            raise ConfigurationError(f"unknown block {name!r}")
        self._outstanding += 1
        yield self._commands.put(("block", name))

    def submit_sync_words(self, count: int):
        """Generator (MC side): enqueue ``count`` bare data words (barrier)."""
        if count < 1:
            raise ConfigurationError(f"sync word count must be >= 1, got {count}")
        self._outstanding += 1
        yield self._commands.put(("sync", count))

    def drained(self):
        """Generator: wait until all submitted commands are transferred."""
        while self._outstanding:
            ev = self.env.event(name=f"idle:{self.name}")
            self._idle_waiters.append(ev)
            yield ev
        return None

    # ------------------------------------------------------------------
    def _run(self):
        while True:
            kind, arg = yield self._commands.get()
            self.busy = True
            if self.queue.lockstep:
                yield from self._transfer_staged(kind, arg)
            elif kind == "block":
                for instr in self._blocks[arg]:
                    words = instr.encoded_words()
                    yield self.env.timeout(self.cycles_per_word * words)
                    item = QueueItem(
                        payload=instr, words=words, mask=self.mask.enabled
                    )
                    yield from self.queue.enqueue(item)
                    self.words_transferred += words
            else:  # sync words
                for _ in range(arg):
                    yield self.env.timeout(self.cycles_per_word)
                    yield from self.queue.enqueue(sync_item(self.mask.enabled))
                    self.words_transferred += 1
            self.busy = False
            self._outstanding -= 1
            if not self._outstanding:
                waiters, self._idle_waiters = self._idle_waiters, []
                for ev in waiters:
                    ev.succeed()

    def _transfer_staged(self, kind: str, arg):
        """Lockstep transfer: hand the whole command to the queue at once.

        The queue computes the per-item admit times analytically (see
        :meth:`FetchUnitQueue.stage_block`) instead of this process
        walking timeout + blocking-enqueue per item; one re-sync timeout
        then moves this process to the instant the last word was
        admitted, so the command-register handshake with the MC keeps
        its event-schedule timing.  The enabled mask is snapshotted at
        command receipt — MC programs do not retarget the mask while a
        transfer is in flight (the DSL orders SetMask before the
        enqueues it governs).
        """
        mask = self.mask.enabled
        if kind == "block":
            entries = []
            total = 0
            for instr in self._blocks[arg]:
                words = instr.encoded_words()
                entries.append((
                    QueueItem(payload=instr, words=words, mask=mask),
                    self.cycles_per_word * words,
                ))
                total += words
        else:  # sync words
            entries = [(sync_item(mask), self.cycles_per_word)
                       for _ in range(arg)]
            total = arg
        t_end, ev = self.queue.stage_block(entries)
        if ev is not None:
            t_end = yield ev
        delay = t_end - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.words_transferred += total
