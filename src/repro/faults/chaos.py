"""Deterministic chaos injection for the execution engine.

The engine already survives worker crashes (resubmission to a fresh
pool) and corrupt cache entries (treated as misses).  This module makes
those failure paths *drivable*: with ``REPRO_CHAOS`` set, a seeded,
content-hash-keyed coin decides which jobs' workers crash and which
cache entries get garbled — deterministically, across processes, so a
chaos run is exactly reproducible.

Format::

    REPRO_CHAOS="seed=7,crash=0.5,corrupt=1.0,dir=/tmp/chaos-state"

* ``seed`` — root of every chaos decision (required to enable chaos);
* ``crash`` — probability a pool worker hard-exits mid-job (first
  execution only — the resubmitted attempt runs clean, modelling a
  transient fault);
* ``corrupt`` — probability a freshly stored cache entry is overwritten
  with garbage (once per entry);
* ``dir`` — where the once-only sentinels live (defaults to a
  seed-derived directory under the system temp dir).

Crashes only ever fire inside pool workers (``jobs > 1``): killing the
caller's own process would turn a recoverable fault into an unrecoverable
one, which is not the failure mode being modelled.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

#: Environment variable that arms chaos injection.
CHAOS_ENV = "REPRO_CHAOS"


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed chaos knobs."""

    seed: int
    crash_rate: float = 0.0
    corrupt_rate: float = 0.0
    state_dir: str = ""

    def __post_init__(self) -> None:
        for name, rate in (("crash", self.crash_rate),
                           ("corrupt", self.corrupt_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"chaos {name} rate must be in [0, 1], got {rate}"
                )
        if not self.state_dir:
            object.__setattr__(
                self, "state_dir",
                os.path.join(tempfile.gettempdir(),
                             f"repro-chaos-{self.seed}"),
            )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ChaosConfig":
        """Parse the ``REPRO_CHAOS`` ``key=value[,key=value...]`` format."""
        fields: dict[str, str] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"malformed {CHAOS_ENV} entry {part!r}; "
                    "expected key=value"
                )
            key, value = part.split("=", 1)
            fields[key.strip()] = value.strip()
        unknown = set(fields) - {"seed", "crash", "corrupt", "dir"}
        if unknown:
            raise ConfigurationError(
                f"unknown {CHAOS_ENV} key(s) {sorted(unknown)}; "
                "choose from seed, crash, corrupt, dir"
            )
        if "seed" not in fields:
            raise ConfigurationError(f"{CHAOS_ENV} needs a seed=N entry")
        try:
            return cls(
                seed=int(fields["seed"]),
                crash_rate=float(fields.get("crash", 0.0)),
                corrupt_rate=float(fields.get("corrupt", 0.0)),
                state_dir=fields.get("dir", ""),
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"invalid {CHAOS_ENV} value: {exc}"
            ) from None

    @classmethod
    def from_env(cls) -> "ChaosConfig | None":
        """The active chaos configuration, or None when chaos is off."""
        text = os.environ.get(CHAOS_ENV, "").strip()
        return cls.parse(text) if text else None

    # ------------------------------------------------------------------
    def _fraction(self, kind: str, content_hash: str) -> float:
        """Deterministic uniform [0, 1) draw for one (kind, job) pair."""
        text = f"{self.seed}:{kind}:{content_hash}"
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def _once(self, kind: str, content_hash: str) -> bool:
        """True exactly once per (kind, job) — cross-process, via sentinel."""
        root = Path(self.state_dir)
        root.mkdir(parents=True, exist_ok=True)
        sentinel = root / f"{kind}-{content_hash}"
        if sentinel.exists():
            return False
        try:
            sentinel.touch(exist_ok=False)
        except FileExistsError:  # raced by a sibling worker
            return False
        return True

    # ------------------------------------------------------------------
    def should_crash(self, content_hash: str) -> bool:
        """Is this job's worker doomed (first execution only)?"""
        return (self.crash_rate > 0.0
                and self._fraction("crash", content_hash) < self.crash_rate
                and self._once("crash", content_hash))

    def should_corrupt(self, content_hash: str) -> bool:
        """Should this freshly stored cache entry be garbled (once)?"""
        return (self.corrupt_rate > 0.0
                and self._fraction("corrupt", content_hash) < self.corrupt_rate
                and self._once("corrupt", content_hash))


# ---------------------------------------------------------------------------
# Injection points (called from repro.exec; no-ops when chaos is off).
def maybe_crash_worker(content_hash: str) -> None:
    """Hard-exit the current process if chaos dooms this job.

    Called from the pool worker entry point only.  ``os._exit`` models a
    fail-stop worker: no exception, no cleanup, the future just breaks —
    exactly the crash class the resubmission path exists for.
    """
    chaos = ChaosConfig.from_env()
    if chaos is not None and chaos.should_crash(content_hash):
        os._exit(3)


def maybe_corrupt_entry(content_hash: str, path: os.PathLike | str) -> bool:
    """Garble a just-written cache entry if chaos selects it.

    Returns True when the entry was corrupted.  The garbage is valid
    UTF-8 but not a valid entry document, so the cache's load path must
    treat it as a miss (asserted by the chaos tests).
    """
    chaos = ChaosConfig.from_env()
    if chaos is None or not chaos.should_corrupt(content_hash):
        return False
    Path(path).write_text('{"version": "☠ chaos-corrupted"')
    return True
