"""Declarative fault plans: failure as a schedulable, hashable input.

A :class:`FaultPlan` describes everything that goes wrong during one
simulated run — which network boxes/links are dead, whether the Extra
Stage is enabled to route around them, and which PEs *fail-stop* (go
silent) at which simulated cycle.  Plans are frozen, canonically ordered
and content-hashable, so a faulted run is exactly as cacheable and
parallelizable as a healthy one: the plan rides inside
:class:`~repro.exec.SimJobSpec` and participates in its content hash.

The plan is pure data.  Interpretation lives elsewhere:

* :class:`~repro.machine.PASMMachine` applies the network faults to its
  circuit allocator (forcing extra-stage rerouting or a structured
  :class:`~repro.errors.NetworkFaultError`) and arms a watchdog per
  fail-stopped PE so the dead PE is detected at the next barrier within
  ``failstop_timeout`` cycles instead of hanging the simulation;
* the macro timing model charges the extra-stage transit penalty
  (``PrototypeConfig.net_extra_stage_cycles``) when the plan enables the
  extra stage.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.topology import Fault, FaultKind

#: Default bounded wait after a strike before the simulation gives up on
#: a fail-stopped PE (cycles).  Generous against the longest barrier
#: interval of the paper's workloads, tiny against a hung simulation.
DEFAULT_FAILSTOP_TIMEOUT = 50_000.0


@dataclass(frozen=True)
class PEFailStop:
    """One PE going silent: ``pe`` (physical number) dies at cycle ``at``."""

    pe: int
    at: float = 0.0

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise ConfigurationError(f"fail-stop PE must be >= 0, got {self.pe}")
        if self.at < 0:
            raise ConfigurationError(
                f"fail-stop strike time must be >= 0, got {self.at}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, canonical description of one run's injected failures.

    Attributes
    ----------
    faults:
        Dead network elements (boxes / output links), canonically sorted.
    extra_stage_enabled:
        Whether the Extra Stage's boxes are active.  Degraded operation
        enables it (that is the point of the ESC); disabling it while
        faults are present models the unprotected Generalized Cube.
    failstops:
        PEs that silently stop executing at a given cycle, sorted by PE.
    failstop_timeout:
        Bounded wait after the latest strike before the machine raises
        :class:`~repro.errors.PEFailStopError` for a run that can no
        longer complete.
    """

    faults: tuple[Fault, ...] = ()
    extra_stage_enabled: bool = True
    failstops: tuple[PEFailStop, ...] = ()
    failstop_timeout: float = DEFAULT_FAILSTOP_TIMEOUT

    def __post_init__(self) -> None:
        if self.failstop_timeout <= 0:
            raise ConfigurationError(
                f"failstop_timeout must be positive, got {self.failstop_timeout}"
            )
        faults = tuple(sorted(
            set(self.faults),
            key=lambda f: (f.kind.value, f.stage, f.line),
        ))
        failstops = tuple(sorted(set(self.failstops), key=lambda s: (s.pe, s.at)))
        seen_pes = [s.pe for s in failstops]
        if len(set(seen_pes)) != len(seen_pes):
            raise ConfigurationError(
                f"duplicate fail-stop PEs in plan: {sorted(seen_pes)}"
            )
        object.__setattr__(self, "faults", faults)
        object.__setattr__(self, "failstops", failstops)

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """A plan that injects nothing (healthy run)."""
        return not self.faults and not self.failstops

    def network_faults(self) -> frozenset[Fault]:
        """The dead network elements as the routing layer consumes them."""
        return frozenset(self.faults)

    def failstop_at(self, physical_pe: int) -> float | None:
        """Strike time for a physical PE, or None when it stays healthy."""
        for stop in self.failstops:
            if stop.pe == physical_pe:
                return stop.at
        return None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-able form (stable across construction orders)."""
        return {
            "faults": [
                {"kind": f.kind.value, "stage": f.stage, "line": f.line}
                for f in self.faults
            ],
            "extra_stage_enabled": self.extra_stage_enabled,
            "failstops": [{"pe": s.pe, "at": s.at} for s in self.failstops],
            "failstop_timeout": self.failstop_timeout,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (any key order)."""
        return cls(
            faults=tuple(
                Fault(FaultKind(f["kind"]), f["stage"], f["line"])
                for f in d.get("faults", ())
            ),
            extra_stage_enabled=d.get("extra_stage_enabled", True),
            failstops=tuple(
                PEFailStop(s["pe"], s["at"]) for s in d.get("failstops", ())
            ),
            failstop_timeout=d.get("failstop_timeout", DEFAULT_FAILSTOP_TIMEOUT),
        )

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON form of the plan."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable summary for error messages and logs."""
        parts = []
        if self.faults:
            parts.append(
                "faults=["
                + ", ".join(f"{f.kind.value}@s{f.stage}l{f.line}"
                            for f in self.faults)
                + "]"
            )
        parts.append(
            f"extra_stage={'on' if self.extra_stage_enabled else 'off'}"
        )
        if self.failstops:
            parts.append(
                "failstops=["
                + ", ".join(f"PE{s.pe}@{s.at:g}" for s in self.failstops)
                + "]"
            )
        return "FaultPlan(" + ", ".join(parts) + ")"
