"""Fault-injection campaigns over the Extra-Stage Cube.

Pure-computation sweeps that put the Adams & Siegel single-fault-tolerance
claim under exhaustive test: enumerate every failable element of an ESC,
inject it, and check that every (source, dest) pair still routes with the
extra stage enabled.  Double-fault sweeps measure how much tolerance is
left *beyond* the guarantee (none is promised; much survives in practice).

These functions are deterministic and side-effect free, which lets the
execution engine schedule them as content-hashed jobs (program
``"faultsweep"``) — the heavy double-fault sweep runs in a pool worker
and caches like any simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.errors import NetworkFaultError, RoutingConflictError
from repro.faults.plan import FaultPlan
from repro.network.circuit import CircuitSwitchedNetwork
from repro.network.routing import route
from repro.network.topology import ExtraStageCubeTopology, Fault, FaultKind
from repro.utils.rng import make_rng


def iter_single_faults(topo: ExtraStageCubeTopology):
    """Every failable element of the network, in canonical order.

    Box faults enumerate the canonical (stage, low-line) box ids of all
    traversal stages (the extra stage included: its boxes matter once it
    is enabled).  Link faults enumerate the *inter-stage* output lines —
    the final stage's output links are the destination terminals' single
    physical connections, which no interconnection network can route
    around, so (as in Adams & Siegel's analysis) they are outside the
    fault-tolerance universe.
    """
    for stage in range(topo.n_stages):
        for _, line in topo.boxes(stage):
            yield Fault(FaultKind.BOX, stage, line)
    for stage in range(topo.n_stages - 1):
        for line in range(topo.n_terminals):
            yield Fault(FaultKind.LINK, stage, line)


def count_single_faults(topo: ExtraStageCubeTopology) -> int:
    """Number of distinct single faults :func:`iter_single_faults` yields."""
    return topo.n_stages * (topo.n_terminals // 2) + \
        (topo.n_stages - 1) * topo.n_terminals


def blocked_pairs(
    topo: ExtraStageCubeTopology,
    faults: frozenset[Fault] | set[Fault],
    *,
    extra_stage_enabled: bool = True,
) -> list[tuple[int, int]]:
    """(source, dest) pairs with no fault-free path under ``faults``."""
    faults = frozenset(faults)
    blocked = []
    for source in range(topo.n_terminals):
        for dest in range(topo.n_terminals):
            try:
                route(topo, source, dest, faults=faults,
                      extra_stage_enabled=extra_stage_enabled)
            except NetworkFaultError:
                blocked.append((source, dest))
    return blocked


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one fault sweep on an N-terminal ESC."""

    n_terminals: int
    combos: int  #: fault sets examined
    survived: int  #: fault sets under which every pair stayed routable
    pairs_checked: int
    blocked_pairs: int
    shift_survived: int  #: fault sets with the shift permutation allocatable
    exhaustive: bool  #: False when double faults were sampled

    @property
    def survival_pct(self) -> float:
        return 100.0 * self.survived / self.combos if self.combos else 100.0

    @property
    def routability_pct(self) -> float:
        if not self.pairs_checked:
            return 100.0
        return 100.0 * (self.pairs_checked - self.blocked_pairs) / self.pairs_checked

    @property
    def shift_pct(self) -> float:
        return 100.0 * self.shift_survived / self.combos if self.combos else 100.0

    def to_dict(self) -> dict:
        return {
            "n_terminals": self.n_terminals,
            "combos": self.combos,
            "survived": self.survived,
            "pairs_checked": self.pairs_checked,
            "blocked_pairs": self.blocked_pairs,
            "shift_survived": self.shift_survived,
            "exhaustive": self.exhaustive,
            "survival_pct": round(self.survival_pct, 3),
            "routability_pct": round(self.routability_pct, 3),
            "shift_pct": round(self.shift_pct, 3),
        }


def _shift_admissible(topo, faults) -> bool:
    """Can PE i → PE (i-1) mod N still be set up in one circuit setting?"""
    net = CircuitSwitchedNetwork(
        topo, extra_stage_enabled=True, faults=set(faults)
    )
    n = topo.n_terminals
    return net.is_admissible({i: (i - 1) % n for i in range(n)})


def single_fault_sweep(n_terminals: int) -> SweepReport:
    """Inject every single fault; check every pair and the shift setting.

    The Adams & Siegel guarantee says ``blocked_pairs`` must come back 0
    for every fault (the exhibit and the property tests assert exactly
    that).  ``shift_survived`` is stronger than the guarantee — it asks
    for a *simultaneous* conflict-free setting of the whole ring — and is
    reported, not asserted.
    """
    topo = ExtraStageCubeTopology(n_terminals)
    combos = survived = shift_ok = total_blocked = 0
    pairs_per_combo = n_terminals * n_terminals
    for fault in iter_single_faults(topo):
        combos += 1
        blocked = blocked_pairs(topo, {fault})
        total_blocked += len(blocked)
        if not blocked:
            survived += 1
        if _shift_admissible(topo, {fault}):
            shift_ok += 1
    return SweepReport(
        n_terminals=n_terminals,
        combos=combos,
        survived=survived,
        pairs_checked=combos * pairs_per_combo,
        blocked_pairs=total_blocked,
        shift_survived=shift_ok,
        exhaustive=True,
    )


def double_fault_sweep(
    n_terminals: int,
    *,
    max_exhaustive: int = 2000,
    samples: int = 500,
    seed: int = 0,
) -> SweepReport:
    """Inject pairs of faults and measure how often full routability survives.

    Exhaustive when the number of fault pairs is at most
    ``max_exhaustive``; otherwise a deterministic ``samples``-sized sample
    drawn from ``seed`` (so the sweep is bit-identical no matter where or
    how it is scheduled).  Double-fault tolerance is *not* guaranteed by
    the ESC design; the survival rate quantifies the margin beyond the
    single-fault claim.
    """
    topo = ExtraStageCubeTopology(n_terminals)
    all_pairs = list(combinations(iter_single_faults(topo), 2))
    exhaustive = len(all_pairs) <= max_exhaustive
    if exhaustive:
        chosen = all_pairs
    else:
        rng = make_rng(seed, "double-fault-sweep", n_terminals)
        idx = rng.choice(len(all_pairs), size=min(samples, len(all_pairs)),
                         replace=False)
        chosen = [all_pairs[i] for i in sorted(int(i) for i in idx)]
    survived = shift_ok = total_blocked = 0
    for pair in chosen:
        blocked = blocked_pairs(topo, set(pair))
        total_blocked += len(blocked)
        if not blocked:
            survived += 1
        if _shift_admissible(topo, set(pair)):
            shift_ok += 1
    return SweepReport(
        n_terminals=n_terminals,
        combos=len(chosen),
        survived=survived,
        pairs_checked=len(chosen) * n_terminals * n_terminals,
        blocked_pairs=total_blocked,
        shift_survived=shift_ok,
        exhaustive=exhaustive,
    )


# ---------------------------------------------------------------------------
def representative_fault_plan(
    topo: ExtraStageCubeTopology,
    mapping: dict[int, int],
) -> FaultPlan:
    """A canonical degraded-mode plan for a circuit setting.

    Picks the first fault (in :func:`iter_single_faults` order) that (a)
    blocks at least one of ``mapping``'s fault-free straight routes —
    so the run genuinely exercises rerouting — while (b) keeping the
    whole mapping allocatable in one setting with the extra stage
    enabled.  Deterministic, so specs built from it hash stably.
    """
    straight_links: set[Fault] = set()
    straight_boxes: set[Fault] = set()
    for source, dest in sorted(mapping.items()):
        path = route(topo, source, dest, extra_stage_enabled=False)
        for stage, line in path.output_links():
            straight_links.add(Fault(FaultKind.LINK, stage, line))
        for stage, line in path.boxes(topo):
            straight_boxes.add(Fault(FaultKind.BOX, stage, line))
    for fault in iter_single_faults(topo):
        on_straight = fault in (
            straight_boxes if fault.kind is FaultKind.BOX else straight_links
        )
        # Extra-stage elements never lie on a bypassed straight route, but
        # count the final-stage ones; skip faults that touch nothing.
        if not on_straight:
            continue
        net = CircuitSwitchedNetwork(
            topo, extra_stage_enabled=True, faults={fault}
        )
        try:
            circuits = net.allocate_permutation(mapping)
        except (NetworkFaultError, RoutingConflictError):
            continue
        rerouted = sum(1 for c in circuits if c.path.extra_exchanged)
        net.release_all()
        if rerouted:
            return FaultPlan(faults=(fault,), extra_stage_enabled=True)
    raise NetworkFaultError(
        f"no single fault both disturbs and preserves the mapping {mapping}"
    )
