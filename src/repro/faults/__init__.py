"""Fault injection: failure as a first-class, measurable input.

The PASM prototype's Extra-Stage Cube exists *because* it is
single-fault tolerant (Adams & Siegel); this package turns that claim —
and the rest of the stack's behaviour under failure — into deterministic,
schedulable experiments:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`, the declarative,
  content-hashable description of one run's injected failures (dead
  network elements, fail-stopped PEs) that flows into
  :class:`~repro.exec.SimJobSpec`;
* :mod:`~repro.faults.campaign` — exhaustive single-fault and
  exhaustive/sampled double-fault sweeps over the ESC, plus the
  representative degraded-mode plan the exhibits use;
* :mod:`~repro.faults.chaos` — seeded worker-crash and cache-corruption
  injection (``$REPRO_CHAOS``) for driving the execution engine's
  recovery paths deterministically.

Layering: this package sits below :mod:`repro.exec` and
:mod:`repro.machine` (both consume it) and imports only
:mod:`repro.network`, :mod:`repro.errors` and :mod:`repro.utils`.
"""

from repro.faults.campaign import (
    SweepReport,
    blocked_pairs,
    count_single_faults,
    double_fault_sweep,
    iter_single_faults,
    representative_fault_plan,
    single_fault_sweep,
)
from repro.faults.chaos import (
    CHAOS_ENV,
    ChaosConfig,
    maybe_corrupt_entry,
    maybe_crash_worker,
)
from repro.faults.plan import DEFAULT_FAILSTOP_TIMEOUT, FaultPlan, PEFailStop

__all__ = [
    "CHAOS_ENV",
    "ChaosConfig",
    "DEFAULT_FAILSTOP_TIMEOUT",
    "FaultPlan",
    "PEFailStop",
    "SweepReport",
    "blocked_pairs",
    "count_single_faults",
    "double_fault_sweep",
    "iter_single_faults",
    "maybe_corrupt_entry",
    "maybe_crash_worker",
    "representative_fault_plan",
    "single_fault_sweep",
]
