"""Synchronous client for the simulation service.

Stdlib-only (``http.client``), one connection per request — simple and
robust under a server that sheds load.  The retry policy is the one an
inference-serving client would use:

* **retryable** responses (429 queue-full, 503 draining) and transport
  errors back off **exponentially with full jitter** — each delay is
  drawn uniformly from ``[0, min(cap, base * 2^attempt)]``, which
  decorrelates a thundering herd of identical clients;
* a ``Retry-After`` header is honored as a *floor* under the jittered
  delay: the server's own estimate of when capacity frees up wins over
  optimism;
* everything else (2xx, 4xx, job failures) returns/raises immediately.

**Fleet mode**: given ``base_urls`` (a list of instance URLs), the
client builds the same consistent-hash ring as ``pasm-router`` and
sends each job straight to the instance that owns its content hash —
skipping the router hop while preserving fleet-wide single-flight
dedup (identical submissions from every ring-aware party land on one
instance).  A transport error advances the ring to the next distinct
instance, exactly like the router's failover.  With a single URL (or
plain ``host``/``port``) behaviour is unchanged.

The RNG is injectable so tests can pin the jitter.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ServeError
from repro.exec import SimJobSpec, content_hash_of
from repro.obs.ids import format_traceparent, new_request_id, new_span_id, new_trace_id
from repro.serve.config import default_port
from repro.serve.ring import DEFAULT_REPLICAS, HashRing, parse_instance

#: HTTP statuses worth retrying: the server said "not now", not "no".
RETRYABLE = (429, 503)


class ServeClientError(ServeError):
    """A request that ultimately failed (after retries, if retryable).

    Attributes
    ----------
    status:
        Final HTTP status, or ``None`` for transport-level failures.
    attempts:
        Total attempts made (1 = no retries were needed/possible).
    """

    def __init__(self, message: str, *, status: int | None = None,
                 attempts: int = 1) -> None:
        self.status = status
        self.attempts = attempts
        super().__init__(message)


@dataclass
class HttpReply:
    """One raw exchange: status, headers (lower-cased), body bytes."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict:
        try:
            return json.loads(self.body)
        except ValueError:
            return {"error": self.body.decode("utf-8", "replace")}

    def request_id(self) -> str | None:
        """The server-confirmed correlation ID of this exchange."""
        return self.headers.get("x-request-id")

    def trace_id(self) -> str | None:
        """Trace ID from the response ``traceparent``, if any."""
        header = self.headers.get("traceparent", "")
        parts = header.split("-")
        return parts[1] if len(parts) >= 4 else None

    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        if value is None:
            return None
        try:
            return float(value)
        except ValueError:
            return None


class ServeClient:
    """Talk to a running ``pasm-serve`` instance.

    Parameters
    ----------
    host, port:
        Service address (port defaults to ``$REPRO_SERVE_PORT``/8137).
    base_urls:
        Optional list of instance URLs (``http://host:port``).  When
        given, requests are routed by job content hash over the same
        consistent-hash ring ``pasm-router`` uses, so the client can
        talk to a fleet directly; ``host``/``port`` are ignored.  A
        single-element list behaves exactly like ``host``/``port``.
    replicas:
        Virtual nodes per instance on the ring (must match the
        router's setting for placement agreement).
    timeout:
        Socket timeout per request.  Long-poll requests get the poll
        duration added on top automatically.
    max_retries:
        Ceiling on retries of *retryable* outcomes per request.
    backoff_base, backoff_cap:
        Exponential-backoff window: attempt ``k`` sleeps
        ``uniform(0, min(cap, base * 2**k))`` seconds (plus any
        ``Retry-After`` floor).
    rng:
        Source of jitter; pass ``random.Random(seed)`` for determinism.
    trace:
        Send a W3C ``traceparent`` header (fresh trace ID per logical
        request) so a ``--trace`` service records the job under the
        *client's* trace ID.  An ``X-Request-ID`` is always sent —
        correlation IDs are plain headers and cost nothing; ``trace``
        only controls whether the client proposes a trace.  The IDs of
        the most recent request are kept on :attr:`last_request_id` /
        :attr:`last_trace_id`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        *,
        base_urls: Sequence[str] | None = None,
        replicas: int = DEFAULT_REPLICAS,
        timeout: float = 30.0,
        max_retries: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: random.Random | None = None,
        sleep=time.sleep,
        trace: bool = False,
    ) -> None:
        self.ring: HashRing | None = None
        self._addrs: dict[str, tuple[str, int]] = {}
        if base_urls:
            parsed = [parse_instance(u) for u in base_urls]
            self._addrs = {base: (h, p) for base, h, p in parsed}
            self.ring = HashRing(list(self._addrs), replicas=replicas)
            host, port = self._addrs[self.ring.nodes[0]]
        self.host = host
        self.port = port if port is not None else default_port()
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.rng = rng or random.Random()
        self._sleep = sleep
        self.trace = trace
        self.retries_performed = 0  #: lifetime retry counter (telemetry)
        self.last_request_id: str | None = None
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------
    # Transport
    def _targets(self, key: str | None) -> list[tuple[str, int]]:
        """Instance addresses to try, owner first (ring failover order)."""
        if self.ring is None:
            return [(self.host, self.port)]
        return [self._addrs[b] for b in self.ring.nodes_for(key or "/")]

    def _request_once(self, method: str, path: str, body: bytes | None,
                      timeout: float, headers: dict[str, str] | None = None,
                      *, address: tuple[str, int] | None = None) -> HttpReply:
        host, port = address if address else (self.host, self.port)
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            all_headers = {"Content-Type": "application/json"} if body else {}
            if headers:
                all_headers.update(headers)
            conn.request(method, path, body=body, headers=all_headers)
            response = conn.getresponse()
            return HttpReply(
                status=response.status,
                headers={k.lower(): v for k, v in response.getheaders()},
                body=response.read(),
            )
        finally:
            conn.close()

    def _backoff_delay(self, attempt: int, floor: float | None) -> float:
        window = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay = self.rng.uniform(0.0, window)
        if floor is not None:
            delay = max(delay, floor)
        return delay

    def request(self, method: str, path: str, *, doc: dict | None = None,
                timeout: float | None = None,
                key: str | None = None) -> HttpReply:
        """One request with retry on 429/503/transport errors.

        Every logical request carries one ``X-Request-ID`` (held across
        its retries, so a shed-then-retried exchange tells one story in
        the server logs) and, with ``trace=True``, one ``traceparent``.

        In fleet mode ``key`` (the job content hash) picks the owning
        instance; a transport error advances to the next distinct ring
        node, while 429/503 retries stay on the same instance — it
        owns the key, shedding load is its call to make.
        """
        body = (json.dumps(doc).encode() if doc is not None else None)
        timeout = self.timeout if timeout is None else timeout
        self.last_request_id = new_request_id()
        self.last_trace_id = new_trace_id() if self.trace else None
        headers = {"X-Request-ID": self.last_request_id}
        if self.last_trace_id is not None:
            headers["traceparent"] = format_traceparent(
                self.last_trace_id, new_span_id()
            )
        targets = self._targets(key)
        target_idx = 0
        last: HttpReply | None = None
        last_exc: OSError | None = None
        for attempt in range(self.max_retries + 1):
            try:
                last = self._request_once(
                    method, path, body, timeout, headers,
                    address=targets[target_idx % len(targets)],
                )
                last_exc = None
            except OSError as exc:
                last, last_exc = None, exc
                reply_floor = None
                target_idx += 1  # dead instance: advance the ring
            else:
                if last.status not in RETRYABLE:
                    return last
                reply_floor = last.retry_after()
            if attempt == self.max_retries:
                break
            self.retries_performed += 1
            self._sleep(self._backoff_delay(attempt, reply_floor))
        if last is not None:
            raise ServeClientError(
                f"{method} {path} still refused after "
                f"{self.max_retries + 1} attempts: "
                f"{last.status} {last.json().get('error', '')}",
                status=last.status, attempts=self.max_retries + 1,
            )
        raise ServeClientError(
            f"{method} {path} unreachable after {self.max_retries + 1} "
            f"attempts: {last_exc!r}",
            attempts=self.max_retries + 1,
        )

    # ------------------------------------------------------------------
    # API surface
    @staticmethod
    def _spec_key(spec: SimJobSpec | dict) -> str:
        """The routing key of a submission — the job's content hash."""
        if isinstance(spec, SimJobSpec):
            return spec.content_hash
        try:
            return SimJobSpec.from_dict(spec).content_hash
        except Exception:
            # Malformed spec: route it stably anyway; the owning
            # instance will answer with the structured 400.
            return content_hash_of(spec)

    @staticmethod
    def _exhibit_key(name: str, seed: int | None) -> str:
        # Mirrors repro.serve.broker.exhibit_key (kept inline so the
        # client stays importable without the broker stack).
        return content_hash_of({"exhibit": name, "seed": seed})

    def healthz(self) -> dict:
        return self._expect(self.request("GET", "/healthz"), 200).json()

    def metrics(self) -> str:
        return self._expect(self.request("GET", "/metrics"),
                            200).body.decode()

    def stats(self) -> str:
        return self._expect(self.request("GET", "/v1/stats"),
                            200).body.decode()

    def submit(self, spec: SimJobSpec | dict, *, lane: str = "interactive",
               wait: bool = False, timeout: float | None = None) -> dict:
        """Submit one job spec; returns the job document."""
        key = self._spec_key(spec)
        if isinstance(spec, SimJobSpec):
            spec = spec.to_dict()
        path = "/v1/jobs"
        if wait:
            poll = timeout if timeout is not None else self.timeout
            path += f"?wait=1&timeout={poll:g}"
        reply = self.request(
            "POST", path, doc={"spec": spec, "lane": lane},
            timeout=self.timeout + (poll if wait else 0.0),
            key=key,
        )
        return self._expect(reply, 200, 202).json()

    def job_trace(self, job: str) -> dict:
        """The job's Chrome trace-event document (``--trace`` services)."""
        return self._expect(
            self.request("GET", f"/v1/jobs/{job}/trace", key=job), 200
        ).json()

    def status(self, job: str, *, wait: bool = False,
               poll_timeout: float = 5.0) -> dict:
        path = f"/v1/jobs/{job}"
        if wait:
            path += f"?wait=1&timeout={poll_timeout:g}"
        reply = self.request("GET", path,
                             timeout=self.timeout + poll_timeout,
                             key=job)
        return self._expect(reply, 200, 202, 500).json()

    def result(self, job: str, *, timeout: float = 300.0,
               poll_timeout: float = 5.0) -> dict:
        """Long-poll a job to completion; returns its result payload."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job, wait=True, poll_timeout=poll_timeout)
            if doc["state"] == "done":
                return doc["result"]
            if doc["state"] == "failed":
                raise ServeClientError(
                    f"job {job[:12]} failed: {doc.get('error', 'unknown')}",
                    status=500,
                )
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job[:12]} still {doc['state']} after {timeout:g}s"
                )

    def run(self, spec: SimJobSpec | dict, *, lane: str = "interactive",
            timeout: float = 300.0) -> dict:
        """Submit + wait: the one-call path. Returns the result payload."""
        doc = self.submit(spec, lane=lane, wait=True, timeout=min(
            timeout, self.timeout
        ))
        if doc["state"] == "done":
            return doc["result"]
        if doc["state"] == "failed":
            raise ServeClientError(
                f"job {doc['job'][:12]} failed: "
                f"{doc.get('error', 'unknown')}",
                status=500,
            )
        return self.result(doc["job"], timeout=timeout)

    def exhibit(self, name: str, *, seed: int | None = None,
                timeout: float = 300.0) -> str:
        """The raw exhibit JSON text (byte-identical to the CLI file)."""
        seed_q = f"&seed={seed}" if seed is not None else ""
        deadline = time.monotonic() + timeout
        while True:
            poll = min(30.0, max(0.1, deadline - time.monotonic()))
            reply = self.request(
                "GET",
                f"/v1/exhibits/{name}?wait=1&timeout={poll:g}{seed_q}",
                timeout=self.timeout + poll,
                key=self._exhibit_key(name, seed),
            )
            if reply.status == 200 and "x-pasm-exhibit" in reply.headers:
                return reply.body.decode()
            doc = self._expect(reply, 200, 202).json()
            if "result" in doc and doc.get("state") == "done":
                return doc["result"]["json"]
            if doc.get("state") == "failed":
                raise ServeClientError(
                    f"exhibit {name} failed: {doc.get('error', 'unknown')}",
                    status=500,
                )
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"exhibit {name} not done after {timeout:g}s"
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _expect(reply: HttpReply, *statuses: int) -> HttpReply:
        if reply.status not in statuses:
            detail = reply.json().get("error") or repr(reply.body[:200])
            raise ServeClientError(
                f"unexpected {reply.status}: {detail}",
                status=reply.status,
            )
        return reply
