"""Service configuration: one frozen dataclass, CLI- and env-friendly.

Every knob of the serving layer lives here so the broker, the HTTP
front-end, tests and the load generator all construct a service the
same way.  Defaults are chosen for an interactive single-host service;
``pasm-serve`` exposes each field as a command-line flag.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.exec import ResultCache
from repro.exec.pool import resolve_jobs

#: Default TCP port (PASM's 16 PEs + the paper's year, for memorability).
DEFAULT_PORT = 8137

#: Environment variable overriding the default bind port.
PORT_ENV = "REPRO_SERVE_PORT"

#: Job lanes, highest priority first.  ``interactive`` is the default
#: for external submissions; ``sweep`` is where batch/exhibit fan-out
#: goes, so a human's one-off job never waits behind a parameter sweep.
LANES = ("interactive", "sweep")


def default_port() -> int:
    """``$REPRO_SERVE_PORT`` or :data:`DEFAULT_PORT`."""
    env = os.environ.get(PORT_ENV, "").strip()
    if not env:
        return DEFAULT_PORT
    try:
        return int(env)
    except ValueError:
        raise ConfigurationError(
            f"invalid {PORT_ENV} value {env!r}: must be an integer port"
        ) from None


@dataclass(frozen=True)
class ServeConfig:
    """Everything the simulation service needs to come up.

    Attributes
    ----------
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port (tests, the
        load generator); the bound port is readable from the running
        app.
    jobs:
        Simulation pool width, resolved through the same
        :func:`repro.exec.pool.resolve_jobs` rules as the CLI
        (``None`` = ``$REPRO_JOBS`` or one per core).
    queue_limit:
        Bounded admission queue across all lanes.  A submission that
        would exceed it is refused with 429 + ``Retry-After`` — load
        sheds at the edge instead of growing an unbounded backlog.
    job_timeout_s:
        Per-job ceiling from start-of-execution; an expired job fails
        with a structured timeout error (the worker slot is abandoned,
        not reclaimed — document, don't pretend).
    wait_timeout_s:
        Default long-poll duration of ``?wait=1`` requests; on expiry
        the current state is returned and the client polls again.
    retry_after_s:
        Suggested client delay carried in ``Retry-After`` on 429/503.
    drain_grace_s:
        On SIGTERM: how long to wait for queued + in-flight jobs before
        shutting down anyway.
    max_entries:
        Bound on retained *completed* jobs (the in-memory result
        registry); the oldest results are evicted first.
    cache_dir, no_cache, cache_max_mb:
        On-disk result cache wiring — identical semantics to the
        ``pasm-experiments`` flags, including the LRU size cap.
    exhibit_workers:
        Threads available for whole-exhibit jobs (each fans its cell
        specs out through the broker's queue).
    trace:
        Enable end-to-end job tracing (``--trace``).  When set, every
        external job submission records broker spans (queue wait,
        execution, dedup attachments) and carries a trace context into
        the pool worker, whose per-PE simulated-time lanes come back
        with the result; ``GET /v1/jobs/{hash}/trace`` exports the
        merged Chrome trace.  Off by default: correlation *IDs* are
        always issued (they are just headers), but span recording is
        strictly opt-in.
    log_format:
        Access/lifecycle log rendering, ``"text"`` or ``"json"`` (one
        JSON object per line; see :mod:`repro.obs.jsonlog`).
    instance:
        A human-readable name for this fleet member (``--name``),
        surfaced in ``/healthz`` and the ``pasm_serve_instance_info``
        metric so the router's aggregated views can tell instances
        apart.  Defaults to ``host:port`` once the port is bound.
    """

    host: str = "127.0.0.1"
    port: int = field(default_factory=default_port)
    jobs: int | str | None = None
    queue_limit: int = 64
    job_timeout_s: float = 600.0
    wait_timeout_s: float = 30.0
    retry_after_s: float = 1.0
    drain_grace_s: float = 30.0
    max_entries: int = 4096
    cache_dir: str | None = None
    no_cache: bool = False
    cache_max_mb: float | None = None
    exhibit_workers: int = 4
    max_resubmits: int = 3  #: crashed-worker resubmissions per job
    trace: bool = False
    log_format: str = "text"
    instance: str | None = None

    def __post_init__(self) -> None:
        if self.log_format not in ("text", "json"):
            raise ConfigurationError(
                f"log_format must be 'text' or 'json', "
                f"got {self.log_format!r}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {self.max_entries}"
            )
        for name in ("job_timeout_s", "wait_timeout_s", "retry_after_s",
                     "drain_grace_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )

    # ------------------------------------------------------------------
    def resolved_jobs(self) -> int:
        """The simulation pool width this configuration implies."""
        return resolve_jobs(self.jobs)

    def make_cache(self) -> ResultCache | None:
        """The on-disk result cache, or ``None`` when disabled."""
        if self.no_cache:
            return None
        return ResultCache(self.cache_dir, max_mb=self.cache_max_mb)

    def with_overrides(self, **kwargs) -> "ServeConfig":
        return replace(self, **kwargs)
