"""Service configuration: one frozen dataclass, CLI- and env-friendly.

Every knob of the serving layer lives here so the broker, the HTTP
front-end, tests and the load generator all construct a service the
same way.  Defaults are chosen for an interactive single-host service;
``pasm-serve`` exposes each field as a command-line flag.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.exec import ResultCache
from repro.exec.pool import resolve_jobs

#: Default TCP port (PASM's 16 PEs + the paper's year, for memorability).
DEFAULT_PORT = 8137

#: Environment variable overriding the default bind port.
PORT_ENV = "REPRO_SERVE_PORT"

#: Job lanes, highest priority first.  ``interactive`` is the default
#: for external submissions; ``sweep`` is where batch/exhibit fan-out
#: goes, so a human's one-off job never waits behind a parameter sweep.
LANES = ("interactive", "sweep")


def default_port() -> int:
    """``$REPRO_SERVE_PORT`` or :data:`DEFAULT_PORT`."""
    env = os.environ.get(PORT_ENV, "").strip()
    if not env:
        return DEFAULT_PORT
    try:
        return int(env)
    except ValueError:
        raise ConfigurationError(
            f"invalid {PORT_ENV} value {env!r}: must be an integer port"
        ) from None


@dataclass(frozen=True)
class ServeConfig:
    """Everything the simulation service needs to come up.

    Attributes
    ----------
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port (tests, the
        load generator); the bound port is readable from the running
        app.
    jobs:
        Simulation pool width, resolved through the same
        :func:`repro.exec.pool.resolve_jobs` rules as the CLI
        (``None`` = ``$REPRO_JOBS`` or one per core).
    queue_limit:
        Bounded admission queue across all lanes.  A submission that
        would exceed it is refused with 429 + ``Retry-After`` — load
        sheds at the edge instead of growing an unbounded backlog.
    job_timeout_s:
        Per-job ceiling from start-of-execution; an expired job fails
        with a structured timeout error (the worker slot is abandoned,
        not reclaimed — document, don't pretend).
    wait_timeout_s:
        Default long-poll duration of ``?wait=1`` requests; on expiry
        the current state is returned and the client polls again.
    retry_after_s:
        Suggested client delay carried in ``Retry-After`` on 429/503.
    drain_grace_s:
        On SIGTERM: how long to wait for queued + in-flight jobs before
        shutting down anyway.
    max_entries:
        Bound on retained *completed* jobs (the in-memory result
        registry); the oldest results are evicted first.
    cache_dir, no_cache, cache_max_mb:
        On-disk result cache wiring — identical semantics to the
        ``pasm-experiments`` flags, including the LRU size cap.
    exhibit_workers:
        Threads available for whole-exhibit jobs (each fans its cell
        specs out through the broker's queue).
    trace:
        Enable end-to-end job tracing (``--trace``).  When set, every
        external job submission records broker spans (queue wait,
        execution, dedup attachments) and carries a trace context into
        the pool worker, whose per-PE simulated-time lanes come back
        with the result; ``GET /v1/jobs/{hash}/trace`` exports the
        merged Chrome trace.  Off by default: correlation *IDs* are
        always issued (they are just headers), but span recording is
        strictly opt-in.
    log_format:
        Access/lifecycle log rendering, ``"text"`` or ``"json"`` (one
        JSON object per line; see :mod:`repro.obs.jsonlog`).
    instance:
        A human-readable name for this fleet member (``--name``),
        surfaced in ``/healthz`` and the ``pasm_serve_instance_info``
        metric so the router's aggregated views can tell instances
        apart.  Defaults to ``host:port`` once the port is bound.
    sample_interval_s:
        Cadence of the health sampler (timeseries points, SLO
        evaluation, process self-metrics).  ``0`` disables sampling
        entirely — no task, no per-request cost — and
        ``GET /v1/timeseries``/``/v1/alerts`` answer 404.
    retention_points:
        Ring bound per timeseries (720 x 5s default = one hour).
    heartbeat_interval_s:
        Cadence of the ``heartbeat`` structured-log line (queue depth,
        inflight, hit ratio) so plain-log deployments get history
        without scraping.  ``0`` disables it.
    slo_error_ratio, slo_p95_latency_s, slo_queue_depth_frac,
    slo_dedup_min:
        Targets of the default SLOs (see
        :func:`repro.obs.slo.default_slos`).  ``slo_queue_depth_frac``
        is a fraction of ``queue_limit``; ``slo_dedup_min=None``
        leaves the dedup-collapse objective off.
    slo_fast_window_s, slo_slow_window_s, slo_resolve_after:
        Burn-rate windows and resolve hysteresis shared by the default
        SLOs.
    recorder_events:
        Flight-recorder ring bound (recent structured events kept for
        incident bundles).
    recorder_dir:
        Where incident bundles are written
        (default ``$REPRO_FLIGHTREC_DIR`` or ``./.pasm-flightrec``).
    """

    host: str = "127.0.0.1"
    port: int = field(default_factory=default_port)
    jobs: int | str | None = None
    queue_limit: int = 64
    job_timeout_s: float = 600.0
    wait_timeout_s: float = 30.0
    retry_after_s: float = 1.0
    drain_grace_s: float = 30.0
    max_entries: int = 4096
    cache_dir: str | None = None
    no_cache: bool = False
    cache_max_mb: float | None = None
    exhibit_workers: int = 4
    max_resubmits: int = 3  #: crashed-worker resubmissions per job
    trace: bool = False
    log_format: str = "text"
    instance: str | None = None
    sample_interval_s: float = 5.0
    retention_points: int = 720
    heartbeat_interval_s: float = 60.0
    slo_error_ratio: float = 0.05
    slo_p95_latency_s: float = 60.0
    slo_queue_depth_frac: float = 0.75
    slo_dedup_min: float | None = None
    slo_fast_window_s: float = 60.0
    slo_slow_window_s: float = 300.0
    slo_resolve_after: int = 3
    recorder_events: int = 2048
    recorder_dir: str | None = None

    def __post_init__(self) -> None:
        if self.log_format not in ("text", "json"):
            raise ConfigurationError(
                f"log_format must be 'text' or 'json', "
                f"got {self.log_format!r}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {self.max_entries}"
            )
        for name in ("job_timeout_s", "wait_timeout_s", "retry_after_s",
                     "drain_grace_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        for name in ("sample_interval_s", "heartbeat_interval_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0 (0 disables), "
                    f"got {getattr(self, name)}"
                )
        if self.retention_points < 2:
            raise ConfigurationError(
                f"retention_points must be >= 2, got {self.retention_points}"
            )
        if self.recorder_events < 1:
            raise ConfigurationError(
                f"recorder_events must be >= 1, got {self.recorder_events}"
            )
        if self.sampling_enabled \
                and self.slo_fast_window_s >= self.slo_slow_window_s:
            raise ConfigurationError(
                "slo_fast_window_s must be shorter than slo_slow_window_s "
                f"({self.slo_fast_window_s} vs {self.slo_slow_window_s})"
            )

    @property
    def sampling_enabled(self) -> bool:
        return self.sample_interval_s > 0

    # ------------------------------------------------------------------
    def resolved_jobs(self) -> int:
        """The simulation pool width this configuration implies."""
        return resolve_jobs(self.jobs)

    def make_cache(self) -> ResultCache | None:
        """The on-disk result cache, or ``None`` when disabled."""
        if self.no_cache:
            return None
        return ResultCache(self.cache_dir, max_mb=self.cache_max_mb)

    def make_slos(self):
        """The default SLO set this configuration implies."""
        from repro.obs.slo import default_slos

        return default_slos(
            error_ratio=self.slo_error_ratio,
            p95_latency_s=self.slo_p95_latency_s,
            queue_depth=max(1.0,
                            self.slo_queue_depth_frac * self.queue_limit),
            dedup_min=self.slo_dedup_min,
            fast_window_s=self.slo_fast_window_s,
            slow_window_s=self.slo_slow_window_s,
            resolve_after=self.slo_resolve_after,
        )

    def with_overrides(self, **kwargs) -> "ServeConfig":
        return replace(self, **kwargs)
