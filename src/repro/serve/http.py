"""Minimal HTTP/1.1 over asyncio streams — just enough for the service.

Hand-rolled on purpose: the container policy is stdlib-only, and the
service needs exactly four verbs' worth of HTTP — request-line +
headers + ``Content-Length`` body in, status + headers + body out, with
keep-alive.  No chunked transfer, no TLS, no HTTP/2; anything outside
the subset is answered with a clean 4xx instead of being guessed at.

The module is transport-only.  Routing and handler logic live in
:mod:`repro.serve.app`; this file knows nothing about jobs.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ServeError

#: Largest accepted request body (a job spec is ~1 KB; 8 MiB is generous).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest accepted request line / header line.
MAX_LINE_BYTES = 16 * 1024

#: Idle keep-alive connections are closed after this many seconds.
KEEPALIVE_IDLE_S = 75.0

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpProtocolError(ServeError):
    """A malformed or over-limit request; carries the status to answer."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        self.status = status
        super().__init__(message)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  #: header names lower-cased
    body: bytes = b""

    def json(self):
        """The body parsed as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpProtocolError(f"request body is not valid JSON: {exc}")

    def flag(self, name: str) -> bool:
        """A boolean query parameter (``?wait=1`` style)."""
        return self.query.get(name, "").lower() in ("1", "true", "yes", "on")


@dataclass
class Response:
    """One HTTP response; ``body`` may be bytes, str, or a JSON-able dict."""

    status: int = 200
    body: object = b""
    content_type: str | None = None
    headers: tuple[tuple[str, str], ...] = ()

    def encode(self, *, keep_alive: bool) -> bytes:
        body = self.body
        content_type = self.content_type
        if isinstance(body, (dict, list)):
            body = json.dumps(body, sort_keys=True, indent=1).encode() + b"\n"
            content_type = content_type or "application/json"
        elif isinstance(body, str):
            body = body.encode("utf-8")
        content_type = content_type or "text/plain; charset=utf-8"
        reason = REASONS.get(self.status, "Unknown")
        head = [f"HTTP/1.1 {self.status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        head.extend(f"{k}: {v}" for k, v in self.headers)
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, doc: dict, *,
                  headers: tuple[tuple[str, str], ...] = ()) -> Response:
    return Response(status=status, body=doc, headers=headers)


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise HttpProtocolError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HttpProtocolError("header line too long", status=413)
    if len(line) > MAX_LINE_BYTES:
        raise HttpProtocolError("header line too long", status=413)
    return line.rstrip(b"\r\n")


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on a clean EOF before the first byte."""
    start = await _read_line(reader)
    if not start:
        return None
    parts = start.split()
    if len(parts) != 3:
        raise HttpProtocolError(f"malformed request line {start[:80]!r}")
    method, target, version = parts
    if not version.startswith(b"HTTP/1."):
        raise HttpProtocolError(f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            break
        if b":" not in line:
            raise HttpProtocolError(f"malformed header line {line[:80]!r}")
        name, _, value = line.partition(b":")
        headers[name.decode("latin-1").strip().lower()] = (
            value.decode("latin-1").strip()
        )
    if headers.get("transfer-encoding"):
        raise HttpProtocolError("chunked transfer encoding not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpProtocolError(f"bad Content-Length {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpProtocolError(
            f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]",
            status=413,
        )
    body = await reader.readexactly(length) if length else b""
    url = urlsplit(target.decode("latin-1"))
    return Request(
        method=method.decode("latin-1").upper(),
        path=unquote(url.path) or "/",
        query=dict(parse_qsl(url.query)),
        headers=headers,
        body=body,
    )


async def send_request(
    host: str,
    port: int,
    method: str,
    target: str,
    *,
    headers: dict[str, str] | None = None,
    body: bytes = b"",
    timeout: float = 300.0,
) -> tuple[int, dict[str, str], bytes]:
    """One client-side HTTP/1.1 exchange over a fresh connection.

    The router's forwarding primitive: writes the request with
    ``Connection: close``, reads status line + headers +
    ``Content-Length`` body, returns ``(status, headers, body)`` with
    header names lower-cased.  Raises ``OSError`` (or a subclass) on
    any transport failure and ``asyncio.TimeoutError`` past the
    deadline — callers treat both as "this instance is dead, advance
    the ring".
    """
    headers = dict(headers or {})
    headers.setdefault("Host", f"{host}:{port}")
    headers["Content-Length"] = str(len(body))
    headers["Connection"] = "close"
    head = [f"{method} {target} HTTP/1.1"]
    head.extend(f"{k}: {v}" for k, v in headers.items())
    raw = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body

    async def exchange() -> tuple[int, dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(raw)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.split(None, 2)
            if len(parts) < 2 or not parts[0].startswith(b"HTTP/1."):
                raise ConnectionError(
                    f"malformed status line {status_line[:80]!r}"
                )
            status = int(parts[1])
            reply_headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.partition(b":")
                reply_headers[name.decode("latin-1").strip().lower()] = (
                    value.decode("latin-1").strip()
                )
            length = reply_headers.get("content-length")
            if length is not None:
                reply_body = await reader.readexactly(int(length))
            else:
                reply_body = await reader.read()  # Connection: close
            return status, reply_headers, reply_body
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(exchange(), timeout)


Handler = Callable[[Request], Awaitable[Response]]


@dataclass
class HttpServer:
    """asyncio TCP server funnelling parsed requests into one handler."""

    handler: Handler
    host: str = "127.0.0.1"
    port: int = 0
    _server: asyncio.AbstractServer | None = field(default=None, repr=False)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        # With port=0 the kernel picked one; publish the real port.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), timeout=KEEPALIVE_IDLE_S
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection
                except HttpProtocolError as exc:
                    writer.write(Response(
                        status=exc.status, body={"error": str(exc)}
                    ).encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break  # client closed cleanly
                keep_alive = (
                    request.headers.get("connection", "").lower() != "close"
                )
                try:
                    response = await self.handler(request)
                except Exception as exc:  # a handler bug must not kill the conn
                    response = Response(
                        status=500,
                        body={"error": f"{type(exc).__name__}: {exc}"},
                    )
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # event loop shutting down; just release the socket
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
