"""Simulation-as-a-service: the paper's experiments behind an API.

The ROADMAP's north star is a system that serves heavy traffic, and a
reproduction server has exactly the shape of an inference-serving
stack: requests describe deterministic, content-addressed work
(:class:`~repro.exec.SimJobSpec`), so identical concurrent requests
should coalesce into one execution, warm results should be served from
cache without touching the pool, and overload should shed at admission
instead of queueing unboundedly.

Layout::

    config  — ServeConfig (every knob, one frozen dataclass)
    http    — minimal HTTP/1.1 over asyncio streams (stdlib only)
    broker  — single-flight dedup, bounded queue, lanes, crash recovery
    app     — routes, SIGTERM drain, `pasm-serve` entry point
    client  — sync client: retries, exponential backoff + jitter

The broker reuses :mod:`repro.exec`'s pool worker and result cache
unchanged, so a payload served over HTTP is bit-identical to one
produced by ``pasm-experiments`` — including whole exhibits
(``GET /v1/exhibits/fig7?wait=1`` returns the same bytes as
``results/fig7.json``).

See ``docs/SERVING.md`` for the endpoint and backpressure contract.
"""

from repro.errors import BackpressureError, ServeError, ServiceDrainingError
from repro.serve.app import API_VERSION, ServeApp, ServerThread
from repro.serve.broker import BrokerEngine, JobBroker, JobEntry, exhibit_key
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.config import DEFAULT_PORT, LANES, PORT_ENV, ServeConfig

__all__ = [
    "API_VERSION",
    "BackpressureError",
    "BrokerEngine",
    "DEFAULT_PORT",
    "JobBroker",
    "JobEntry",
    "LANES",
    "PORT_ENV",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "ServiceDrainingError",
    "exhibit_key",
]
