"""Simulation-as-a-service: the paper's experiments behind an API.

The ROADMAP's north star is a system that serves heavy traffic, and a
reproduction server has exactly the shape of an inference-serving
stack: requests describe deterministic, content-addressed work
(:class:`~repro.exec.SimJobSpec`), so identical concurrent requests
should coalesce into one execution, warm results should be served from
cache without touching the pool, and overload should shed at admission
instead of queueing unboundedly.

Layout::

    config  — ServeConfig (every knob, one frozen dataclass)
    http    — minimal HTTP/1.1 over asyncio streams (stdlib only)
    broker  — single-flight dedup, bounded queue, lanes, crash recovery
    app     — routes, SIGTERM drain, `pasm-serve` entry point
    client  — sync client: retries, backoff + jitter, optional ring
    ring    — consistent hashing of content hashes onto instances
    router  — `pasm-router`: fleet front door, failover, fleet views

Fleet mode: N instances share one content-addressed result store
(:class:`~repro.exec.SharedStore`, ``$REPRO_STORE``), and the router
consistent-hashes job content hashes onto them so single-flight dedup
collapses identical submissions fleet-wide.

The broker reuses :mod:`repro.exec`'s pool worker and result cache
unchanged, so a payload served over HTTP is bit-identical to one
produced by ``pasm-experiments`` — including whole exhibits
(``GET /v1/exhibits/fig7?wait=1`` returns the same bytes as
``results/fig7.json``).

See ``docs/SERVING.md`` for the endpoint and backpressure contract.
"""

from repro.errors import BackpressureError, ServeError, ServiceDrainingError
from repro.serve.app import API_VERSION, ServeApp, ServerThread
from repro.serve.broker import BrokerEngine, JobBroker, JobEntry, exhibit_key
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.config import DEFAULT_PORT, LANES, PORT_ENV, ServeConfig
from repro.serve.ring import DEFAULT_REPLICAS, HashRing, parse_instance
from repro.serve.router import (
    DEFAULT_ROUTER_PORT,
    RouterApp,
    RouterConfig,
    RouterThread,
    merge_prometheus,
    route_key,
)

__all__ = [
    "API_VERSION",
    "BackpressureError",
    "BrokerEngine",
    "DEFAULT_PORT",
    "DEFAULT_REPLICAS",
    "DEFAULT_ROUTER_PORT",
    "HashRing",
    "JobBroker",
    "JobEntry",
    "LANES",
    "PORT_ENV",
    "RouterApp",
    "RouterConfig",
    "RouterThread",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "ServiceDrainingError",
    "exhibit_key",
    "merge_prometheus",
    "parse_instance",
    "route_key",
]
