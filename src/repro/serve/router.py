"""``pasm-router``: consistent-hash front door for a ``pasm-serve`` fleet.

A deliberately thin asyncio reverse proxy.  It owns no jobs, no pool
and no cache — it owns the *placement decision*: every job-shaped
request is mapped by its content hash onto the instance ring
(:class:`~repro.serve.ring.HashRing`), so identical submissions from
any number of clients land on the same ``pasm-serve`` process, where
the broker's single-flight dedup collapses them into one computation.
Combined with the shared result store (:mod:`repro.exec.store`), that
makes dedup a *fleet-wide* property: in-flight duplicates meet on one
instance, finished duplicates meet in the store.

Behaviour:

* **bodies are forwarded untouched** — the router parses a submission
  body only to derive its routing key (the same
  :class:`~repro.exec.SimJobSpec` content hash or exhibit key the
  broker will derive), then forwards the original bytes, so payloads
  and exhibit responses stay byte-identical through the hop;
* **correlation survives the hop** — ``X-Request-ID`` is forwarded
  (minted when absent) and a client ``traceparent`` keeps its trace ID
  with a fresh span ID, exactly like the service's own handling;
* **a dead instance is routed around** — a transport error or timeout
  advances the ring to the next distinct instance and puts the dead
  one on a cooldown; only when *every* instance fails does the client
  see a 503 + ``Retry-After``;
* **fleet views** — ``GET /metrics`` sums every instance's Prometheus
  page (``*_ratio`` gauges are averaged, weighted by each instance's
  traffic) plus the router's own counters; ``GET /v1/stats``
  concatenates per-instance tables; ``GET /healthz`` reports every
  instance; ``GET /v1/timeseries`` returns per-instance ring-buffer
  history plus a fleet-wide aggregate
  (:func:`repro.obs.timeseries.aggregate_timeseries`) and the
  router's own series; ``GET /v1/alerts`` collects every instance's
  SLO alert states.

Run it::

    pasm-router --port 8138 \\
        --instance http://127.0.0.1:8137 --instance http://127.0.0.1:8237
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import urlencode

from repro.errors import ConfigurationError, ReproError
from repro.exec import SimJobSpec
from repro.obs.ids import (
    format_traceparent,
    new_request_id,
    new_span_id,
    parse_traceparent,
)
from repro.obs.jsonlog import StructuredLogger
from repro.obs.procstats import ProcessStats
from repro.obs.timeseries import TimeseriesStore, aggregate_timeseries
from repro.perf import MetricsRegistry
from repro.serve.broker import exhibit_key
from repro.serve.http import HttpServer, Request, Response, send_request
from repro.serve.ring import DEFAULT_REPLICAS, HashRing, parse_instance

#: Default router port (one above the serve default).
DEFAULT_ROUTER_PORT = 8138

#: Environment variable overriding the default router port.
ROUTER_PORT_ENV = "REPRO_ROUTER_PORT"

#: Request headers that must not cross the proxy hop.
_HOP_HEADERS = frozenset((
    "connection", "keep-alive", "host", "content-length",
    "transfer-encoding", "te", "upgrade", "proxy-connection",
))

#: Response headers the router re-emits itself.
_SKIP_REPLY_HEADERS = frozenset((
    "connection", "content-length", "content-type", "transfer-encoding",
))


def default_router_port() -> int:
    env = os.environ.get(ROUTER_PORT_ENV, "").strip()
    if not env:
        return DEFAULT_ROUTER_PORT
    try:
        return int(env)
    except ValueError:
        raise ConfigurationError(
            f"invalid {ROUTER_PORT_ENV} value {env!r}: must be an "
            "integer port"
        ) from None


@dataclass(frozen=True)
class RouterConfig:
    """Every knob of the fleet router.

    Attributes
    ----------
    instances:
        Base URLs of the ``pasm-serve`` fleet.  The *set* of instances
        defines the ring — order is irrelevant, and every router (or
        ring-aware client) given the same set derives the same
        placement.
    replicas:
        Virtual nodes per instance on the hash ring.
    upstream_timeout_s:
        Per-forward ceiling.  Must comfortably exceed the longest
        ``?wait=1`` long-poll the fleet serves.
    cooldown_s:
        How long a dead instance is skipped before being probed again.
    retry_after_s:
        ``Retry-After`` hint when the whole fleet is unreachable.
    sample_interval_s:
        Cadence of the router's own health sampler (its timeseries
        ring and ``pasm_process_*`` self-metrics).  ``0`` disables it;
        fleet views still work, the router just contributes no series
        of its own.
    retention_points:
        Ring bound per router timeseries.
    """

    instances: tuple[str, ...]
    host: str = "127.0.0.1"
    port: int = field(default_factory=default_router_port)
    replicas: int = DEFAULT_REPLICAS
    upstream_timeout_s: float = 300.0
    cooldown_s: float = 2.0
    retry_after_s: float = 1.0
    log_format: str = "text"
    sample_interval_s: float = 5.0
    retention_points: int = 720

    def __post_init__(self) -> None:
        if not self.instances:
            raise ConfigurationError(
                "the router needs at least one --instance"
            )
        for name in ("upstream_timeout_s", "cooldown_s", "retry_after_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.sample_interval_s < 0:
            raise ConfigurationError(
                "sample_interval_s must be >= 0 (0 disables), "
                f"got {self.sample_interval_s}"
            )
        if self.retention_points < 2:
            raise ConfigurationError(
                f"retention_points must be >= 2, got {self.retention_points}"
            )

    @property
    def sampling_enabled(self) -> bool:
        return self.sample_interval_s > 0


def route_key(request: Request) -> str:
    """The placement key of one request — the broker's own job key.

    ``POST /v1/jobs`` bodies are parsed (not modified) to compute the
    spec's content hash or the exhibit key; job-status paths carry the
    key literally; exhibit paths hash ``(name, seed)`` exactly like
    :func:`repro.serve.broker.exhibit_key`.  Anything unparseable is
    routed by a hash of its raw bytes — stably, to an instance that
    will answer with the right 4xx.
    """
    path = request.path.rstrip("/") or "/"
    try:
        if path == "/v1/jobs" and request.method == "POST":
            doc = request.json()
            if isinstance(doc, dict):
                if "spec" in doc and "exhibit" not in doc:
                    return SimJobSpec.from_dict(doc["spec"]).content_hash
                if "exhibit" in doc:
                    seed = doc.get("seed")
                    return exhibit_key(str(doc["exhibit"]),
                                       seed if isinstance(seed, int) else None)
        if path.startswith("/v1/jobs/"):
            key = path[len("/v1/jobs/"):]
            return key[:-len("/trace")] if key.endswith("/trace") else key
        if path.startswith("/v1/exhibits/"):
            name = path[len("/v1/exhibits/"):]
            seed_text = request.query.get("seed")
            seed = int(seed_text) if seed_text is not None else None
            return exhibit_key(name, seed)
    except (ReproError, KeyError, TypeError, ValueError):
        pass
    return hashlib.sha256(
        f"{request.method} {path}".encode() + request.body
    ).hexdigest()


def _page_weight(page: str) -> float:
    """One instance's traffic: the sum of its request counters.

    Used to weight ``*_ratio`` gauges in :func:`merge_prometheus` —
    a cache-hit ratio from an instance that served 10k requests should
    dominate the same gauge from one that served 3.
    """
    weight = 0.0
    for line in page.splitlines():
        if line.startswith("pasm_serve_requests_total"):
            _, _, value_text = line.rpartition(" ")
            try:
                weight += float(value_text)
            except ValueError:
                continue
    return weight


def merge_prometheus(pages: list[str]) -> str:
    """Aggregate Prometheus text pages from N instances into one.

    Samples with identical ``name{labels}`` keys are **summed** —
    right for counters, queue depths and summary sums/counts.  Gauges
    whose name ends in ``_ratio`` are **averaged** instead (a sum of
    fractions is meaningless), weighted by each page's traffic (its
    ``pasm_serve_requests_total`` sum) so a busy instance counts for
    more than an idle one; when no page carries a traffic counter the
    unweighted mean is used.  ``# HELP``/``# TYPE`` lines are kept
    from their first appearance, so the merged page stays parseable.
    """
    meta: list[str] = []
    seen_meta: set[str] = set()
    order: list[str] = []
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    ratio_weighted: dict[str, float] = {}  #: series -> sum(value * weight)
    ratio_weights: dict[str, float] = {}   #: series -> sum(weight)
    for page in pages:
        page_weight = _page_weight(page)
        for line in page.splitlines():
            if not line.strip():
                continue
            if line.startswith("#"):
                if line not in seen_meta:
                    seen_meta.add(line)
                    meta.append(line)
                continue
            series, _, value_text = line.rpartition(" ")
            try:
                value = float(value_text)
            except ValueError:
                continue
            if series not in totals:
                order.append(series)
                totals[series] = 0.0
                counts[series] = 0
            totals[series] += value
            counts[series] += 1
            if series.split("{", 1)[0].endswith("_ratio"):
                ratio_weighted[series] = (
                    ratio_weighted.get(series, 0.0) + value * page_weight
                )
                ratio_weights[series] = (
                    ratio_weights.get(series, 0.0) + page_weight
                )

    def rendered(series: str) -> str:
        name = series.split("{", 1)[0]
        value = totals[series]
        if name.endswith("_ratio") and counts[series] > 1:
            if ratio_weights.get(series, 0.0) > 0.0:
                value = ratio_weighted[series] / ratio_weights[series]
            else:
                value = value / counts[series]
        return f"{series} {value:g}"

    lines = meta + [rendered(s) for s in order]
    return "\n".join(lines) + ("\n" if lines else "")


class RouterApp:
    """The fleet router: an :class:`HttpServer` over a hash ring."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        parsed = [parse_instance(i) for i in config.instances]
        self.instances: dict[str, tuple[str, int]] = {
            base: (host, port) for base, host, port in parsed
        }
        self.ring = HashRing(list(self.instances),
                             replicas=config.replicas)
        self.metrics = MetricsRegistry()
        self.log = StructuredLogger(fmt=config.log_format)
        self.server = HttpServer(self.handle, host=config.host,
                                 port=config.port)
        self._cooling: dict[str, float] = {}  #: base -> monotonic deadline
        self._stopped: asyncio.Event | None = None
        self.procstats = ProcessStats(self.metrics)
        self.timeseries = (
            TimeseriesStore(self.metrics,
                            interval_s=config.sample_interval_s,
                            retention_points=config.retention_points)
            if config.sampling_enabled else None
        )
        self._sampler: asyncio.Task | None = None
        m = self.metrics
        m.describe("pasm_router_requests_total", "counter",
                   "Requests forwarded, by instance and status")
        m.describe("pasm_router_failovers_total", "counter",
                   "Forwards that advanced the ring past a dead instance")
        m.describe("pasm_router_unreachable_total", "counter",
                   "Requests that found the whole fleet unreachable")
        m.set_gauge("pasm_router_instances", len(self.instances))
        m.describe("pasm_router_instances", "gauge",
                   "Instances configured on the ring")

    @property
    def port(self) -> int:
        return self.server.port

    # ------------------------------------------------------------------
    # Lifecycle
    async def start(self) -> None:
        self._stopped = asyncio.Event()
        await self.server.start()
        if self.timeseries is not None:
            self._sampler = asyncio.create_task(
                self._sampler_loop(self.config.sample_interval_s)
            )

    async def shutdown(self) -> None:
        if self._stopped is None or self._stopped.is_set():
            return
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None
        await self.server.stop()
        self._stopped.set()

    async def _sampler_loop(self, tick: float) -> None:
        while True:
            await asyncio.sleep(tick)
            try:
                self.sample_once()
            except Exception as exc:  # keep sampling through surprises
                self.log.warning("sampler_error",
                                 error=f"{type(exc).__name__}: {exc}")

    def sample_once(self) -> None:
        """One sampler pass: self-metrics, then a timeseries point."""
        self.procstats.collect()
        if self.timeseries is not None:
            self.timeseries.sample()

    # ------------------------------------------------------------------
    # Routing
    async def handle(self, request: Request) -> Response:
        start = time.perf_counter()
        request_id = request.headers.get("x-request-id") or new_request_id()
        path = request.path.rstrip("/") or "/"
        try:
            if path == "/healthz" and request.method == "GET":
                response = await self._healthz()
            elif path == "/metrics" and request.method == "GET":
                response = await self._fleet_metrics()
            elif path == "/v1/stats" and request.method == "GET":
                response = await self._fleet_stats()
            elif path == "/v1/timeseries" and request.method == "GET":
                response = await self._fleet_timeseries(request)
            elif path == "/v1/alerts" and request.method == "GET":
                response = await self._fleet_alerts()
            else:
                response = await self._proxy(request, request_id)
        except Exception as exc:  # noqa: BLE001
            # Keep handler bugs inside the counted/logged path rather
            # than letting the raw HTTP layer answer uninstrumented.
            self.log.error("handler_error", path=request.path,
                           error=f"{type(exc).__name__}: {exc}",
                           request_id=request_id)
            response = Response(
                status=500,
                body={"error": f"{type(exc).__name__}: {exc}"},
            )
        if response.status >= 400 and isinstance(response.body, dict):
            response.body.setdefault("request_id", request_id)
        response.headers = tuple(response.headers) + (
            ("X-Request-ID", request_id),
        )
        self.log.info(
            "route",
            method=request.method,
            path=request.path,
            status=response.status,
            dur_ms=round((time.perf_counter() - start) * 1e3, 3),
            request_id=request_id,
        )
        return response

    def _candidates(self, key: str) -> list[str]:
        """Ring order for a key, cooled-down instances pushed last."""
        now = time.monotonic()
        ordered = list(self.ring.nodes_for(key))
        live = [b for b in ordered if self._cooling.get(b, 0.0) <= now]
        cooling = [b for b in ordered if b not in live]
        # A fully-cooling ring still gets probed — cooldown is an
        # ordering hint, never a reason to refuse service outright.
        return live + cooling

    async def _proxy(self, request: Request, request_id: str) -> Response:
        key = route_key(request)
        headers = {
            k: v for k, v in request.headers.items()
            if k not in _HOP_HEADERS
        }
        headers["x-request-id"] = request_id
        parent = parse_traceparent(request.headers.get("traceparent"))
        if parent is not None:
            # Same trace, fresh span: the hop is a link in the chain,
            # not a new operation.
            headers["traceparent"] = format_traceparent(
                parent[0], new_span_id()
            )
        target = request.path
        if request.query:
            target += "?" + urlencode(request.query)
        errors: list[str] = []
        for attempt, base in enumerate(self._candidates(key)):
            host, port = self.instances[base]
            try:
                status, reply_headers, body = await send_request(
                    host, port, request.method, target,
                    headers=headers, body=request.body,
                    timeout=self.config.upstream_timeout_s,
                )
            except (OSError, asyncio.TimeoutError, ValueError) as exc:
                self._cooling[base] = (
                    time.monotonic() + self.config.cooldown_s
                )
                self.metrics.inc("pasm_router_failovers_total")
                errors.append(f"{base}: {type(exc).__name__}: {exc}")
                continue
            self._cooling.pop(base, None)
            self.metrics.inc("pasm_router_requests_total",
                             instance=base, status=status)
            if attempt:
                self.log.info("failover", key=key[:12], served_by=base,
                              skipped=attempt)
            extra = tuple(
                (k, v) for k, v in reply_headers.items()
                if k not in _SKIP_REPLY_HEADERS
            )
            return Response(
                status=status,
                body=body,
                content_type=reply_headers.get("content-type"),
                headers=extra + (("X-PASM-Instance", base),),
            )
        self.metrics.inc("pasm_router_unreachable_total")
        return Response(
            status=503,
            body={
                "error": "no pasm-serve instance reachable: "
                         + "; ".join(errors),
                "retry_after": self.config.retry_after_s,
            },
            headers=(("Retry-After",
                      f"{max(1, round(self.config.retry_after_s))}"),),
        )

    # ------------------------------------------------------------------
    # Fleet views
    async def _fetch_all(self, path: str) -> dict[str, object]:
        """``base -> (status, body-bytes) | Exception`` for one path."""
        async def one(base: str):
            host, port = self.instances[base]
            status, _, body = await send_request(
                host, port, "GET", path, timeout=10.0
            )
            return status, body

        results = await asyncio.gather(
            *(one(base) for base in self.instances),
            return_exceptions=True,
        )
        return dict(zip(self.instances, results))

    async def _healthz(self) -> Response:
        polled = await self._fetch_all("/healthz")
        doc: dict[str, object] = {}
        reachable = 0
        for base, outcome in polled.items():
            if isinstance(outcome, BaseException):
                doc[base] = {"status": "unreachable",
                             "error": f"{type(outcome).__name__}: {outcome}"}
                continue
            status, body = outcome
            reachable += 1
            try:
                doc[base] = json.loads(body)
            except ValueError:
                doc[base] = {"status": f"http {status}"}
        body = {
            "status": "ok" if reachable == len(self.instances)
            else ("degraded" if reachable else "unreachable"),
            "instances": doc,
            "ring": {"instances": len(self.ring),
                     "replicas": self.ring.replicas},
        }
        return Response(status=200 if reachable else 503, body=body)

    async def _fleet_metrics(self) -> Response:
        polled = await self._fetch_all("/metrics")
        pages = [
            outcome[1].decode("utf-8", "replace")
            for outcome in polled.values()
            if not isinstance(outcome, BaseException) and outcome[0] == 200
        ]
        self.procstats.collect()
        pages.append(self.metrics.render())
        return Response(
            body=merge_prometheus(pages),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _fleet_timeseries(self, request: Request) -> Response:
        since_text = request.query.get("since")
        path = "/v1/timeseries"
        since = None
        if since_text is not None:
            try:
                since = float(since_text)
            except ValueError:
                return Response(status=400, body={
                    "error": f"invalid since value {since_text!r}"
                })
            path += "?" + urlencode({"since": since_text})
        polled = await self._fetch_all(path)
        instances: dict[str, object] = {}
        docs = []
        for base, outcome in sorted(polled.items()):
            if isinstance(outcome, BaseException):
                instances[base] = {
                    "error": f"{type(outcome).__name__}: {outcome}"
                }
                continue
            status, body = outcome
            if status != 200:
                instances[base] = {"error": f"http {status}"}
                continue
            try:
                doc = json.loads(body)
            except ValueError:
                instances[base] = {"error": "unparseable body"}
                continue
            instances[base] = doc
            docs.append(doc)
        body_doc: dict[str, object] = {
            "now": time.time(),
            "fleet": aggregate_timeseries(docs),
            "instances": instances,
        }
        if self.timeseries is not None:
            body_doc["router"] = self.timeseries.to_doc(
                since=since, instance=f"router:{self.port}"
            )
        return Response(body=body_doc)

    async def _fleet_alerts(self) -> Response:
        polled = await self._fetch_all("/v1/alerts")
        instances: dict[str, object] = {}
        firing: list[dict] = []
        for base, outcome in sorted(polled.items()):
            if isinstance(outcome, BaseException):
                instances[base] = {
                    "error": f"{type(outcome).__name__}: {outcome}"
                }
                continue
            status, body = outcome
            if status != 200:
                instances[base] = {"error": f"http {status}"}
                continue
            try:
                doc = json.loads(body)
            except ValueError:
                instances[base] = {"error": "unparseable body"}
                continue
            instances[base] = doc
            for alert in doc.get("alerts", ()):
                if alert.get("state") == "firing":
                    firing.append(dict(alert, instance=base))
        return Response(body={
            "now": time.time(),
            "firing": firing,
            "firing_count": len(firing),
            "instances": instances,
        })

    async def _fleet_stats(self) -> Response:
        polled = await self._fetch_all("/v1/stats")
        parts = []
        for base, outcome in sorted(polled.items()):
            if isinstance(outcome, BaseException):
                parts.append(f"== {base} ==\nunreachable: "
                             f"{type(outcome).__name__}: {outcome}\n")
            else:
                parts.append(f"== {base} ==\n"
                             + outcome[1].decode("utf-8", "replace"))
        return Response(body="\n".join(parts))


# ---------------------------------------------------------------------------
# Embedding (tests, the fleet benchmark)
class RouterThread:
    """A router running on a private event loop in a thread."""

    START_TIMEOUT_S = 30.0

    def __init__(self, config: RouterConfig) -> None:
        self.app = RouterApp(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.app.port

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "RouterThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="pasm-router")
        self._thread.start()
        self._ready.wait(timeout=self.START_TIMEOUT_S)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise TimeoutError(
                f"router failed to start within {self.START_TIMEOUT_S:g}s")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.app.shutdown(), self._loop
            )
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        async def body():
            try:
                await self.app.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.app._stopped.wait()

        asyncio.run(body())


# ---------------------------------------------------------------------------
# CLI
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Consistent-hash router for a pasm-serve fleet: "
        "identical jobs land on one instance (fleet-wide single-flight "
        "dedup), dead instances are routed around, /metrics and "
        "/v1/stats aggregate the fleet."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (default: $REPRO_ROUTER_PORT or "
                             f"{DEFAULT_ROUTER_PORT}; 0 = ephemeral)")
    parser.add_argument("--instance", action="append", default=[],
                        metavar="URL",
                        help="a pasm-serve base URL (repeatable); also "
                             "accepts comma-separated lists")
    parser.add_argument("--replicas", type=int, default=DEFAULT_REPLICAS,
                        help="virtual nodes per instance on the hash ring")
    parser.add_argument("--upstream-timeout", type=float, default=300.0,
                        metavar="S",
                        help="per-forward ceiling (must exceed the longest "
                             "long-poll)")
    parser.add_argument("--cooldown", type=float, default=2.0, metavar="S",
                        help="how long a dead instance is skipped")
    parser.add_argument("--retry-after", type=float, default=1.0,
                        metavar="S",
                        help="Retry-After hint when the fleet is down")
    parser.add_argument("--log-format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--sample-interval", type=float, default=5.0,
                        metavar="S",
                        help="router health sampler cadence "
                             "(0 disables; default: 5)")
    parser.add_argument("--retention", type=int, default=720,
                        metavar="POINTS",
                        help="timeseries ring bound per series "
                             "(default: 720)")
    args = parser.parse_args(argv)
    instances = tuple(
        part.strip()
        for item in args.instance
        for part in item.split(",")
        if part.strip()
    )
    try:
        config = RouterConfig(
            instances=instances,
            host=args.host,
            **({} if args.port is None else {"port": args.port}),
            replicas=args.replicas,
            upstream_timeout_s=args.upstream_timeout,
            cooldown_s=args.cooldown,
            retry_after_s=args.retry_after,
            log_format=args.log_format,
            sample_interval_s=args.sample_interval,
            retention_points=args.retention,
        )
    except ReproError as exc:
        parser.error(str(exc))
    return asyncio.run(_serve(config))


async def _serve(config: RouterConfig) -> int:
    app = RouterApp(config)
    await app.start()
    loop = asyncio.get_running_loop()
    for signame in ("SIGTERM", "SIGINT"):
        loop.add_signal_handler(
            getattr(signal, signame),
            lambda: asyncio.ensure_future(app.shutdown()),
        )
    app.log.info(
        "startup",
        message=f"pasm-router listening on http://{config.host}:{app.port}",
        instances=",".join(config.instances),
        replicas=config.replicas,
    )
    await app._stopped.wait()
    app.log.info("shutdown", message="pasm-router drained, bye")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
