"""The job broker: single-flight dedup, bounded admission, lanes, drain.

This is the serving half of the execution engine.  Where
:class:`repro.exec.ExecutionEngine` answers one *batch* for one caller,
the broker answers a *stream* of submissions from many concurrent
clients and guarantees:

* **single-flight** — N concurrent submissions of the same content hash
  run exactly one simulation; every submitter attaches to the same
  future (an in-memory registry of completed results then answers
  repeats without touching the pool at all);
* **warm-cache bypass** — a disk-cache hit is served without consuming
  a queue slot or a worker;
* **bounded admission** — at most ``queue_limit`` jobs wait; beyond
  that submissions fail fast with :class:`~repro.errors.BackpressureError`
  (HTTP 429 upstairs) instead of growing an unbounded backlog;
* **priority lanes** — ``interactive`` submissions are always scheduled
  before ``sweep`` ones, so exhibit fan-out never starves a human;
* **crash survival** — a pool worker dying mid-job (including seeded
  ``REPRO_CHAOS`` crashes) breaks the shared process pool; the broker
  rebuilds the pool and resubmits without failing the client's request;
* **graceful drain** — after :meth:`drain` starts, nothing new is
  admitted and in-flight work is given a grace period to finish.

Execution itself is delegated unchanged to :mod:`repro.exec`: the pool
worker entry point, the job implementations, and the on-disk
:class:`~repro.exec.ResultCache` are exactly the ones the CLI path
uses, so a payload served over HTTP is bit-identical to one computed by
``pasm-experiments``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from collections import OrderedDict, deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ExecError,
    ServeError,
    ServiceDrainingError,
)
from repro.exec import ExecStats, ExecutionEngine, SimJobSpec, content_hash_of
from repro.exec.pool import _worker as _pool_worker
from repro.exec.pool import resolve_jobs
from repro.obs.ids import new_trace_id
from repro.obs.tracer import TraceContext, export_chrome, instant_event, span_event
from repro.perf import MetricsRegistry
from repro.serve.config import LANES, ServeConfig
from repro.utils.rng import DEFAULT_SEED

#: Entry lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


def exhibit_key(name: str, seed: int | None) -> str:
    """Content hash identifying one whole-exhibit job."""
    return content_hash_of({"exhibit": name, "seed": seed})


def _pool_context():
    """The start method for the broker's simulation pool.

    The CLI path forks (fast, and safe from a single-threaded caller),
    but the broker lives in a process that always has live threads —
    the event loop, executor feeder threads, exhibit workers — and
    forking a multithreaded process can deadlock the child on a lock
    some other thread held at fork time.  ``spawn`` sidesteps that
    entirely (and, unlike ``forkserver``, re-reads the environment per
    pool, which seeded ``REPRO_CHAOS`` campaigns rely on); the
    interpreter start-up cost is paid once per worker and hidden by the
    warm-up in :meth:`JobBroker.start`.
    """
    methods = multiprocessing.get_all_start_methods()
    method = "spawn" if "spawn" in methods else methods[0]
    return multiprocessing.get_context(method)


class JobEntry:
    """One admitted job: identity, lifecycle, and the shared future."""

    __slots__ = (
        "key", "spec", "exhibit", "seed", "lane", "state", "outcome",
        "future", "created", "started", "finished", "wall", "error",
        "attempts", "waiters", "trace_id", "request_id", "events",
        "attached",
    )

    def __init__(self, key: str, *, spec: SimJobSpec | None = None,
                 exhibit: str | None = None, seed: int | None = None,
                 lane: str = "interactive",
                 future: asyncio.Future | None = None) -> None:
        self.key = key
        self.spec = spec
        self.exhibit = exhibit
        self.seed = seed
        self.lane = lane
        self.state = QUEUED
        self.outcome = "queued"  #: how the *first* submission was admitted
        self.future = future
        self.created = time.monotonic()
        self.started: float | None = None
        self.finished: float | None = None
        self.wall: float | None = None  #: pure compute seconds (no queueing)
        self.error: str | None = None
        self.attempts = 1
        self.waiters = 1  #: submissions attached to this entry so far
        # -- tracing (populated only when the service runs with --trace) --
        self.trace_id: str | None = None
        self.request_id: str | None = None  #: of the admitting request
        self.events: list[dict] | None = None  #: worker per-PE lanes
        self.attached: list[tuple[str, float]] = []  #: (outcome, at)

    def label(self) -> str:
        if self.spec is not None:
            return self.spec.label()
        return f"exhibit/{self.exhibit}"

    def describe(self) -> dict:
        """JSON-able state document (the ``GET /v1/jobs/{hash}`` body)."""
        doc = {
            "job": self.key,
            "label": self.label(),
            "state": self.state,
            "lane": self.lane,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "waiters": self.waiters,
        }
        if self.wall is not None:
            doc["wall_s"] = round(self.wall, 6)
        if self.finished is not None:
            doc["service_s"] = round(self.finished - self.created, 6)
        if self.state == DONE and self.future is not None:
            doc["result"] = self.future.result()
        if self.error is not None:
            doc["error"] = self.error
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc

    def trace_doc(self) -> dict | None:
        """The job's Chrome trace document, or ``None`` when untraced.

        Serve-side lanes (wall microseconds since admission): the queue
        wait from admission to execution start, the execute span, and
        one instant per deduplicated attachment.  The worker's per-PE
        simulated-cycle lanes (:attr:`events`) merge in alongside.
        """
        if self.trace_id is None:
            return None

        def us(t: float) -> float:
            return (t - self.created) * 1e6

        events: list[dict] = [
            instant_event("admitted", ts=0.0, proc="serve", thread="broker",
                          cat="admission",
                          args={"lane": self.lane, "outcome": self.outcome}),
        ]
        if self.started is not None:
            events.append(span_event(
                "queue wait", ts=0.0, dur=us(self.started),
                proc="serve", thread="broker", cat="queue",
            ))
            end = self.finished if self.finished is not None \
                else time.monotonic()
            events.append(span_event(
                "execute", ts=us(self.started), dur=us(end) - us(self.started),
                proc="serve", thread="broker", cat="execute",
                args={"attempts": self.attempts, "state": self.state},
            ))
        elif self.finished is not None:
            # Served without executing (disk-cache admission).
            events.append(instant_event(
                self.outcome, ts=us(self.finished), proc="serve",
                thread="broker", cat="cache",
            ))
        for outcome, at in self.attached:
            events.append(instant_event(
                f"attach ({outcome})", ts=us(at), proc="serve",
                thread="admissions", cat="dedup",
            ))
        if self.events:
            events.extend(self.events)
        meta = {
            "job": self.key,
            "label": self.label(),
            "state": self.state,
            "outcome": self.outcome,
            "waiters": self.waiters,
        }
        if self.request_id:
            meta["request_id"] = self.request_id
        if self.wall is not None:
            meta["wall_s"] = round(self.wall, 6)
        return export_chrome(events, trace_id=self.trace_id, meta=meta)


class JobBroker:
    """Admission, scheduling and completion of simulation jobs.

    All public coroutines must be called on the broker's event loop
    (:attr:`loop`); thread-shaped callers go through
    ``asyncio.run_coroutine_threadsafe`` — see :class:`BrokerEngine`.
    """

    def __init__(self, config: ServeConfig,
                 metrics: MetricsRegistry | None = None,
                 recorder=None) -> None:
        self.config = config
        self.pool_jobs = config.resolved_jobs()
        self.cache = config.make_cache()
        self.metrics = metrics or MetricsRegistry()
        #: Optional :class:`~repro.obs.recorder.FlightRecorder`; the
        #: broker records pool rebuilds and job failures on it.
        self.recorder = recorder
        #: Optional ``(reason: str) -> None`` hook fired on the events
        #: that justify an incident bundle (pool crashes).  The serve
        #: app points this at its flight-recorder dump.
        self.on_incident = None
        self.stats = ExecStats()
        self.entries: "OrderedDict[str, JobEntry]" = OrderedDict()
        self.queues: dict[str, deque[JobEntry]] = {
            lane: deque() for lane in LANES
        }
        self.draining = False
        self.loop: asyncio.AbstractEventLoop | None = None
        self._wakeup: asyncio.Condition | None = None
        self._workers: list[asyncio.Task] = []
        self._executor: ProcessPoolExecutor | None = None
        self._pool_gen = 0
        self._exhibit_pool: ThreadPoolExecutor | None = None
        self._exhibit_tasks: set[asyncio.Task] = set()
        self._describe_metrics()

    def _describe_metrics(self) -> None:
        m = self.metrics
        m.describe("pasm_serve_submitted_total", "counter",
                   "Submissions by admission outcome "
                   "(queued/dedup/memo/cached)")
        m.describe("pasm_serve_computed_total", "counter",
                   "Jobs actually executed on the simulation pool")
        m.describe("pasm_serve_failed_total", "counter",
                   "Jobs that finished in error, by reason")
        m.describe("pasm_serve_resubmits_total", "counter",
                   "Pool-worker crashes survived by resubmission")
        m.describe("pasm_serve_queue_depth", "gauge",
                   "Jobs waiting for a worker, per lane")
        m.describe("pasm_serve_in_flight", "gauge",
                   "Jobs currently executing")
        m.describe("pasm_serve_cache_hit_ratio", "gauge",
                   "Fraction of submissions served without computing "
                   "(dedup + memo + disk cache)")
        m.describe("pasm_serve_job_latency_seconds", "summary",
                   "Submit-to-done service latency of computed jobs")
        m.describe("pasm_serve_exec_seconds", "summary",
                   "Pure execution wall time of computed jobs")
        for lane in LANES:
            m.set_gauge("pasm_serve_queue_depth", 0, lane=lane)

    # ------------------------------------------------------------------
    # Lifecycle
    async def start(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Condition()
        self._executor = ProcessPoolExecutor(
            max_workers=self.pool_jobs, mp_context=_pool_context()
        )
        self._exhibit_pool = ThreadPoolExecutor(
            max_workers=self.config.exhibit_workers,
            thread_name_prefix="exhibit",
        )
        # Pre-spawn every pool worker (each submit spawns at most one)
        # and pre-import the simulation stack in it, so the first real
        # job doesn't pay interpreter + import start-up latency.
        await asyncio.gather(*[
            asyncio.wrap_future(self._executor.submit(resolve_jobs, 1))
            for _ in range(self.pool_jobs)
        ])
        self._workers = [
            asyncio.ensure_future(self._worker_loop())
            for _ in range(self.pool_jobs)
        ]

    async def drain(self, grace_s: float | None = None) -> None:
        """Stop admitting, let in-flight/queued jobs finish, shut down."""
        self.draining = True
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        pending = [
            e.future for e in self.entries.values()
            if e.state in (QUEUED, RUNNING) and e.future is not None
        ]
        if pending:
            await asyncio.wait(pending, timeout=grace)
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        # Fail whatever outlived the grace period: this also unblocks
        # exhibit threads parked on cell futures, so their thread pool
        # can actually wind down instead of hanging process exit.
        for entry in list(self.entries.values()):
            if entry.state in (QUEUED, RUNNING):
                self._fail(entry, "service drained before the job completed",
                           reason="cancelled")
        if self._exhibit_tasks:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*self._exhibit_tasks,
                                   return_exceptions=True),
                    timeout=5.0,
                )
            except asyncio.TimeoutError:
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._exhibit_pool is not None:
            self._exhibit_pool.shutdown(wait=False, cancel_futures=True)
            self._exhibit_pool = None

    # ------------------------------------------------------------------
    # Introspection
    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self.queues.values())

    @property
    def in_flight(self) -> int:
        return sum(1 for e in self.entries.values() if e.state == RUNNING)

    def get(self, key: str) -> JobEntry | None:
        entry = self.entries.get(key)
        if entry is not None and entry.state == DONE:
            self.entries.move_to_end(key)  # LRU touch on the result registry
        return entry

    # ------------------------------------------------------------------
    # Admission
    async def submit(
        self,
        spec: SimJobSpec | None = None,
        *,
        exhibit: str | None = None,
        seed: int | None = None,
        lane: str = "interactive",
        internal: bool = False,
        trace_id: str | None = None,
        request_id: str | None = None,
    ) -> tuple[JobEntry, str]:
        """Admit one job; returns ``(entry, outcome)``.

        Outcomes: ``"queued"`` (new work), ``"dedup"`` (attached to an
        identical in-flight job), ``"memo"`` (served from the in-memory
        result registry), ``"cached"`` (served from the disk cache).
        ``internal=True`` marks broker-originated fan-out (exhibit cell
        jobs): already-admitted work that must not be refused by the
        admission bound it was admitted under.

        ``trace_id``/``request_id`` correlate the submission with the
        HTTP request that carried it.  When the service runs with
        ``trace`` enabled, an admitting external submission records
        broker spans under that trace ID (a fresh one if the client sent
        none) and later submissions attaching to the same job are
        recorded as dedup instants on it; with tracing off both are
        ignored here (IDs still flow through response headers and logs
        upstairs).
        """
        assert self.loop is not None, "broker not started"
        if (spec is None) == (exhibit is None):
            raise ConfigurationError(
                "submit() needs exactly one of spec= or exhibit="
            )
        if lane not in self.queues:
            raise ConfigurationError(
                f"unknown lane {lane!r}; choose from {LANES}"
            )
        tracing = self.config.trace and not internal
        key = spec.content_hash if spec is not None else exhibit_key(
            exhibit, seed
        )
        existing = self.entries.get(key)
        if existing is not None:
            if existing.state == DONE:
                existing.waiters += 1
                self.entries.move_to_end(key)
                if spec is not None:
                    self.stats.record_dedup(spec)
                if tracing:
                    existing.attached.append(("memo", time.monotonic()))
                return existing, self._count_outcome("memo")
            if existing.state in (QUEUED, RUNNING):
                existing.waiters += 1
                if spec is not None:
                    self.stats.record_dedup(spec)
                if tracing:
                    existing.attached.append(("dedup", time.monotonic()))
                return existing, self._count_outcome("dedup")
            # FAILED: fall through — a fresh submission retries the job.
            del self.entries[key]
        if self.draining:
            raise ServiceDrainingError(
                "service is draining; not accepting new jobs",
                retry_after=self.config.retry_after_s,
            )
        entry = JobEntry(key, spec=spec, exhibit=exhibit, seed=seed,
                         lane=lane, future=self.loop.create_future())
        if tracing:
            entry.trace_id = trace_id or new_trace_id()
            entry.request_id = request_id
        # Keep failed futures from warning when nobody ever awaits them.
        entry.future.add_done_callback(_consume_exception)
        # Reserve the key *before* the first await: a concurrent
        # submission of the same spec must attach, not double-compute.
        self.entries[key] = entry
        try:
            if spec is not None and self.cache is not None:
                payload = await self.loop.run_in_executor(
                    None, self.cache.load, spec
                )
                if payload is not None:
                    self.stats.record_hit(spec)
                    self._finish(entry, payload, outcome="cached")
                    return entry, self._count_outcome("cached")
            if not internal and self.queue_depth >= self.config.queue_limit:
                raise BackpressureError(
                    f"admission queue full ({self.config.queue_limit} "
                    f"jobs waiting); retry after "
                    f"{self.config.retry_after_s:g}s",
                    retry_after=self.config.retry_after_s,
                )
        except BaseException as exc:
            del self.entries[key]
            if not entry.future.done():
                entry.future.set_exception(exc)
            raise
        self._count_outcome("queued")
        if exhibit is not None:
            # Exhibits run on their own thread pool immediately: they
            # spend their life *waiting* on cell jobs, so parking them
            # in the worker queue could deadlock the queue behind them.
            entry.state = RUNNING
            task = asyncio.ensure_future(self._run_exhibit(entry))
            self._exhibit_tasks.add(task)
            task.add_done_callback(self._exhibit_tasks.discard)
            return entry, "queued"
        self.queues[lane].append(entry)
        self.metrics.set_gauge("pasm_serve_queue_depth",
                               len(self.queues[lane]), lane=lane)
        async with self._wakeup:
            self._wakeup.notify()
        return entry, "queued"

    async def fetch(self, spec: SimJobSpec, *, lane: str = "sweep",
                    internal: bool = False) -> dict:
        """Submit (or attach) and wait for the payload."""
        entry, _ = await self.submit(spec=spec, lane=lane, internal=internal)
        return await asyncio.shield(entry.future)

    def _count_outcome(self, outcome: str) -> str:
        self.metrics.inc("pasm_serve_submitted_total", outcome=outcome)
        submitted = self.metrics.total("pasm_serve_submitted_total")
        absorbed = sum(
            self.metrics.value("pasm_serve_submitted_total", outcome=o)
            for o in ("dedup", "memo", "cached")
        )
        self.metrics.set_gauge("pasm_serve_cache_hit_ratio",
                               absorbed / submitted if submitted else 0.0)
        return outcome

    # ------------------------------------------------------------------
    # Scheduling
    async def _next_entry(self) -> JobEntry:
        async with self._wakeup:
            while True:
                for lane in LANES:  # declaration order == priority order
                    if self.queues[lane]:
                        entry = self.queues[lane].popleft()
                        self.metrics.set_gauge(
                            "pasm_serve_queue_depth",
                            len(self.queues[lane]), lane=lane,
                        )
                        return entry
                await self._wakeup.wait()

    async def _worker_loop(self) -> None:
        while True:
            try:
                entry = await self._next_entry()
            except asyncio.CancelledError:
                return
            await self._run_entry(entry)

    async def _run_entry(self, entry: JobEntry) -> None:
        entry.state = RUNNING
        entry.started = time.monotonic()
        self.metrics.add_gauge("pasm_serve_in_flight", 1)
        try:
            payload, wall = await asyncio.wait_for(
                self._compute(entry), timeout=self.config.job_timeout_s
            )
        except asyncio.TimeoutError:
            self._fail(entry,
                       f"job {entry.label()} exceeded the "
                       f"{self.config.job_timeout_s:g}s timeout",
                       reason="timeout")
        except asyncio.CancelledError:
            self._fail(entry, "service shut down before the job finished",
                       reason="cancelled")
            raise
        except ServeError as exc:
            self._fail(entry, str(exc), reason="error")
        except Exception as exc:
            self._fail(entry, f"{type(exc).__name__}: {exc}", reason="error")
        else:
            entry.wall = wall
            self.stats.record_run(entry.spec, wall)
            if self.cache is not None:
                await self.loop.run_in_executor(
                    None, self.cache.store, entry.spec, payload
                )
            self.metrics.inc("pasm_serve_computed_total")
            self.metrics.observe("pasm_serve_exec_seconds", wall)
            self._finish(entry, payload, outcome="computed")
        finally:
            self.metrics.add_gauge("pasm_serve_in_flight", -1)

    async def _compute(self, entry: JobEntry) -> tuple[dict, float]:
        """One spec on the shared pool, surviving worker crashes.

        A crashed worker (chaos injection, OOM-kill) breaks the whole
        ``ProcessPoolExecutor``; every in-flight job then lands here,
        the first one swaps in a fresh pool, and each resubmits itself —
        mirroring :func:`repro.exec.pool.run_parallel`'s recovery, but
        incrementally, without failing any client request.
        """
        spec = entry.spec
        if entry.trace_id is not None:
            # The context pickles into the spawn worker; traced_execute
            # re-seeds the job tracer there and ships events back in the
            # result tuple.  Identity is untouched: ``trace`` is not part
            # of the spec's hash, equality, or canonical form.
            spec = replace(spec, trace=TraceContext(trace_id=entry.trace_id))
        resubmits = 0
        while True:
            executor, gen = self._executor, self._pool_gen
            if executor is None:
                raise ServeError("broker is shut down")
            try:
                outcome = await asyncio.wrap_future(
                    executor.submit(_pool_worker, spec)
                )
                if len(outcome) > 2 and outcome[2]:
                    entry.events = list(outcome[2])
                return outcome[0], outcome[1]
            except BrokenExecutor as exc:
                resubmits += 1
                entry.attempts += 1
                self.stats.record_resubmit(entry.spec)
                self.metrics.inc("pasm_serve_resubmits_total")
                self._rebuild_pool(gen)
                if resubmits > self.config.max_resubmits:
                    raise ExecError(
                        f"job {entry.label()} crashed the worker pool "
                        f"{resubmits} times; giving up",
                        job=entry.spec.to_dict(),
                        attempts=entry.attempts,
                        cause=exc,
                    ) from exc

    def _rebuild_pool(self, broken_gen: int) -> None:
        """Replace the broken executor exactly once per breakage."""
        if broken_gen != self._pool_gen or self._executor is None:
            return  # a sibling job already rebuilt it
        self._pool_gen += 1
        old = self._executor
        self._executor = ProcessPoolExecutor(
            max_workers=self.pool_jobs, mp_context=_pool_context()
        )
        old.shutdown(wait=False, cancel_futures=True)
        if self.recorder is not None:
            self.recorder.record("pool_rebuild", generation=self._pool_gen,
                                 in_flight=self.in_flight,
                                 queue_depth=self.queue_depth)
        if self.on_incident is not None:
            self.on_incident("pool-crash")

    # ------------------------------------------------------------------
    # Exhibit jobs
    async def _run_exhibit(self, entry: JobEntry) -> None:
        entry.started = time.monotonic()
        self.metrics.add_gauge("pasm_serve_in_flight", 1)
        try:
            start = time.monotonic()
            text = await asyncio.wait_for(
                self.loop.run_in_executor(
                    self._exhibit_pool, self._compute_exhibit,
                    entry.exhibit, entry.seed,
                ),
                timeout=self.config.job_timeout_s,
            )
        except asyncio.TimeoutError:
            self._fail(entry,
                       f"exhibit {entry.exhibit!r} exceeded the "
                       f"{self.config.job_timeout_s:g}s timeout",
                       reason="timeout")
        except asyncio.CancelledError:
            self._fail(entry, "service shut down before the exhibit finished",
                       reason="cancelled")
            raise
        except Exception as exc:
            self._fail(entry, f"{type(exc).__name__}: {exc}", reason="error")
        else:
            entry.wall = time.monotonic() - start
            self.metrics.inc("pasm_serve_computed_total")
            self._finish(entry, {"exhibit": entry.exhibit, "json": text},
                         outcome="computed")
        finally:
            self.metrics.add_gauge("pasm_serve_in_flight", -1)

    def _compute_exhibit(self, name: str, seed: int | None) -> str:
        """Runs on the exhibit thread pool; fans cells back into *this*
        broker (sweep lane), so dedup/cache/metrics see every cell."""
        from repro.core import DecouplingStudy
        from repro.experiments.runner import EXPERIMENTS

        runner = EXPERIMENTS.get(name)
        if runner is None:
            raise ConfigurationError(
                f"unknown exhibit {name!r}; choose from "
                f"{sorted(EXPERIMENTS)}"
            )
        study = DecouplingStudy(
            seed=DEFAULT_SEED if seed is None else seed,
            exec_engine=BrokerEngine(self),
        )
        return runner(study).to_json()

    # ------------------------------------------------------------------
    # Completion
    def _finish(self, entry: JobEntry, payload: dict, *,
                outcome: str) -> None:
        entry.state = DONE
        entry.outcome = outcome
        entry.finished = time.monotonic()
        if not entry.future.done():
            entry.future.set_result(payload)
        if outcome != "cached":
            self.metrics.observe("pasm_serve_job_latency_seconds",
                                 entry.finished - entry.created)
        self._evict_completed()

    def _fail(self, entry: JobEntry, message: str, *, reason: str) -> None:
        entry.state = FAILED
        entry.finished = time.monotonic()
        entry.error = message
        self.metrics.inc("pasm_serve_failed_total", reason=reason)
        if self.recorder is not None:
            self.recorder.record("job_failed", job=entry.key[:16],
                                 label=entry.label(), reason=reason,
                                 error=message, lane=entry.lane,
                                 attempts=entry.attempts,
                                 request_id=entry.request_id,
                                 trace_id=entry.trace_id)
        if not entry.future.done():
            job = entry.spec.to_dict() if entry.spec is not None else None
            entry.future.set_exception(
                ExecError(message, job=job, attempts=entry.attempts)
            )
        self._evict_completed()

    def _evict_completed(self) -> None:
        """Bound the in-memory result registry (oldest-touched first)."""
        completed = sum(
            1 for e in self.entries.values() if e.state in (DONE, FAILED)
        )
        if completed <= self.config.max_entries:
            return
        for key in list(self.entries):
            if completed <= self.config.max_entries:
                break
            if self.entries[key].state in (DONE, FAILED):
                del self.entries[key]
                completed -= 1


def _consume_exception(future: asyncio.Future) -> None:
    if not future.cancelled():
        future.exception()  # mark retrieved; waiters re-raise their own copy


class BrokerEngine(ExecutionEngine):
    """An :class:`~repro.exec.ExecutionEngine` facade over a broker.

    Exhibit computations run on plain (synchronous) study/experiment
    code in a worker thread; this engine is what their
    :class:`~repro.core.DecouplingStudy` schedules through.  Each spec
    becomes a ``sweep``-lane broker submission, so identical cells
    across concurrent exhibits coalesce and land in the shared caches —
    while the study code stays byte-for-byte the CLI code path.
    """

    def __init__(self, broker: JobBroker, *, lane: str = "sweep") -> None:
        super().__init__(jobs=broker.pool_jobs, cache=None,
                         stats=broker.stats)
        self._broker = broker
        self._lane = lane

    def run(self, specs) -> list[dict]:
        specs = list(specs)
        futures = [
            asyncio.run_coroutine_threadsafe(
                self._broker.fetch(spec, lane=self._lane, internal=True),
                self._broker.loop,
            )
            for spec in specs
        ]
        return [f.result() for f in futures]
