"""The simulation service: HTTP routes over the job broker.

Endpoints
---------
``POST /v1/jobs``
    Body ``{"spec": <SimJobSpec.to_dict()>}`` or ``{"exhibit": "fig7"}``
    (optional ``"lane"``, ``"seed"``).  Returns 202 with a job document
    while work is pending, 200 when the answer was already known
    (single-flight memo or disk cache), 429 + ``Retry-After`` on queue
    overflow, 503 while draining.  ``?wait=1[&timeout=s]`` long-polls.
``GET /v1/jobs/{hash}``
    Job state document; ``?wait=1`` long-polls for completion.
``GET /v1/jobs/{hash}/trace``
    The job's merged Chrome trace-event JSON (serve lanes + per-PE
    simulated-time lanes) — load it in Perfetto or ``chrome://tracing``.
    Only available when the service runs with ``--trace``.
``GET|POST /v1/exhibits/{name}``
    Submit a whole exhibit; with ``?wait=1`` the response body is the
    *raw* exhibit JSON — byte-identical to what ``pasm-experiments
    --out`` writes for the same exhibit.
``GET /healthz``
    Liveness + queue/in-flight gauges.
``GET /metrics``
    Prometheus text rendering of the broker's
    :class:`repro.perf.MetricsRegistry` (plus ``pasm_process_*``
    self-metrics and ``pasm_slo_*`` alert state).
``GET /v1/timeseries``
    The retained metric history (ring-buffer samples; counters carry
    derived rates).  ``?since=<unix ts>`` trims the window.  404 when
    sampling is disabled (``--sample-interval 0``).
``GET /v1/alerts``
    Burn-rate alert state of every SLO (``repro.obs.slo``).
``GET /v1/stats``
    The execution engine's ``--stats`` table, as text.

``SIGQUIT`` dumps a flight-recorder incident bundle (recent requests,
shed decisions, pool rebuilds, alert transitions — correlation IDs
intact) without disturbing the service; SLO pages and pool crashes dump
one automatically.

Run it::

    pasm-serve --port 8137 --jobs 4        # console script
    python -m repro.serve.app --port 8137  # same thing

SIGTERM/SIGINT drain gracefully: in-flight and queued jobs get
``--drain-grace`` seconds to finish while new submissions are refused.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import threading
import time

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ReproError,
    ServiceDrainingError,
)
from repro.exec import SimJobSpec
from repro.obs.ids import (
    format_traceparent,
    new_request_id,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.jsonlog import StructuredLogger
from repro.obs.procstats import ProcessStats
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOEvaluator
from repro.obs.timeseries import TimeseriesStore
from repro.serve.broker import DONE, FAILED, JobBroker, JobEntry
from repro.serve.config import LANES, ServeConfig
from repro.serve.http import HttpServer, Request, Response

#: repro.serve API version implemented by this module.
API_VERSION = "v1"


class ServeApp:
    """Wires an :class:`HttpServer` to a :class:`JobBroker`."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.log = StructuredLogger(fmt=self.config.log_format)
        self.recorder = FlightRecorder(
            self.config.recorder_events,
            dump_dir=self.config.recorder_dir,
            instance=self.config.instance or "",
        )
        self.broker = JobBroker(self.config, recorder=self.recorder)
        self.broker.on_incident = self.dump_incident
        self.metrics = self.broker.metrics
        self.procstats = ProcessStats(self.metrics)
        self.timeseries: TimeseriesStore | None = None
        self.slo: SLOEvaluator | None = None
        if self.config.sampling_enabled:
            self.timeseries = TimeseriesStore(
                self.metrics,
                interval_s=self.config.sample_interval_s,
                retention_points=self.config.retention_points,
            )
            self.slo = SLOEvaluator(
                self.config.make_slos(), self.timeseries,
                metrics=self.metrics, log=self.log,
                on_fire=self._on_slo_fire, on_resolve=self._on_slo_resolve,
            )
        self.server = HttpServer(self.handle, host=self.config.host,
                                 port=self.config.port)
        self._stopped: asyncio.Event | None = None
        self._sampler: asyncio.Task | None = None
        self._last_heartbeat = time.monotonic()

    @property
    def port(self) -> int:
        return self.server.port

    # ------------------------------------------------------------------
    # Lifecycle
    @property
    def instance_name(self) -> str:
        """This fleet member's identity (``--name`` or host:port)."""
        return self.config.instance or f"{self.config.host}:{self.port}"

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        await self.broker.start()
        await self.server.start()
        # Identity is only final once the port is bound (port=0 cases).
        self.metrics.describe(
            "pasm_serve_instance_info", "gauge",
            "Constant 1 per live instance, labelled with its identity "
            "(the router's aggregated /metrics keeps one line each)")
        self.metrics.set_gauge("pasm_serve_instance_info", 1,
                               instance=self.instance_name)
        self.recorder.instance = self.instance_name
        tick = self._tick_interval()
        if tick is not None:
            self._sampler = asyncio.ensure_future(self._sampler_loop(tick))

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish what's admitted."""
        if self._stopped is None or self._stopped.is_set():
            return
        self.broker.draining = True
        if self._sampler is not None:
            self._sampler.cancel()
            await asyncio.gather(self._sampler, return_exceptions=True)
            self._sampler = None
        await self.server.stop()
        await self.broker.drain()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Health sampling: timeseries points, SLO evaluation, heartbeat
    def _tick_interval(self) -> float | None:
        """Sampler cadence, or ``None`` when nothing needs a loop."""
        if self.config.sampling_enabled:
            return self.config.sample_interval_s
        if self.config.heartbeat_interval_s > 0:
            return self.config.heartbeat_interval_s
        return None

    async def _sampler_loop(self, tick: float) -> None:
        while True:
            await asyncio.sleep(tick)
            try:
                self.sample_once()
            except Exception as exc:  # sampling must never kill the app
                self.log.warning("sampler_error",
                                 error=f"{type(exc).__name__}: {exc}")

    def sample_once(self) -> None:
        """One health tick (tests call this directly, no loop needed)."""
        self.procstats.collect()
        if self.timeseries is not None:
            self.timeseries.sample()
        if self.slo is not None:
            self.slo.evaluate()
        interval = self.config.heartbeat_interval_s
        now = time.monotonic()
        if interval > 0 and now - self._last_heartbeat >= interval:
            self._last_heartbeat = now
            self.heartbeat()

    def heartbeat(self) -> None:
        """One structured history line for scrape-free deployments."""
        m = self.metrics
        self.log.info(
            "heartbeat",
            instance=self.instance_name,
            queue_depth=self.broker.queue_depth,
            in_flight=self.broker.in_flight,
            cache_hit_ratio=round(
                m.value("pasm_serve_cache_hit_ratio"), 4),
            submitted=int(m.total("pasm_serve_submitted_total")),
            computed=int(m.total("pasm_serve_computed_total")),
            failed=int(m.total("pasm_serve_failed_total")),
            alerts_firing=len(self.slo.firing) if self.slo else 0,
            uptime_s=round(m.value("pasm_process_uptime_seconds"), 1),
        )

    # ------------------------------------------------------------------
    # Incidents
    def _on_slo_fire(self, state) -> None:
        self.recorder.record("alert", slo=state.slo.name, to="firing",
                             measured=state.last_measured,
                             target=state.slo.target,
                             burn=dict(state.last_burn))
        self.dump_incident(f"slo-{state.slo.name}")

    def _on_slo_resolve(self, state) -> None:
        self.recorder.record("alert", slo=state.slo.name, to="ok")

    def dump_incident(self, reason: str, *, force: bool = False) -> str | None:
        """Write a flight-recorder bundle (rate-limited unless forced)."""
        extra: dict = {
            "instance": self.instance_name,
            "queue_depth": self.broker.queue_depth,
            "in_flight": self.broker.in_flight,
            "pool_jobs": self.broker.pool_jobs,
        }
        if self.slo is not None:
            extra["alerts"] = self.slo.to_doc()
        path = self.recorder.dump(reason, extra=extra, force=force)
        if path is not None:
            self.log.warning("flight_recorder_dump", reason=reason,
                             path=path)
        return path

    async def run_forever(self) -> None:
        await self.start()
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Routing
    async def handle(self, request: Request) -> Response:
        """Route one request; correlate, log, and count it.

        Every response carries an ``X-Request-ID`` (echoed from the
        request, minted otherwise) and every error body names it, so a
        client reporting shed load can quote the exact exchange.  A
        ``traceparent`` the client sent is echoed back with a fresh
        span ID; with ``--trace`` the service mints one itself, so the
        response header, the access-log line, and the job's exported
        trace all share one trace ID.
        """
        start = time.perf_counter()
        request_id = request.headers.get("x-request-id") or new_request_id()
        parent = parse_traceparent(request.headers.get("traceparent"))
        if parent is not None:
            trace_id = parent[0]
        elif self.config.trace:
            trace_id = new_trace_id()
        else:
            trace_id = None
        try:
            response = await self._route(request, trace_id, request_id)
        except Exception as exc:  # noqa: BLE001
            # A handler bug answered by the raw HTTP layer would bypass
            # the metrics/log/recorder below — and with them the
            # error-ratio SLO.  Convert it here so the 500 is counted.
            self.log.error("handler_error", path=request.path,
                           error=f"{type(exc).__name__}: {exc}",
                           request_id=request_id)
            response = _error(500, f"{type(exc).__name__}: {exc}")
        if response.status >= 400 and isinstance(response.body, dict):
            response.body.setdefault("request_id", request_id)
        extra = [("X-Request-ID", request_id)]
        if trace_id is not None:
            extra.append(("traceparent",
                          format_traceparent(trace_id, new_span_id())))
        response.headers = tuple(response.headers) + tuple(extra)
        self.metrics.inc(
            "pasm_serve_requests_total",
            help_="HTTP requests by method/path/status",
            method=request.method,
            path=_route_label(request.path),
            status=response.status,
        )
        fields = {
            "method": request.method,
            "path": request.path,
            "status": response.status,
            "dur_ms": round((time.perf_counter() - start) * 1e3, 3),
            "request_id": request_id,
        }
        if trace_id is not None:
            fields["trace_id"] = trace_id
        self.log.info("request", **fields)
        self.recorder.record("request", **fields)
        if response.status in (429, 503):
            retry_after = response.body.get("retry_after") \
                if isinstance(response.body, dict) else None
            self.recorder.record("shed", status=response.status,
                                 path=request.path, request_id=request_id,
                                 trace_id=trace_id, retry_after=retry_after,
                                 queue_depth=self.broker.queue_depth)
        return response

    async def _route(self, request: Request, trace_id: str | None,
                     request_id: str) -> Response:
        path, method = request.path.rstrip("/") or "/", request.method
        try:
            if path == "/healthz" and method == "GET":
                return self._healthz()
            if path == "/metrics" and method == "GET":
                self.procstats.collect()
                return Response(
                    body=self.metrics.render(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            if path == "/v1/stats" and method == "GET":
                return Response(body=self.broker.stats.summary_table(
                    title=f"serve stats (pool={self.broker.pool_jobs})"
                ) + "\n")
            if path == "/v1/timeseries" and method == "GET":
                return self._timeseries(request)
            if path == "/v1/alerts" and method == "GET":
                return self._alerts()
            if path == "/v1/jobs" and method == "POST":
                return await self._submit(request, trace_id, request_id)
            if path.startswith("/v1/jobs/") and path.endswith("/trace") \
                    and method == "GET":
                return self._job_trace(path[len("/v1/jobs/"):-len("/trace")])
            if path.startswith("/v1/jobs/") and method == "GET":
                return await self._job_status(request,
                                              path[len("/v1/jobs/"):])
            if path.startswith("/v1/exhibits/") and method in ("GET", "POST"):
                return await self._exhibit(request,
                                           path[len("/v1/exhibits/"):])
            if path in ("/v1/jobs", "/v1/exhibits", "/healthz", "/metrics",
                        "/v1/stats", "/v1/timeseries", "/v1/alerts"):
                return _error(405, f"{method} not supported on {path}")
            return _error(404, f"no route for {path}")
        except BackpressureError as exc:
            return _retryable(429, str(exc), exc.retry_after)
        except ServiceDrainingError as exc:
            return _retryable(503, str(exc), exc.retry_after)
        except ConfigurationError as exc:
            return _error(400, str(exc))

    # ------------------------------------------------------------------
    # Handlers
    def _healthz(self) -> Response:
        return Response(body={
            "status": "draining" if self.broker.draining else "ok",
            "instance": self.instance_name,
            "queue_depth": self.broker.queue_depth,
            "in_flight": self.broker.in_flight,
            "pool_jobs": self.broker.pool_jobs,
            "cache": self.broker.cache is not None,
            "alerts_firing": len(self.slo.firing) if self.slo else 0,
            "api": API_VERSION,
        })

    def _timeseries(self, request: Request) -> Response:
        if self.timeseries is None:
            return _error(404, "timeseries sampling is disabled "
                               "(service started with --sample-interval 0)")
        since = None
        if "since" in request.query:
            try:
                since = float(request.query["since"])
            except ValueError:
                return _error(400, f"since must be a unix timestamp, got "
                                   f"{request.query['since']!r}")
        return Response(body=self.timeseries.to_doc(
            since=since, instance=self.instance_name,
        ))

    def _alerts(self) -> Response:
        if self.slo is None:
            return _error(404, "SLO evaluation is disabled "
                               "(service started with --sample-interval 0)")
        return Response(body=self.slo.to_doc(instance=self.instance_name))

    async def _submit(self, request: Request, trace_id: str | None,
                      request_id: str) -> Response:
        doc = request.json()
        if not isinstance(doc, dict):
            return _error(400, "request body must be a JSON object")
        lane = doc.get("lane", "interactive")
        if lane not in LANES:
            return _error(400, f"unknown lane {lane!r}; choose from {LANES}")
        if ("spec" in doc) == ("exhibit" in doc):
            return _error(400,
                          'body needs exactly one of "spec" or "exhibit"')
        if "spec" in doc:
            try:
                spec = SimJobSpec.from_dict(doc["spec"])
            except ReproError as exc:
                return _error(400, f"invalid job spec: {exc}")
            except (AttributeError, KeyError, TypeError, ValueError) as exc:
                return _error(400, f"malformed job spec: {exc!r}")
            entry, outcome = await self.broker.submit(
                spec=spec, lane=lane, trace_id=trace_id,
                request_id=request_id,
            )
        else:
            seed = doc.get("seed")
            if seed is not None and not isinstance(seed, int):
                return _error(400, f"seed must be an integer, got {seed!r}")
            entry, outcome = await self.broker.submit(
                exhibit=str(doc["exhibit"]), seed=seed, lane=lane,
                trace_id=trace_id, request_id=request_id,
            )
        if request.flag("wait"):
            await self._wait(entry, request)
        return self._entry_response(entry, outcome)

    async def _job_status(self, request: Request, key: str) -> Response:
        entry = self.broker.get(key)
        if entry is None:
            return _error(404, f"no such job {key!r} (expired or never "
                               "submitted)")
        if request.flag("wait"):
            await self._wait(entry, request)
        return self._entry_response(entry, entry.outcome)

    def _job_trace(self, key: str) -> Response:
        entry = self.broker.get(key)
        if entry is None:
            return _error(404, f"no such job {key!r} (expired or never "
                               "submitted)")
        doc = entry.trace_doc()
        if doc is None:
            return _error(404,
                          f"job {key!r} was not traced (start the service "
                          "with --trace to record job traces)")
        return Response(body=doc)

    async def _exhibit(self, request: Request, name: str) -> Response:
        if not name:
            return _error(404, "missing exhibit name")
        seed = None
        if "seed" in request.query:
            try:
                seed = int(request.query["seed"])
            except ValueError:
                return _error(400,
                              f"seed must be an integer, got "
                              f"{request.query['seed']!r}")
        entry, outcome = await self.broker.submit(
            exhibit=name, lane=request.query.get("lane", "sweep"), seed=seed,
        )
        if request.flag("wait"):
            await self._wait(entry, request)
            if entry.state == DONE:
                # The raw exhibit document, byte-identical to the file
                # `pasm-experiments <name> --out` writes.  The header
                # lets clients tell it apart from a job-state document.
                return Response(body=entry.future.result()["json"],
                                content_type="application/json",
                                headers=(("X-PASM-Exhibit", name),))
        return self._entry_response(entry, outcome)

    async def _wait(self, entry: JobEntry, request: Request) -> None:
        """Long-poll an entry; on timeout just return the current state."""
        try:
            timeout = float(request.query.get(
                "timeout", self.config.wait_timeout_s
            ))
        except ValueError:
            timeout = self.config.wait_timeout_s
        if entry.future is None or entry.future.done():
            return
        try:
            await asyncio.wait_for(asyncio.shield(entry.future), timeout)
        except (asyncio.TimeoutError, Exception):
            pass  # state document carries the failure/progress either way

    def _entry_response(self, entry: JobEntry, outcome: str) -> Response:
        doc = entry.describe()
        doc["outcome"] = outcome
        doc["location"] = f"/v1/jobs/{entry.key}"
        if entry.state == DONE:
            return Response(status=200, body=doc)
        if entry.state == FAILED:
            return Response(status=500, body=doc)
        return Response(status=202, body=doc)


def _route_label(path: str) -> str:
    """Collapse per-job paths so the request counter stays low-cardinality."""
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/{hash}"
    if path.startswith("/v1/exhibits/"):
        return "/v1/exhibits/{name}"
    return path


def _error(status: int, message: str) -> Response:
    return Response(status=status, body={"error": message})


def _retryable(status: int, message: str, retry_after: float) -> Response:
    return Response(
        status=status,
        body={"error": message, "retry_after": retry_after},
        headers=(("Retry-After", f"{max(1, round(retry_after))}"),),
    )


# ---------------------------------------------------------------------------
# Embedding (tests, the load generator)
class ServerThread:
    """A full service running on a private event loop in a thread.

    The load generator and the test suite embed the service this way;
    production deployments use ``pasm-serve``.  ``stop()`` performs the
    same graceful drain as SIGTERM.
    """

    #: Pool warm-up pays one interpreter spawn + simulation-stack import
    #: per worker; on a loaded single-core CI box that can take well over
    #: an "obviously generous" 30s, so the ready deadline is high.
    START_TIMEOUT_S = 120.0

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.app = ServeApp(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.app.port

    @property
    def address(self) -> tuple[str, int]:
        return self.app.config.host, self.app.port

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="pasm-serve")
        self._thread.start()
        self._ready.wait(timeout=self.START_TIMEOUT_S)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise TimeoutError(
                f"service failed to start within {self.START_TIMEOUT_S:g}s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.app.shutdown(), self._loop
            )
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        async def body():
            try:
                await self.app.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.app._stopped.wait()

        asyncio.run(body())


# ---------------------------------------------------------------------------
# CLI
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve PASM reproduction simulations over HTTP: "
        "single-flight dedup, bounded admission with backpressure, "
        "priority lanes, Prometheus metrics."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (default: $REPRO_SERVE_PORT or 8137; "
                             "0 = ephemeral)")
    parser.add_argument("--jobs", default=None, metavar="N",
                        help="simulation pool width (default: $REPRO_JOBS or "
                             "one per core)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="bounded admission queue; beyond it submissions "
                             "get 429 + Retry-After (default: 64)")
    parser.add_argument("--job-timeout", type=float, default=600.0,
                        metavar="S", help="per-job execution ceiling")
    parser.add_argument("--retry-after", type=float, default=1.0, metavar="S",
                        help="suggested client delay on 429/503")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        metavar="S", help="SIGTERM drain grace period")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ./.repro_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        metavar="MB",
                        help="LRU size cap on the result cache (default: "
                             "$REPRO_CACHE_MAX_MB or unbounded)")
    parser.add_argument("--trace", action="store_true",
                        help="record end-to-end job traces (broker spans + "
                             "per-PE simulated-time lanes), exported at "
                             "GET /v1/jobs/{hash}/trace")
    parser.add_argument("--log-format", choices=("text", "json"),
                        default="text",
                        help="access/lifecycle log rendering on stderr "
                             "(default: text)")
    parser.add_argument("--name", default=None, metavar="NAME",
                        help="instance name for fleet views "
                             "(default: host:port)")
    parser.add_argument("--sample-interval", type=float, default=5.0,
                        metavar="S",
                        help="health sampler cadence: timeseries points, "
                             "SLO evaluation, self-metrics (0 disables; "
                             "default: 5)")
    parser.add_argument("--retention", type=int, default=720,
                        metavar="POINTS",
                        help="timeseries ring bound per series "
                             "(default: 720 = 1h at 5s)")
    parser.add_argument("--heartbeat", type=float, default=60.0, metavar="S",
                        help="heartbeat log-line interval (0 disables; "
                             "default: 60)")
    parser.add_argument("--slo-error-ratio", type=float, default=0.05,
                        metavar="FRAC",
                        help="429/5xx ratio SLO target (default: 0.05)")
    parser.add_argument("--slo-p95", type=float, default=60.0, metavar="S",
                        help="p95 job-latency SLO target (default: 60)")
    parser.add_argument("--slo-dedup-min", type=float, default=None,
                        metavar="FRAC",
                        help="minimum dedup/cache-hit ratio SLO "
                             "(default: off)")
    parser.add_argument("--slo-fast-window", type=float, default=60.0,
                        metavar="S",
                        help="fast burn-rate window (default: 60)")
    parser.add_argument("--slo-slow-window", type=float, default=300.0,
                        metavar="S",
                        help="slow burn-rate window (default: 300)")
    parser.add_argument("--recorder-dir", default=None, metavar="DIR",
                        help="flight-recorder bundle directory (default: "
                             "$REPRO_FLIGHTREC_DIR or ./.pasm-flightrec)")
    args = parser.parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host,
            **({} if args.port is None else {"port": args.port}),
            jobs=args.jobs,
            queue_limit=args.queue_limit,
            job_timeout_s=args.job_timeout,
            retry_after_s=args.retry_after,
            drain_grace_s=args.drain_grace,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            cache_max_mb=args.cache_max_mb,
            trace=args.trace,
            log_format=args.log_format,
            instance=args.name,
            sample_interval_s=args.sample_interval,
            retention_points=args.retention,
            heartbeat_interval_s=args.heartbeat,
            slo_error_ratio=args.slo_error_ratio,
            slo_p95_latency_s=args.slo_p95,
            slo_dedup_min=args.slo_dedup_min,
            slo_fast_window_s=args.slo_fast_window,
            slo_slow_window_s=args.slo_slow_window,
            recorder_dir=args.recorder_dir,
        )
        config.resolved_jobs()
    except ReproError as exc:
        parser.error(str(exc))
    return asyncio.run(_serve(config))


async def _serve(config: ServeConfig) -> int:
    app = ServeApp(config)
    await app.start()
    loop = asyncio.get_running_loop()
    for signame in ("SIGTERM", "SIGINT"):
        loop.add_signal_handler(
            getattr(signal, signame),
            lambda: asyncio.ensure_future(app.shutdown()),
        )
    if hasattr(signal, "SIGQUIT"):
        # Operator-requested incident bundle; the service keeps running.
        loop.add_signal_handler(
            signal.SIGQUIT,
            lambda: app.dump_incident("sigquit", force=True),
        )
    app.log.info(
        "startup",
        message=f"pasm-serve listening on http://{config.host}:{app.port}",
        instance=app.instance_name,
        pool=app.broker.pool_jobs,
        queue_limit=config.queue_limit,
        cache="on" if app.broker.cache is not None else "off",
        trace="on" if config.trace else "off",
    )
    await app._stopped.wait()
    app.log.info("shutdown", message="pasm-serve drained, bye")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
