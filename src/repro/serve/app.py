"""The simulation service: HTTP routes over the job broker.

Endpoints
---------
``POST /v1/jobs``
    Body ``{"spec": <SimJobSpec.to_dict()>}`` or ``{"exhibit": "fig7"}``
    (optional ``"lane"``, ``"seed"``).  Returns 202 with a job document
    while work is pending, 200 when the answer was already known
    (single-flight memo or disk cache), 429 + ``Retry-After`` on queue
    overflow, 503 while draining.  ``?wait=1[&timeout=s]`` long-polls.
``GET /v1/jobs/{hash}``
    Job state document; ``?wait=1`` long-polls for completion.
``GET /v1/jobs/{hash}/trace``
    The job's merged Chrome trace-event JSON (serve lanes + per-PE
    simulated-time lanes) — load it in Perfetto or ``chrome://tracing``.
    Only available when the service runs with ``--trace``.
``GET|POST /v1/exhibits/{name}``
    Submit a whole exhibit; with ``?wait=1`` the response body is the
    *raw* exhibit JSON — byte-identical to what ``pasm-experiments
    --out`` writes for the same exhibit.
``GET /healthz``
    Liveness + queue/in-flight gauges.
``GET /metrics``
    Prometheus text rendering of the broker's
    :class:`repro.perf.MetricsRegistry`.
``GET /v1/stats``
    The execution engine's ``--stats`` table, as text.

Run it::

    pasm-serve --port 8137 --jobs 4        # console script
    python -m repro.serve.app --port 8137  # same thing

SIGTERM/SIGINT drain gracefully: in-flight and queued jobs get
``--drain-grace`` seconds to finish while new submissions are refused.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import threading
import time

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ReproError,
    ServiceDrainingError,
)
from repro.exec import SimJobSpec
from repro.obs.ids import (
    format_traceparent,
    new_request_id,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.jsonlog import StructuredLogger
from repro.serve.broker import DONE, FAILED, JobBroker, JobEntry
from repro.serve.config import LANES, ServeConfig
from repro.serve.http import HttpServer, Request, Response

#: repro.serve API version implemented by this module.
API_VERSION = "v1"


class ServeApp:
    """Wires an :class:`HttpServer` to a :class:`JobBroker`."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.broker = JobBroker(self.config)
        self.metrics = self.broker.metrics
        self.log = StructuredLogger(fmt=self.config.log_format)
        self.server = HttpServer(self.handle, host=self.config.host,
                                 port=self.config.port)
        self._stopped: asyncio.Event | None = None

    @property
    def port(self) -> int:
        return self.server.port

    # ------------------------------------------------------------------
    # Lifecycle
    @property
    def instance_name(self) -> str:
        """This fleet member's identity (``--name`` or host:port)."""
        return self.config.instance or f"{self.config.host}:{self.port}"

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        await self.broker.start()
        await self.server.start()
        # Identity is only final once the port is bound (port=0 cases).
        self.metrics.describe(
            "pasm_serve_instance_info", "gauge",
            "Constant 1 per live instance, labelled with its identity "
            "(the router's aggregated /metrics keeps one line each)")
        self.metrics.set_gauge("pasm_serve_instance_info", 1,
                               instance=self.instance_name)

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish what's admitted."""
        if self._stopped is None or self._stopped.is_set():
            return
        self.broker.draining = True
        await self.server.stop()
        await self.broker.drain()
        self._stopped.set()

    async def run_forever(self) -> None:
        await self.start()
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Routing
    async def handle(self, request: Request) -> Response:
        """Route one request; correlate, log, and count it.

        Every response carries an ``X-Request-ID`` (echoed from the
        request, minted otherwise) and every error body names it, so a
        client reporting shed load can quote the exact exchange.  A
        ``traceparent`` the client sent is echoed back with a fresh
        span ID; with ``--trace`` the service mints one itself, so the
        response header, the access-log line, and the job's exported
        trace all share one trace ID.
        """
        start = time.perf_counter()
        request_id = request.headers.get("x-request-id") or new_request_id()
        parent = parse_traceparent(request.headers.get("traceparent"))
        if parent is not None:
            trace_id = parent[0]
        elif self.config.trace:
            trace_id = new_trace_id()
        else:
            trace_id = None
        response = await self._route(request, trace_id, request_id)
        if response.status >= 400 and isinstance(response.body, dict):
            response.body.setdefault("request_id", request_id)
        extra = [("X-Request-ID", request_id)]
        if trace_id is not None:
            extra.append(("traceparent",
                          format_traceparent(trace_id, new_span_id())))
        response.headers = tuple(response.headers) + tuple(extra)
        self.metrics.inc(
            "pasm_serve_requests_total",
            help_="HTTP requests by method/path/status",
            method=request.method,
            path=_route_label(request.path),
            status=response.status,
        )
        fields = {
            "method": request.method,
            "path": request.path,
            "status": response.status,
            "dur_ms": round((time.perf_counter() - start) * 1e3, 3),
            "request_id": request_id,
        }
        if trace_id is not None:
            fields["trace_id"] = trace_id
        self.log.info("request", **fields)
        return response

    async def _route(self, request: Request, trace_id: str | None,
                     request_id: str) -> Response:
        path, method = request.path.rstrip("/") or "/", request.method
        try:
            if path == "/healthz" and method == "GET":
                return self._healthz()
            if path == "/metrics" and method == "GET":
                return Response(
                    body=self.metrics.render(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            if path == "/v1/stats" and method == "GET":
                return Response(body=self.broker.stats.summary_table(
                    title=f"serve stats (pool={self.broker.pool_jobs})"
                ) + "\n")
            if path == "/v1/jobs" and method == "POST":
                return await self._submit(request, trace_id, request_id)
            if path.startswith("/v1/jobs/") and path.endswith("/trace") \
                    and method == "GET":
                return self._job_trace(path[len("/v1/jobs/"):-len("/trace")])
            if path.startswith("/v1/jobs/") and method == "GET":
                return await self._job_status(request,
                                              path[len("/v1/jobs/"):])
            if path.startswith("/v1/exhibits/") and method in ("GET", "POST"):
                return await self._exhibit(request,
                                           path[len("/v1/exhibits/"):])
            if path in ("/v1/jobs", "/v1/exhibits", "/healthz", "/metrics",
                        "/v1/stats"):
                return _error(405, f"{method} not supported on {path}")
            return _error(404, f"no route for {path}")
        except BackpressureError as exc:
            return _retryable(429, str(exc), exc.retry_after)
        except ServiceDrainingError as exc:
            return _retryable(503, str(exc), exc.retry_after)
        except ConfigurationError as exc:
            return _error(400, str(exc))

    # ------------------------------------------------------------------
    # Handlers
    def _healthz(self) -> Response:
        return Response(body={
            "status": "draining" if self.broker.draining else "ok",
            "instance": self.instance_name,
            "queue_depth": self.broker.queue_depth,
            "in_flight": self.broker.in_flight,
            "pool_jobs": self.broker.pool_jobs,
            "cache": self.broker.cache is not None,
            "api": API_VERSION,
        })

    async def _submit(self, request: Request, trace_id: str | None,
                      request_id: str) -> Response:
        doc = request.json()
        if not isinstance(doc, dict):
            return _error(400, "request body must be a JSON object")
        lane = doc.get("lane", "interactive")
        if lane not in LANES:
            return _error(400, f"unknown lane {lane!r}; choose from {LANES}")
        if ("spec" in doc) == ("exhibit" in doc):
            return _error(400,
                          'body needs exactly one of "spec" or "exhibit"')
        if "spec" in doc:
            try:
                spec = SimJobSpec.from_dict(doc["spec"])
            except ReproError as exc:
                return _error(400, f"invalid job spec: {exc}")
            except (KeyError, TypeError, ValueError) as exc:
                return _error(400, f"malformed job spec: {exc!r}")
            entry, outcome = await self.broker.submit(
                spec=spec, lane=lane, trace_id=trace_id,
                request_id=request_id,
            )
        else:
            seed = doc.get("seed")
            if seed is not None and not isinstance(seed, int):
                return _error(400, f"seed must be an integer, got {seed!r}")
            entry, outcome = await self.broker.submit(
                exhibit=str(doc["exhibit"]), seed=seed, lane=lane,
                trace_id=trace_id, request_id=request_id,
            )
        if request.flag("wait"):
            await self._wait(entry, request)
        return self._entry_response(entry, outcome)

    async def _job_status(self, request: Request, key: str) -> Response:
        entry = self.broker.get(key)
        if entry is None:
            return _error(404, f"no such job {key!r} (expired or never "
                               "submitted)")
        if request.flag("wait"):
            await self._wait(entry, request)
        return self._entry_response(entry, entry.outcome)

    def _job_trace(self, key: str) -> Response:
        entry = self.broker.get(key)
        if entry is None:
            return _error(404, f"no such job {key!r} (expired or never "
                               "submitted)")
        doc = entry.trace_doc()
        if doc is None:
            return _error(404,
                          f"job {key!r} was not traced (start the service "
                          "with --trace to record job traces)")
        return Response(body=doc)

    async def _exhibit(self, request: Request, name: str) -> Response:
        if not name:
            return _error(404, "missing exhibit name")
        seed = None
        if "seed" in request.query:
            try:
                seed = int(request.query["seed"])
            except ValueError:
                return _error(400,
                              f"seed must be an integer, got "
                              f"{request.query['seed']!r}")
        entry, outcome = await self.broker.submit(
            exhibit=name, lane=request.query.get("lane", "sweep"), seed=seed,
        )
        if request.flag("wait"):
            await self._wait(entry, request)
            if entry.state == DONE:
                # The raw exhibit document, byte-identical to the file
                # `pasm-experiments <name> --out` writes.  The header
                # lets clients tell it apart from a job-state document.
                return Response(body=entry.future.result()["json"],
                                content_type="application/json",
                                headers=(("X-PASM-Exhibit", name),))
        return self._entry_response(entry, outcome)

    async def _wait(self, entry: JobEntry, request: Request) -> None:
        """Long-poll an entry; on timeout just return the current state."""
        try:
            timeout = float(request.query.get(
                "timeout", self.config.wait_timeout_s
            ))
        except ValueError:
            timeout = self.config.wait_timeout_s
        if entry.future is None or entry.future.done():
            return
        try:
            await asyncio.wait_for(asyncio.shield(entry.future), timeout)
        except (asyncio.TimeoutError, Exception):
            pass  # state document carries the failure/progress either way

    def _entry_response(self, entry: JobEntry, outcome: str) -> Response:
        doc = entry.describe()
        doc["outcome"] = outcome
        doc["location"] = f"/v1/jobs/{entry.key}"
        if entry.state == DONE:
            return Response(status=200, body=doc)
        if entry.state == FAILED:
            return Response(status=500, body=doc)
        return Response(status=202, body=doc)


def _route_label(path: str) -> str:
    """Collapse per-job paths so the request counter stays low-cardinality."""
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/{hash}"
    if path.startswith("/v1/exhibits/"):
        return "/v1/exhibits/{name}"
    return path


def _error(status: int, message: str) -> Response:
    return Response(status=status, body={"error": message})


def _retryable(status: int, message: str, retry_after: float) -> Response:
    return Response(
        status=status,
        body={"error": message, "retry_after": retry_after},
        headers=(("Retry-After", f"{max(1, round(retry_after))}"),),
    )


# ---------------------------------------------------------------------------
# Embedding (tests, the load generator)
class ServerThread:
    """A full service running on a private event loop in a thread.

    The load generator and the test suite embed the service this way;
    production deployments use ``pasm-serve``.  ``stop()`` performs the
    same graceful drain as SIGTERM.
    """

    #: Pool warm-up pays one interpreter spawn + simulation-stack import
    #: per worker; on a loaded single-core CI box that can take well over
    #: an "obviously generous" 30s, so the ready deadline is high.
    START_TIMEOUT_S = 120.0

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.app = ServeApp(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.app.port

    @property
    def address(self) -> tuple[str, int]:
        return self.app.config.host, self.app.port

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="pasm-serve")
        self._thread.start()
        self._ready.wait(timeout=self.START_TIMEOUT_S)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise TimeoutError(
                f"service failed to start within {self.START_TIMEOUT_S:g}s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.app.shutdown(), self._loop
            )
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        async def body():
            try:
                await self.app.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.app._stopped.wait()

        asyncio.run(body())


# ---------------------------------------------------------------------------
# CLI
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve PASM reproduction simulations over HTTP: "
        "single-flight dedup, bounded admission with backpressure, "
        "priority lanes, Prometheus metrics."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (default: $REPRO_SERVE_PORT or 8137; "
                             "0 = ephemeral)")
    parser.add_argument("--jobs", default=None, metavar="N",
                        help="simulation pool width (default: $REPRO_JOBS or "
                             "one per core)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="bounded admission queue; beyond it submissions "
                             "get 429 + Retry-After (default: 64)")
    parser.add_argument("--job-timeout", type=float, default=600.0,
                        metavar="S", help="per-job execution ceiling")
    parser.add_argument("--retry-after", type=float, default=1.0, metavar="S",
                        help="suggested client delay on 429/503")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        metavar="S", help="SIGTERM drain grace period")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ./.repro_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        metavar="MB",
                        help="LRU size cap on the result cache (default: "
                             "$REPRO_CACHE_MAX_MB or unbounded)")
    parser.add_argument("--trace", action="store_true",
                        help="record end-to-end job traces (broker spans + "
                             "per-PE simulated-time lanes), exported at "
                             "GET /v1/jobs/{hash}/trace")
    parser.add_argument("--log-format", choices=("text", "json"),
                        default="text",
                        help="access/lifecycle log rendering on stderr "
                             "(default: text)")
    parser.add_argument("--name", default=None, metavar="NAME",
                        help="instance name for fleet views "
                             "(default: host:port)")
    args = parser.parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host,
            **({} if args.port is None else {"port": args.port}),
            jobs=args.jobs,
            queue_limit=args.queue_limit,
            job_timeout_s=args.job_timeout,
            retry_after_s=args.retry_after,
            drain_grace_s=args.drain_grace,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            cache_max_mb=args.cache_max_mb,
            trace=args.trace,
            log_format=args.log_format,
            instance=args.name,
        )
        config.resolved_jobs()
    except ReproError as exc:
        parser.error(str(exc))
    return asyncio.run(_serve(config))


async def _serve(config: ServeConfig) -> int:
    app = ServeApp(config)
    await app.start()
    loop = asyncio.get_running_loop()
    for signame in ("SIGTERM", "SIGINT"):
        loop.add_signal_handler(
            getattr(signal, signame),
            lambda: asyncio.ensure_future(app.shutdown()),
        )
    app.log.info(
        "startup",
        message=f"pasm-serve listening on http://{config.host}:{app.port}",
        instance=app.instance_name,
        pool=app.broker.pool_jobs,
        queue_limit=config.queue_limit,
        cache="on" if app.broker.cache is not None else "off",
        trace="on" if config.trace else "off",
    )
    await app._stopped.wait()
    app.log.info("shutdown", message="pasm-serve drained, bye")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
