"""Consistent hashing of job content hashes onto service instances.

The fleet layer routes by *content*: every job already has a stable
SHA-256 content hash (:mod:`repro.exec.spec`), so mapping that hash
onto an instance ring means identical submissions — from any client,
through any router — land on the same ``pasm-serve`` process, where
the broker's single-flight dedup collapses them into one computation.
The shared result store then carries warm results across instances;
the ring is what keeps *in-flight* work deduplicated fleet-wide.

Classic consistent hashing with virtual nodes: each instance owns
``replicas`` points on a 64-bit ring (SHA-256 of ``"{node}#{i}"``), a
key maps to the first point at or after its own hash, and removing an
instance only remaps the keys that pointed at it — everything else
stays put, so a dead instance invalidates ~1/N of the routing table,
not all of it.

Both the router (:mod:`repro.serve.router`) and a multi-URL
:class:`~repro.serve.ServeClient` build the ring the same way from the
same instance list, so a client that skips the router hop still agrees
with the router about where every job lives.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterator, Sequence

from repro.errors import ConfigurationError

#: Virtual nodes per instance.  64 keeps the max/min load spread of a
#: small fleet within ~20% while the ring stays tiny (N*64 points).
DEFAULT_REPLICAS = 64


def parse_instance(text: str) -> tuple[str, str, int]:
    """``http://host:port`` / ``host:port`` -> (base-url, host, port).

    The returned base URL is the *normalized* instance identity — the
    string hashed onto the ring — so ``http://h:p``, ``h:p`` and a
    trailing slash all name the same ring node.
    """
    raw = text.strip()
    hostport = raw
    for scheme in ("http://", "https://"):
        if hostport.startswith(scheme):
            hostport = hostport[len(scheme):]
    hostport = hostport.rstrip("/")
    host, sep, port_text = hostport.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"invalid instance {text!r}: expected host:port or "
            "http://host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"invalid instance {text!r}: port {port_text!r} is not an "
            "integer"
        ) from None
    return f"http://{host}:{port}", host, port


def _point(label: str) -> int:
    """A stable 64-bit ring position for a label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Deterministic key -> node mapping with virtual nodes.

    Parameters
    ----------
    nodes:
        Instance identifiers (any non-empty strings; the fleet layer
        uses base URLs).  Order does not matter — the mapping depends
        only on the *set* of nodes, so every party that knows the
        instance list derives the same ring.
    replicas:
        Virtual nodes per instance.
    """

    def __init__(self, nodes: Sequence[str], *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        nodes = list(dict.fromkeys(nodes))  # dedupe, keep caller's order
        if not nodes:
            raise ConfigurationError("HashRing needs at least one node")
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}"
            )
        self.nodes: tuple[str, ...] = tuple(nodes)
        self.replicas = replicas
        points = [
            (_point(f"{node}#{i}"), node)
            for node in self.nodes
            for i in range(replicas)
        ]
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def __len__(self) -> int:
        return len(self.nodes)

    def node_for(self, key: str) -> str:
        """The instance owning a key (first ring point clockwise)."""
        idx = bisect.bisect_right(self._points, _point(key))
        if idx == len(self._points):
            idx = 0  # wrap past the top of the ring
        return self._owners[idx]

    def nodes_for(self, key: str) -> Iterator[str]:
        """Every instance, nearest first, each yielded once.

        The failover order: a router (or ring-aware client) that finds
        the owner dead advances clockwise to the next *distinct*
        instance, so retries of one key always walk the same sequence.
        """
        start = bisect.bisect_right(self._points, _point(key))
        seen: set[str] = set()
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                yield owner
