"""Conservative local-time execution for CPU buses.

The instruction-level engine's inner loop used to push one heap event per
bus access.  But while a PE's CPU is charging purely *private* time —
instruction fetches from its own DRAM, register operations, ``internal()``
cycles, local reads and writes — it cannot affect, or be affected by, any
other simulation process.  So those charges need not round-trip through
the global event queue at all: :class:`LocalTimeBus` accumulates them in a
per-bus local clock, and the bus re-joins global simulated time only at
*shared-resource interaction points* (Fetch Unit Queue requests, network
transfer-register traffic, status/timer sampling, halt).

The synchronization invariant
-----------------------------
A bus with ``fast_path`` enabled maintains ``true time = env.now +
_local``.  Before any operation that touches shared state (or samples it),
the bus *flushes*: it yields one pooled sleep event of ``_local`` cycles,
landing at exactly the simulated time the pure-event execution would have
reached by then.  Because every charge in the micro engine is an integral
number of cycles, the local accumulation is exact float arithmetic and the
flushed timestamps are bit-identical to the pure-event path.  Operations
that *sample* shared state after their access charge (network status,
Fetch-Unit wait flag) additionally issue the final access charge as a real
timeout, so the sampling event is scheduled at the same point in the event
loop as in the pure-event path and tie-breaking at equal timestamps is
preserved.

Set ``REPRO_PURE_EVENTS=1`` to disable the fast path globally and push
every charge through the event queue (the reference behaviour that the
equivalence suite compares against).

This is the *middle* engine tier.  One interaction stays expensive here:
the SIMD broadcast-fetch rendezvous, where every enabled PE still flushes
(one event) and parks on a queue request (a second event) per broadcast
instruction.  The lockstep tier (:mod:`repro.sim.lockstep`) removes that
too, by stamping requests with the bus-true arrival time instead of
flushing and computing the max-over-PEs release instant directly.
"""

from __future__ import annotations

import os

#: Environment variable that disables the local-time fast path when set to
#: a truthy value ("1", "true", "yes", "on").
PURE_EVENTS_ENV = "REPRO_PURE_EVENTS"

_TRUTHY = ("1", "true", "yes", "on")


def resolve_fast_path(flag: bool | None = None) -> bool:
    """Resolve a fast-path setting: explicit flag > $REPRO_PURE_EVENTS > on."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(PURE_EVENTS_ENV, "").strip().lower() not in _TRUTHY


class LocalTimeBus:
    """Mixin giving a CPU bus a conservative local clock.

    Subclasses call :meth:`_init_local_clock` from ``__init__`` and then:

    * charge private time with ``self._local += cycles`` (guarded by
      ``self.fast_path``) instead of yielding a timeout;
    * ``yield from self.sync()`` immediately before any shared-resource
      interaction;
    * read the bus-true current time from :attr:`now` (never ``env.now``
      directly while the local clock may be ahead).
    """

    def _init_local_clock(self, fast_path: bool | None) -> None:
        self.fast_path = resolve_fast_path(fast_path)
        self._local = 0.0  #: cycles accrued ahead of env.now
        #: Duration of the most recent charge.  On the pure-event path
        #: every charge is its own heap event, scheduled at the charge's
        #: *start*; the lockstep tier needs that schedule instant
        #: (``bus-true now - _lc``) to replay the heap's same-timestamp
        #: ordering for rendezvous arrivals (see FetchUnitQueue
        #: ``_settle_admits``).
        self._lc = 0.0
        self.local_charges = 0  #: charges absorbed without a heap event
        self.sync_flushes = 0  #: local-clock flushes at interaction points

    @property
    def now(self) -> float:
        """Bus-true simulated time: ``env.now`` plus the unflushed local
        clock.  Equals ``env.now`` exactly on the pure-event path."""
        return self.env.now + self._local

    def try_charge(self, cycles: float) -> bool:
        """Charge pure execution time locally if the fast path is on.

        Returns True when the charge was absorbed into the local clock;
        False when the caller must fall back to yielding
        ``bus.internal(cycles)`` through the event queue.
        """
        if self.fast_path:
            self._local += cycles
            self._lc = cycles
            self.local_charges += 1
            return True
        return False

    def sync(self):
        """Generator: flush the local clock, re-joining global time.

        After this, ``env.now == self.now`` and shared state may be
        touched.  A no-op (no event) when nothing is accrued.
        """
        local = self._local
        if local:
            self._local = 0.0
            self.sync_flushes += 1
            yield self.env.sleep(local)
        return None
