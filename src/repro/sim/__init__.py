"""Discrete-event simulation kernel.

A minimal, dependency-free engine in the style of simpy: simulation
processes are Python generators that ``yield`` events; the
:class:`~repro.sim.environment.Environment` advances virtual time (measured
in CPU clock cycles throughout this library) and resumes processes when the
events they wait on fire.

The kernel is deliberately small but fully general; the PASM machine model
(PEs, Micro Controllers, Fetch Unit, network) is built entirely on top of
it.
"""

from repro.sim.events import AllOf, AnyOf, Event, SleepEvent, Timeout
from repro.sim.environment import Environment, Process
from repro.sim.localtime import LocalTimeBus, resolve_fast_path
from repro.sim.lockstep import fire_event, resolve_lockstep
from repro.sim.resources import Gate, Rendezvous, Store

__all__ = [
    "Environment",
    "Process",
    "Event",
    "Timeout",
    "SleepEvent",
    "AllOf",
    "AnyOf",
    "Store",
    "Gate",
    "Rendezvous",
    "LocalTimeBus",
    "resolve_fast_path",
    "resolve_lockstep",
    "fire_event",
]
