"""Simulation environment: the event queue and process machinery.

Time is a monotonically non-decreasing float; in this library it always
denotes *CPU clock cycles* of the 8 MHz prototype (so 1 unit = 125 ns).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import Event, SleepEvent, Timeout

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Upper bound on the per-environment sleep-event free list.  One entry per
#: concurrently sleeping process is enough; the cap only guards against a
#: pathological workload parking thousands of sleeps at once.
_SLEEP_POOL_MAX = 256


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an :class:`Event` that succeeds with the generator's
    return value when it finishes, so processes can wait on each other by
    yielding the :class:`Process` object.
    """

    __slots__ = ("generator",)

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        # Bootstrap: resume the generator at the current time.
        bootstrap = Event(env, name=f"start:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the value (or exception) of ``trigger``."""
        self.env._active_process = self
        try:
            if trigger.ok:
                target = self.generator.send(trigger.value)
            else:
                target = self.generator.throw(trigger.value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # The failure is delivered to processes waiting on this one; if
            # nobody ever waits, Environment.step raises it (see step()).
            self.env._active_process = None
            self.fail(exc)
            return
        finally:
            self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        if target.callbacks is None:
            # Event already processed: resume immediately via a fresh event.
            relay = Event(self.env, name="relay")
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.value)
        else:
            target.callbacks.append(self._resume)

    def interrupt(self, exc: BaseException | None = None) -> None:
        """Throw an exception into the process at the current time."""
        kicker = Event(self.env, name=f"interrupt:{self.name}")
        kicker.callbacks.append(self._resume)
        kicker.fail(exc or SimulationError(f"process {self.name!r} interrupted"))


class Environment:
    """Discrete-event simulation environment.

    Example
    -------
    >>> env = Environment()
    >>> def proc():
    ...     yield env.timeout(10)
    ...     return env.now
    >>> p = env.process(proc())
    >>> env.run()
    >>> p.value
    10
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        #: Current simulation time in CPU clock cycles.  A plain attribute
        #: (read ~4× per simulated instruction — property overhead counts);
        #: only the kernel itself may assign it.
        self.now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = count()
        self._active_process: Process | None = None
        self._sleep_pool: list[SleepEvent] = []
        # -- kernel counters (see repro.perf) ---------------------------
        self.events_scheduled = 0  #: heap pushes over the run
        self.events_processed = 0  #: heap pops over the run
        self.peak_heap = 0  #: high-water mark of the pending-event heap
        self.sleep_reuses = 0  #: sleeps served from the free list

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- factory helpers -------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> SleepEvent:
        """A pure delay event, recycled through a free list.

        Equivalent to ``timeout(delay)`` for the common single-waiter
        pattern ``yield env.sleep(d)``, without allocating a fresh event
        per charge.  The returned object is re-armed for a *different*
        delay after it is processed — never store it, compose it into
        AllOf/AnyOf, or pass it to ``run(until=...)``.
        """
        pool = self._sleep_pool
        if pool:
            ev = pool.pop()
            ev.reset(delay)
            self.sleep_reuses += 1
            return ev
        return SleepEvent(self, delay)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` for callback processing after ``delay``."""
        queue = self._queue
        _heappush(queue, (self.now + delay, next(self._seq), event))
        self.events_scheduled += 1
        if len(queue) > self.peak_heap:
            self.peak_heap = len(queue)

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise DeadlockError("event queue is empty")
        when, _, event = _heappop(self._queue)
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(event)
        elif not event.ok:
            # A failure nobody is waiting on must not vanish silently.
            raise event.value
        if type(event) is SleepEvent and len(self._sleep_pool) < _SLEEP_POOL_MAX:
            self._sleep_pool.append(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.  A number — run until
            simulated time reaches it.  An :class:`Event` — run until it
            triggers; its value is returned (its exception raised on
            failure).
        """
        if isinstance(until, Event):
            stop = until
            # Wait until the event is *processed*, not merely triggered: a
            # Timeout carries its value from creation but occurs at its
            # scheduled time.
            while not stop.processed:
                if not self._queue:
                    raise DeadlockError(
                        f"simulation deadlocked waiting for {stop!r} at t={self.now}"
                    )
                self.step()
            if not stop.ok:
                raise stop.value
            return stop.value
        if until is not None:
            horizon = float(until)
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self.now = max(self.now, horizon)
            return None
        while self._queue:
            self.step()
        return None

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when queue is empty)."""
        return self._queue[0][0] if self._queue else float("inf")
