"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence: processes waiting on it are
resumed (in FIFO order) when it succeeds or fails.  :class:`Timeout` is an
event scheduled to succeed after a fixed delay.  :class:`AllOf` /
:class:`AnyOf` compose events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.environment import Environment

PENDING = object()


class Event:
    """One-shot event that processes can wait on by yielding it.

    Attributes
    ----------
    value:
        The value passed to :meth:`succeed`; delivered as the result of the
        ``yield`` expression in every waiting process.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "name")

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling waiter resumption now."""
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self.env.schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exc
        self._ok = False
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """Event that succeeds ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env, name=f"timeout({delay})")
        self.delay = delay
        self._value = value
        self._ok = True
        env.schedule(self, delay=delay)

    # Timeouts are triggered at construction; succeed/fail are invalid.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger automatically")

    def fail(self, exc: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger automatically")


class SleepEvent(Event):
    """A recyclable pure delay, created via :meth:`Environment.sleep`.

    Semantically a :class:`Timeout` with ``value=None``, but instances are
    pooled by the environment: after the event is processed, :meth:`reset`
    re-arms the same object for the next ``sleep`` call instead of
    allocating a new one.  This makes the kernel's hottest allocation
    (pure time charges from the instruction-level engine) churn-free.

    Contract: a sleep event has exactly one logical waiter and must not be
    stored past the ``yield`` that waits on it (no AllOf/AnyOf composition,
    no ``run(until=...)`` target) — after it fires, the object may already
    represent a *different* pending delay.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative sleep delay: {delay}")
        super().__init__(env, name="sleep")
        self.delay = delay
        self._value = None
        self._ok = True
        env.schedule(self, delay=delay)

    def reset(self, delay: float) -> None:
        """Re-arm a processed instance for a new delay (pool reuse)."""
        if delay < 0:
            raise ValueError(f"negative sleep delay: {delay}")
        self.delay = delay
        self.callbacks = []
        self._value = None
        self._ok = True
        self.env.schedule(self, delay=delay)

    # Like Timeout: triggered from construction; succeed/fail are invalid.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Sleep events trigger automatically")

    def fail(self, exc: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Sleep events trigger automatically")


class _Condition(Event):
    """Base for AllOf/AnyOf composition."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env, name=type(self).__name__)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            # An empty condition is immediately satisfied.
            self._value = []
            self._ok = True
            env.schedule(self)
            return
        for ev in self.events:
            # A Timeout is "triggered" (its value is fixed) from creation,
            # but it *occurs* only when processed; wait on processing.
            if ev.processed:
                self._on_child(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded.

    The value is the list of child values in construction order.  A child
    failure fails the condition immediately.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Succeeds as soon as any child succeeds (value = that child's value)."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed(ev.value)
