"""Vectorized broadcast execution across PEs (lockstep phase 2).

The fourth engine tier.  The lockstep engine (:mod:`repro.sim.lockstep`)
computes the SIMD rendezvous analytically, but each broadcast instruction
is still decoded, dispatched, and timed once *per PE* — profiling showed
that shared per-instruction execution is why lockstep stopped at ~1.4x
over the plain fast path.  This module executes each broadcast
instruction **once** over numpy-backed per-PE state:

* the enabled PEs' register files, condition codes, and bus-true clocks
  become ``(8, p)`` / ``(p,)`` int64/float64 arrays in a
  :class:`_BatchState`;
* the instruction is compiled once (cached on the instruction object)
  into a :class:`_Plan` whose ``commit`` replays the scalar interpreter's
  exact sequence of bus charges, register/memory effects, and flag
  updates as array operations — including the data-dependent
  ``38 + 2*popcount`` / 10-01-pattern MULU/MULS internal times, computed
  for all PEs in one vectorized pass;
* the queue's release loop consumes consecutive vectorizable head words
  in one batch, so the rendezvous instant for each following word is a
  single max-over-PEs reduction over the completion stamps.

The vector/scalar **seam**: execution diverges back to the scalar
lockstep path (per-PE handlers, one release at a time) whenever

* the instruction is data-dependent control flow (branches, DBcc, HALT),
  a family outside the compiled set, or touches a non-main-RAM /
  misaligned address (``_Plan.precheck`` — the scalar path then raises
  the same structured error at the same PE and instant);
* the head item's mask differs from the running batch's mask, or a PE in
  the mask is not streaming inline (fail-stopped, tracing, generator
  path);
* a foreign heap event (controller resync, fault kicker, network
  activity, space waiter) precedes the next release — the same heap
  bound the lockstep fast-forward honours.

Fallbacks are observable: the queue counts ``vectorized_instructions``,
``vectorized_batches``, and ``scalar_fallbacks`` (instruction words
released scalar while vectorization was on), surfaced through
``repro.perf.machine_counters``.

Set ``REPRO_VECTORIZED=0`` to disable (the machine then runs the plain
lockstep tier).  The vectorized tier requires lockstep: enabling it
explicitly without lockstep raises a structured
:class:`~repro.errors.ConfigurationError`.

The equivalence contract is the differential harness's: every
perf-visible signature (cycles, per-PE finish times and category totals,
queue/MC statistics, fault instants, result matrices) is bit-identical
across all four tiers (``tests/test_lockstep_differential.py``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError
from repro.m68k.addressing import Mode, ea_timing
from repro.m68k.cpu import _alu_base
from repro.m68k.instructions import (
    ALU_ADDR,
    ALU_ALL,
    MULDIV,
    QUICK,
    SHIFTS,
    UNARY,
    Instruction,
)
from repro.m68k.timing import instruction_timing
from repro.memory.map import RegionKind
from repro.utils.bitops import ones_count, sign_extend, to_signed, to_unsigned, transitions_count

#: Environment variable that disables the vectorized tier when set to a
#: falsy value ("0", "false", "no", "off").  Default: enabled (when the
#: lockstep tier is active).
VECTORIZED_ENV = "REPRO_VECTORIZED"

_FALSY = ("0", "false", "no", "off")

_M32 = 0xFFFF_FFFF


def resolve_vectorized(flag: bool | None, lockstep: bool) -> bool:
    """Resolve the vectorized setting: needs lockstep; flag > env > on.

    ``lockstep`` is the machine's *resolved* lockstep setting.  Unlike
    :func:`repro.sim.lockstep.resolve_lockstep` (which silently resolves
    to off without its prerequisite), explicitly requesting
    ``vectorized=True`` without the lockstep engine is a configuration
    contradiction and raises a structured error — batches ride on the
    lockstep release path, there is nothing to vectorize without it.
    """
    if flag is not None:
        if flag and not lockstep:
            raise ConfigurationError(
                "vectorized=True requires the lockstep engine: enable "
                "lockstep (REPRO_LOCKSTEP=1 / lockstep=True with the fast "
                "path) or drop the vectorized flag"
            )
        return bool(flag)
    if not lockstep:
        return False
    return os.environ.get(VECTORIZED_ENV, "").strip().lower() not in _FALSY


# ----------------------------------------------------------------------
# Batch state: the enabled PEs' architectural state as arrays.


class _BatchState:
    """Numpy-backed state for one mask's worth of PEs.

    Register rows are ``(8, p)`` int64 (column j = PE ``slots[j]``), CCR
    flags are ``(p,)`` bool arrays (always rebound, never mutated in
    place, so shared constant arrays are safe), and ``t`` is the per-PE
    bus-true clock (float64) the scalar tier keeps in ``env.now +
    bus._local``.  Bus counters are plain ints: every PE in the batch
    executes the identical access sequence, so the increments are shared.
    """

    __slots__ = (
        "ex", "slots", "buses", "mems", "cpus", "p",
        "d", "a", "x", "n", "z", "v", "c", "t", "lc", "word_start",
        "false_", "true_",
        "n_stream", "n_data", "n_charges", "icount", "pc_off", "cats",
    )

    def __init__(self, ex, slots, buses, mems, cpus, arrivals) -> None:
        self.ex = ex
        self.slots = slots
        self.buses = buses
        self.mems = mems
        self.cpus = cpus
        p = len(slots)
        self.p = p
        regs = [cpu.regs for cpu in cpus]
        self.d = np.array([r.d for r in regs], dtype=np.int64).T.copy()
        self.a = np.array([r.a for r in regs], dtype=np.int64).T.copy()
        self.x = np.array([r.ccr.x for r in regs], dtype=bool)
        self.n = np.array([r.ccr.n for r in regs], dtype=bool)
        self.z = np.array([r.ccr.z for r in regs], dtype=bool)
        self.v = np.array([r.ccr.v for r in regs], dtype=bool)
        self.c = np.array([r.ccr.c for r in regs], dtype=bool)
        self.t = np.array([arrivals[s] for s in slots], dtype=np.float64)
        #: Per-PE duration of the most recent charge (the scalar tier's
        #: ``bus._lc``): ``t - lc`` is the schedule instant of each PE's
        #: final charge event, the queue's admit-tie comparison point.
        #: A plain float whenever the charge is uniform across lanes
        #: (the common case) — avoids a per-word array allocation.
        self.lc: float | np.ndarray = \
            np.array([b._lc for b in buses], dtype=np.float64)
        self.word_start = self.t
        self.false_ = np.zeros(p, dtype=bool)
        self.true_ = np.ones(p, dtype=bool)
        self.n_stream = 0
        self.n_data = 0
        self.n_charges = 0
        self.icount = 0
        self.pc_off = 0
        self.cats: dict[str, np.ndarray] = {}

    # -- helpers --------------------------------------------------------
    def arr(self, value):
        """Broadcast a scalar to a per-PE int64 array (arrays pass through)."""
        if isinstance(value, np.ndarray):
            return value
        return np.full(self.p, value, dtype=np.int64)

    # -- registers (MC68000 partial-write semantics) --------------------
    def read_d(self, r: int, size: int):
        row = self.d[r]
        if size == 4:
            return row.copy()  # view-safety: later row writes must not alias
        return row & (0xFFFF if size == 2 else 0xFF)

    def write_d(self, r: int, value, size: int) -> None:
        if size == 4:
            self.d[r] = value & _M32
        else:
            low = (1 << (size * 8)) - 1
            self.d[r] = (self.d[r] & (_M32 ^ low)) | (value & low)

    def read_a(self, r: int, size: int):
        row = self.a[r]
        if size == 4:
            return row.copy()
        return row & (0xFFFF if size == 2 else 0xFF)

    def write_a(self, r: int, value, size: int) -> None:
        if size == 2:
            value = ((value & 0xFFFF) ^ 0x8000) - 0x8000
        self.a[r] = value & _M32

    # -- condition codes ------------------------------------------------
    def set_nz(self, value, size: int) -> None:
        bits = size * 8
        v = self.arr(value) & ((1 << bits) - 1)
        self.n = (v >> (bits - 1)) != 0
        self.z = v == 0
        self.v = self.false_
        self.c = self.false_

    def add_flags(self, a, b, result, size: int) -> None:
        bits = size * 8
        mask = (1 << bits) - 1
        r = result & mask
        self.z = r == 0
        self.n = (r >> (bits - 1)) != 0
        carry = result > mask
        self.c = carry
        self.x = carry
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), r >> (bits - 1)
        self.v = (sa == sb) & (sr != sa)

    def sub_flags(self, a, b, size: int, *, set_x: bool) -> None:
        bits = size * 8
        mask = (1 << bits) - 1
        r = (a - b) & mask
        self.z = r == 0
        self.n = (r >> (bits - 1)) != 0
        carry = b > a
        self.c = carry
        if set_x:
            self.x = carry
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), r >> (bits - 1)
        self.v = (sa != sb) & (sr != sa)

    # -- bus charges (mirror PEBus.try_read/try_write arithmetic) -------
    def charge_data(self, size: int) -> None:
        ex = self.ex
        n = 2 if size == 4 else 1
        cycles = n * ex.data_step
        t = self.t
        steal = ex.ref_steal
        if steal:
            phase = t % ex.ref_period
            add = np.where(phase < steal, cycles + (steal - phase),
                           float(cycles))
            t += add
            self.lc = add
        else:
            t += cycles
            self.lc = float(cycles)
        self.n_data += n
        self.n_charges += 1

    def add_internal(self, cycles) -> None:
        self.t += cycles
        if isinstance(cycles, np.ndarray):
            self.lc = cycles.astype(np.float64)
        else:
            self.lc = float(cycles)
        self.n_charges += 1

    # -- per-PE memory ---------------------------------------------------
    def mem_read(self, addrs, size: int):
        out = np.empty(self.p, dtype=np.int64)
        mems = self.mems
        if isinstance(addrs, np.ndarray):
            for j in range(self.p):
                out[j] = mems[j].read(int(addrs[j]), size)
        else:
            addr = int(addrs)
            for j in range(self.p):
                out[j] = mems[j].read(addr, size)
        return out

    def mem_write(self, addrs, values, size: int) -> None:
        mems = self.mems
        a_arr = isinstance(addrs, np.ndarray)
        v_arr = isinstance(values, np.ndarray)
        for j in range(self.p):
            mems[j].write(
                int(addrs[j]) if a_arr else int(addrs),
                int(values[j]) if v_arr else int(values),
                size,
            )

    # -- per-word bracketing ---------------------------------------------
    def start_word(self, t_r: float, words: int) -> None:
        """Fetch accounting: rebase every PE's clock on the release instant
        and charge the queue-fetch accesses (static RAM, no refresh) —
        exactly ``PEBus.finish_queue_fetch``."""
        self.word_start = self.t.copy()
        self.t[:] = t_r + words * self.ex.fetch_step
        self.lc = float(words * self.ex.fetch_step)
        self.n_stream += words
        self.n_charges += 1

    def finish_word(self, timecat: str, words: int) -> None:
        delta = self.t - self.word_start
        acc = self.cats.get(timecat)
        if acc is None:
            self.cats[timecat] = delta
        else:
            acc += delta
        self.icount += 1
        self.pc_off += 2 * words

    # -- writeback --------------------------------------------------------
    def writeback(self) -> None:
        """Flush the batch state into the scalar PEs (before delivery, so
        resumed PEs observe registers/pc/flags immediately)."""
        d_cols = self.d.T.tolist()  # tolist: one bulk conversion to Python
        a_cols = self.a.T.tolist()  # ints instead of p*8 scalar casts
        x, n = self.x.tolist(), self.n.tolist()
        z, v, c = self.z.tolist(), self.v.tolist(), self.c.tolist()
        n_stream, n_data, n_charges = self.n_stream, self.n_data, self.n_charges
        icount, pc_off = self.icount, self.pc_off
        lc = self.lc
        lc = (lc.tolist() if isinstance(lc, np.ndarray)
              else [lc] * self.p)
        for j, cpu in enumerate(self.cpus):
            regs = cpu.regs
            regs.d[:] = d_cols[j]
            regs.a[:] = a_cols[j]
            regs.pc = regs.pc + pc_off
            ccr = regs.ccr
            ccr.x = x[j]
            ccr.n = n[j]
            ccr.z = z[j]
            ccr.v = v[j]
            ccr.c = c[j]
            cpu.instruction_count += icount
            bus = self.buses[j]
            bus.stream_accesses += n_stream
            bus.queue_fetches += n_stream
            bus.data_accesses += n_data
            bus.local_charges += n_charges
            bus._lc = lc[j]
        for cat, arr in self.cats.items():
            vals = arr.tolist()
            for j, cpu in enumerate(self.cpus):
                cats = cpu.category_cycles
                cats[cat] = cats.get(cat, 0.0) + vals[j]


# ----------------------------------------------------------------------
# Plan compiler: one instruction -> (precheck, commit) closures.


class _Unsupported(Exception):
    """Raised by plan builders for shapes the vector tier does not cover."""


class _Plan:
    """Compiled vector execution of one instruction.

    ``addr_fns`` are pure ``(fn(st) -> addresses, size)`` pairs used by
    :meth:`precheck` to prove every memory access lands aligned inside
    main RAM *before any state is mutated*; ``commit`` then replays the
    scalar handler's bus-charge / effect / flag sequence over the arrays.
    """

    __slots__ = ("mnemonic", "addr_fns", "commit")

    def __init__(self, mnemonic, addr_fns, commit) -> None:
        self.mnemonic = mnemonic
        self.addr_fns = addr_fns
        self.commit = commit

    def precheck(self, st: _BatchState) -> bool:
        if not self.addr_fns:
            return True
        ex = st.ex
        lo, hi = ex.mem_lo, ex.mem_hi
        for fn, size in self.addr_fns:
            addrs = fn(st)
            if isinstance(addrs, np.ndarray):
                if ((addrs < lo) | (addrs + size > hi)).any():
                    return False
                if size >= 2 and (addrs & 1).any():
                    return False
            else:
                if addrs < lo or addrs + size > hi:
                    return False
                if size >= 2 and addrs & 1:
                    return False
        return True


def _sext16_u32(v):
    """``to_unsigned(sign_extend(v, 16), 4)`` for scalars or arrays."""
    return (((v & 0xFFFF) ^ 0x8000) - 0x8000) & _M32


def _mem_addr(op, size: int, bumps: dict):
    """Address closures for a memory operand: ``(pure, effect)``.

    ``pure`` computes the access address without side effects, folding in
    the post-increment byte offsets earlier operands of the *same*
    instruction will have applied by commit time (``bumps``) — this is
    what makes ``MOVE (A0)+,(A0)+`` precheck correctly.  ``effect``
    computes the address against live state and applies this operand's
    own post-increment, exactly once, matching ``CPU._ea_address``.
    """
    mode = op.mode
    r = op.reg
    pre = bumps.get(r, 0)
    if mode is Mode.IND:
        if pre:
            pure = lambda st: (st.a[r] + pre) & _M32
        else:
            pure = lambda st: st.a[r]
        eff = lambda st: st.a[r].copy()
        return pure, eff
    if mode is Mode.POSTINC:
        step = 2 if (r == 7 and size == 1) else size
        if pre:
            pure = lambda st: (st.a[r] + pre) & _M32
        else:
            pure = lambda st: st.a[r]

        def eff(st):
            addr = st.a[r].copy()
            st.a[r] = (addr + step) & _M32
            return addr

        bumps[r] = pre + step
        return pure, eff
    if mode is Mode.DISP:
        sd = sign_extend(op.disp, 16)
        total = pre + sd
        pure = lambda st: (st.a[r] + total) & _M32
        eff = lambda st: (st.a[r] + sd) & _M32
        return pure, eff
    raise _Unsupported(mode)


def _src_reader(op, size: int, bumps: dict, addr_fns: list):
    """Reader closure for a source operand: ``(read(st) -> value, reads16)``.

    Register/immediate sources are charge-free; memory sources append
    their pure address fn to ``addr_fns`` and charge one bus access
    (effect → charge → read, the ``_read_operand_now`` + ``try_read``
    order).
    """
    mode = op.mode
    if mode is Mode.DREG:
        r = op.reg
        return (lambda st: st.read_d(r, size)), 0
    if mode is Mode.AREG:
        r = op.reg
        return (lambda st: st.read_a(r, size)), 0
    if mode is Mode.IMM:
        value = to_unsigned(int(op.value), size)
        return (lambda st: value), 0
    pure, eff = _mem_addr(op, size, bumps)
    addr_fns.append((pure, size))

    def read(st):
        addrs = eff(st)
        st.charge_data(size)
        return st.mem_read(addrs, size)

    return read, (2 if size == 4 else 1)


def _finish_plan(instr, body, addr_fns, reads16: int, writes16: int,
                 timing=None):
    """Wrap ``body`` with the static internal charge after verifying the
    plan's access counts against the manual timing decomposition.

    The checks guarantee the replay is access-exact: no extra stream
    words beyond the encoded length (so the run loop's
    ``fetch_stream_words`` top-up never fires on this instruction), and
    the planned 16-bit data reads/writes match the timing table's, so
    wait states and refresh land on the same accesses.
    """
    t = timing if timing is not None else instruction_timing(instr)
    if t.stream_words != instr.encoded_words():
        return None
    if t.data_reads != reads16 or t.data_writes != writes16:
        return None
    internal = t.internal_cycles
    if internal < 0:
        return None
    if internal:
        def commit(st, _body=body, _internal=internal):
            _body(st)
            st.add_internal(_internal)
    else:
        commit = body
    return _Plan(instr.mnemonic, addr_fns, commit)


_MEM_MODES = (Mode.IND, Mode.POSTINC, Mode.DISP)


def _plan_move(instr):
    src, dst = instr.operands
    size = instr.size_bytes
    bumps: dict = {}
    addr_fns: list = []
    if src.mode not in (Mode.DREG, Mode.AREG, Mode.IMM) + _MEM_MODES:
        raise _Unsupported(src.mode)
    read, reads16 = _src_reader(src, size, bumps, addr_fns)
    writes16 = 0
    if instr.mnemonic == "MOVEA" or dst.mode is Mode.AREG:
        rd = dst.reg

        def body(st):
            st.write_a(rd, read(st), size)
    elif dst.mode is Mode.DREG:
        rd = dst.reg

        def body(st):
            value = read(st)
            st.write_d(rd, value, size)
            st.set_nz(value, size)
    elif dst.mode in _MEM_MODES:
        pure, eff = _mem_addr(dst, size, bumps)
        addr_fns.append((pure, size))
        writes16 = 2 if size == 4 else 1

        def body(st):
            value = read(st)
            addrs = eff(st)
            st.charge_data(size)
            st.mem_write(addrs, value, size)
            st.set_nz(value, size)
    else:
        raise _Unsupported(dst.mode)
    return _finish_plan(instr, body, addr_fns, reads16, writes16)


def _plan_alu(instr):
    m = instr.mnemonic
    size = instr.size_bytes
    src, dst = instr.operands
    base = _alu_base(m)
    bumps: dict = {}
    addr_fns: list = []
    if src.mode not in (Mode.DREG, Mode.AREG, Mode.IMM) + _MEM_MODES:
        raise _Unsupported(src.mode)
    read, reads16 = _src_reader(src, size, bumps, addr_fns)

    if m in ALU_ADDR:
        rd = dst.reg
        if base == "CMP":
            def body(st):
                sv = read(st)
                sv32 = _sext16_u32(sv) if size == 2 else sv
                st.sub_flags(st.read_a(rd, 4), sv32, 4, set_x=False)
        else:
            add = base == "ADD"

            def body(st):
                sv = read(st)
                sv32 = _sext16_u32(sv) if size == 2 else sv
                dv = st.read_a(rd, 4)
                st.write_a(rd, dv + sv32 if add else dv - sv32, 4)
        return _finish_plan(instr, body, addr_fns, reads16, 0)

    if dst.mode is Mode.AREG:
        # Only ADDQ/SUBQ #n,An is legal here (no flags, raw delta).
        if m not in QUICK:
            raise _Unsupported(m)
        delta = int(src.value)
        rd = dst.reg
        add = base == "ADD"

        def body(st):
            dv = st.read_a(rd, 4)
            st.write_a(rd, dv + delta if add else dv - delta, 4)
        return _finish_plan(instr, body, addr_fns, reads16, 0)

    # Shared compute core, mirroring CPU._alu_compute.
    store = base != "CMP"
    if base == "ADD":
        def compute(st, dv, sv):
            result = dv + sv
            st.add_flags(dv, sv, result, size)
            return result
    elif base == "SUB":
        def compute(st, dv, sv):
            st.sub_flags(dv, sv, size, set_x=True)
            return dv - sv
    elif base == "CMP":
        def compute(st, dv, sv):
            st.sub_flags(dv, sv, size, set_x=False)
            return dv
    elif base == "AND":
        def compute(st, dv, sv):
            result = dv & sv
            st.set_nz(result, size)
            return result
    elif base == "OR":
        def compute(st, dv, sv):
            result = dv | sv
            st.set_nz(result, size)
            return result
    elif base == "EOR":
        def compute(st, dv, sv):
            result = dv ^ sv
            st.set_nz(result, size)
            return result
    else:  # pragma: no cover
        raise _Unsupported(base)

    if dst.mode is Mode.DREG:
        rd = dst.reg
        if store:
            def body(st):
                result = compute(st, st.read_d(rd, size), read(st))
                st.write_d(rd, result, size)
        else:
            def body(st):
                compute(st, st.read_d(rd, size), read(st))
        return _finish_plan(instr, body, addr_fns, reads16, 0)

    if dst.mode in _MEM_MODES:
        pure, eff = _mem_addr(dst, size, bumps)
        addr_fns.append((pure, size))
        acc = 2 if size == 4 else 1
        reads16 += acc
        writes16 = acc if store else 0

        def body(st):
            sv = read(st)
            addrs = eff(st)
            st.charge_data(size)
            dv = st.mem_read(addrs, size)
            result = compute(st, dv, sv)
            if store:
                st.charge_data(size)
                st.mem_write(addrs, result & ((1 << (size * 8)) - 1), size)
        return _finish_plan(instr, body, addr_fns, reads16, writes16)

    raise _Unsupported(dst.mode)


def _plan_mul(instr):
    m = instr.mnemonic
    if m not in ("MULU", "MULS"):
        raise _Unsupported(m)  # DIVU/DIVS: scalar (zero-divide traps)
    src, dst = instr.operands
    bumps: dict = {}
    addr_fns: list = []
    if src.mode not in (Mode.DREG, Mode.IMM) + _MEM_MODES:
        raise _Unsupported(src.mode)
    read, reads16 = _src_reader(src, 2, bumps, addr_fns)
    ea = ea_timing(src, 2)
    if 1 + ea.stream_words != instr.encoded_words():
        return None
    if ea.data_reads != reads16:
        return None
    # instruction_timing(MUL): internal = base + k, base = 38 + 2n.
    k = ea.cycles - 4 * (1 + ea.stream_words + ea.data_reads)
    if 38 + k < 0:
        return None
    rd = dst.reg
    signed = m == "MULS"

    def body(st):
        sv = st.arr(read(st))
        dv = st.read_d(rd, 2)
        if signed:
            product = (((sv ^ 0x8000) - 0x8000)) * ((dv ^ 0x8000) - 0x8000)
            base = 38 + 2 * transitions_count(sv, 16)
        else:
            product = sv * dv
            base = 38 + 2 * ones_count(sv, 16)
        result = product & _M32
        st.write_d(rd, result, 4)
        st.set_nz(result, 4)
        st.add_internal(base + k)
    return _Plan(m, addr_fns, body)


def _plan_unary(instr):
    m = instr.mnemonic
    size = instr.size_bytes
    dst = instr.operands[0]
    bumps: dict = {}
    addr_fns: list = []
    if m == "TST":
        if dst.mode not in (Mode.DREG, Mode.AREG, Mode.IMM) + _MEM_MODES:
            raise _Unsupported(dst.mode)
        read, reads16 = _src_reader(dst, size, bumps, addr_fns)

        def body(st):
            st.set_nz(read(st), size)
        return _finish_plan(instr, body, addr_fns, reads16, 0)
    if m not in ("CLR", "NOT", "NEG"):
        raise _Unsupported(m)  # NEGX/TAS: scalar
    bits = size * 8
    mask = (1 << bits) - 1
    sign_bit = 1 << (bits - 1)

    if m == "CLR":
        def result_of(st, old):
            return 0

        def flags_of(st, old, new):
            st.n = st.false_
            st.z = st.true_
            st.v = st.false_
            st.c = st.false_
    elif m == "NOT":
        def result_of(st, old):
            return ~old & mask

        def flags_of(st, old, new):
            st.set_nz(new, size)
    else:  # NEG
        def result_of(st, old):
            return -old & mask

        def flags_of(st, old, new):
            st.set_nz(new, size)
            carry = st.arr(new) != 0
            st.c = carry
            st.x = carry
            st.v = old == sign_bit

    if dst.mode is Mode.DREG:
        rd = dst.reg

        def body(st):
            old = st.read_d(rd, size)
            new = result_of(st, old)
            st.write_d(rd, new, size)
            flags_of(st, old, new)
        return _finish_plan(instr, body, addr_fns, 0, 0)
    if dst.mode in _MEM_MODES:
        pure, eff = _mem_addr(dst, size, bumps)
        addr_fns.append((pure, size))
        acc = 2 if size == 4 else 1

        def body(st):
            addrs = eff(st)
            st.charge_data(size)
            old = st.mem_read(addrs, size)
            new = result_of(st, old)
            st.charge_data(size)
            st.mem_write(addrs, new, size)
            flags_of(st, old, new)
        return _finish_plan(instr, body, addr_fns, acc, acc)
    raise _Unsupported(dst.mode)


def _plan_shift(instr):
    m = instr.mnemonic
    if m not in ("LSL", "LSR", "ASL", "ASR"):
        raise _Unsupported(m)  # rotates / X-rotates: scalar
    count_op, reg_op = instr.operands
    if count_op.mode is not Mode.IMM:
        raise _Unsupported(count_op.mode)  # register counts: runtime-valued
    count = int(count_op.value)
    size = instr.size_bytes
    bits = size * 8
    if not 1 <= count < bits:
        raise _Unsupported(count)  # 0 / full-width: scalar edge cases
    timing = instruction_timing(instr, shift_count=count)
    mask = (1 << bits) - 1
    rd = reg_op.reg

    if m in ("LSL", "ASL"):
        asl = m == "ASL"

        def body(st):
            value = st.read_d(rd, size)
            new = (value << count) & mask
            carry = ((value >> (bits - count)) & 1) != 0
            st.set_nz(new, size)
            st.c = carry
            st.x = carry
            if asl:
                # Overflow iff the top count+1 bits are not homogeneous
                # (the sign bit changed at some step of the scalar loop).
                window = value >> (bits - 1 - count)
                st.v = ~((window == 0) | (window == (1 << (count + 1)) - 1))
            st.write_d(rd, new, size)
    elif m == "LSR":
        def body(st):
            value = st.read_d(rd, size)
            new = value >> count
            carry = ((value >> (count - 1)) & 1) != 0
            st.set_nz(new, size)
            st.c = carry
            st.x = carry
            st.write_d(rd, new, size)
    else:  # ASR
        def body(st):
            value = st.read_d(rd, size)
            signed = (value ^ (1 << (bits - 1))) - (1 << (bits - 1))
            new = (signed >> count) & mask
            carry = ((signed >> (count - 1)) & 1) != 0
            st.set_nz(new, size)
            st.c = carry
            st.x = carry
            st.write_d(rd, new, size)
    return _finish_plan(instr, body, [], 0, 0, timing=timing)


def _plan_lea(instr):
    src, dst = instr.operands
    rd = dst.reg
    if src.mode is Mode.IND:
        rs = src.reg

        def body(st):
            st.write_a(rd, st.a[rs].copy(), 4)
    elif src.mode is Mode.DISP:
        rs = src.reg
        sd = sign_extend(src.disp, 16)

        def body(st):
            st.write_a(rd, (st.a[rs] + sd) & _M32, 4)
    elif src.mode is Mode.ABS_W:
        addr = sign_extend(int(src.value), 16) & _M32

        def body(st):
            st.write_a(rd, addr, 4)
    elif src.mode is Mode.ABS_L:
        addr = int(src.value) & _M32

        def body(st):
            st.write_a(rd, addr, 4)
    else:
        raise _Unsupported(src.mode)  # INDEX/PCDISP: scalar
    return _finish_plan(instr, body, [], 0, 0)


def _plan_moveq(instr):
    ops = instr.operands
    value = to_signed(int(ops[0].value) & 0xFF, 1) & _M32
    rd = ops[1].reg

    def body(st):
        st.write_d(rd, value, 4)
        st.set_nz(value, 4)
    return _finish_plan(instr, body, [], 0, 0)


def _plan_nop(instr):
    def body(st):
        return None
    return _finish_plan(instr, body, [], 0, 0)


def _build_plan(instr: Instruction):
    m = instr.mnemonic
    if m == "MOVE" or m == "MOVEA":
        return _plan_move(instr)
    if m in ALU_ALL:
        return _plan_alu(instr)
    if m in MULDIV:
        return _plan_mul(instr)
    if m in UNARY:
        return _plan_unary(instr)
    if m in SHIFTS:
        return _plan_shift(instr)
    if m == "LEA":
        return _plan_lea(instr)
    if m == "MOVEQ":
        return _plan_moveq(instr)
    if m == "NOP":
        return _plan_nop(instr)
    raise _Unsupported(m)  # branches, DBcc, HALT, DIV, MOVEM, ... : scalar


def compile_plan(instr: Instruction):
    """Compile ``instr`` once; cache on the instruction.

    Returns the :class:`_Plan`, or ``False`` when the instruction (or
    this operand shape) must run scalar.  Any surprise during compilation
    is itself a fallback, never an error — the scalar tier is always
    semantically complete.
    """
    try:
        plan = _build_plan(instr)
    except Exception:
        plan = None
    if plan is None:
        plan = False
    instr._vec_plan = plan
    return plan


# ----------------------------------------------------------------------
# The executor: consumes consecutive vectorizable head words in a batch.


class VectorExecutor:
    """Per-queue vector engine, attached by the machine as ``queue._vec``.

    :meth:`try_batch` is called from the queue's lockstep release loop
    with a head release instant already past the heap-bound check.  It
    either executes a maximal run of vectorizable broadcast words across
    the whole mask and returns True, or touches nothing and returns
    False (the caller then releases scalar).

    Batches stay *live* across heap-bound breaks: when a foreign heap
    event interrupts the fast-forward, the vector state is kept (PEs
    stay parked on their request events, with completion stamps
    re-registered as arrivals) and the next release cascade continues
    the same batch without rebuilding state.  Writeback plus the
    one-sentinel-per-PE delivery happen only at a *flush* — the moment
    the head word stops being continuable (scalar fallback, sync word,
    mask change, or a withdrawn request after a fail-stop).  This is
    what makes the tier profitable: PE generator resumptions scale with
    vector/scalar seams, not with heap traffic.
    """

    def __init__(self, queue, pes: dict, config) -> None:
        self.queue = queue
        self.pes = pes
        mm = config.memory_map()
        main = mm.find(RegionKind.MAIN_RAM)
        simd = mm.find(RegionKind.SIMD_SPACE)
        self.data_step = 4 + main.wait_states
        self.fetch_step = 4 + simd.wait_states
        self.ref_period, self.ref_steal = config.refresh.inline_constants()
        # Data accesses must land inside main RAM *and* every PE's module.
        lo, hi = main.start, main.end
        for pe in pes.values():
            mem = pe.memory
            lo = max(lo, mem.base)
            hi = min(hi, mem.base + len(mem.data))
        self.mem_lo = lo
        self.mem_hi = hi
        #: Recorded release time of the last word the batch consumed (the
        #: release loop resumes its cursor from here).
        self.last_release = 0.0
        self._mask_cache: dict = {}
        #: Undelivered live batch: ``(mask, slots, st, evs)`` or None.
        self._live = None

    def _mask_group(self, mask):
        cached = self._mask_cache.get(mask)
        if cached is None:
            slots = tuple(mask)  # frozenset order == scalar release order
            pes = [self.pes[s] for s in slots]
            cached = (
                slots,
                [pe.bus for pe in pes],
                [pe.memory for pe in pes],
                [pe.cpu for pe in pes],
            )
            self._mask_cache[mask] = cached
        return cached

    def try_batch(self, q, t_r: float) -> bool:
        """Execute (or continue) a vectorizable run starting at the head.

        Caller contract: lockstep release loop, head mask complete, and
        ``t_r`` (the head's computed release instant) already validated
        against the heap bound.  Returns False when the head word cannot
        be vectorized — after flushing any live batch, so the scalar
        release the caller then performs sees fully written-back PEs.
        """
        head = q._items[0]
        payload = head.payload
        live = self._live
        if live is not None:
            # Continuation: same mask, requests untouched since the last
            # word (a withdrawn request after a fail-stop breaks the
            # identity check), and a compiled plan that prechecks clean.
            mask, slots, st, evs = live
            if payload is not None and head.mask == mask:
                plan = payload._vec_plan
                if plan is None:
                    plan = compile_plan(payload)
                if plan is not False:
                    requests = q._requests
                    intact = True
                    for j, s in enumerate(slots):
                        if requests.get(s) is not evs[j]:
                            intact = False
                            break
                    if intact and plan.precheck(st):
                        self._run_words(q, t_r, plan, st, evs, slots, mask)
                        return True
            self.flush(q)
        if payload is None:
            return False  # sync word: barrier readers use the generator path
        plan = payload._vec_plan
        if plan is None:
            plan = compile_plan(payload)
        if plan is False:
            return False
        mask = head.mask
        if not mask <= q._inline_slots:
            return False  # some PE is not streaming inline (trace, faults)
        group = self._mask_cache.get(mask)
        if group is None:
            if not mask <= self.pes.keys():
                return False
            group = self._mask_group(mask)
        slots, buses, mems, cpus = group
        for bus in buses:
            if not bus.vec_stream_ok:
                return False  # instruction cap or tracing armed
        st = _BatchState(self, slots, buses, mems, cpus, q._arrivals)
        if not plan.precheck(st):
            return False
        evs = [q._requests[s] for s in slots]
        self._run_words(q, t_r, plan, st, evs, slots, mask)
        return True

    def _run_words(self, q, t_r, plan, st, evs, slots, mask) -> None:
        """Consume consecutive same-mask vectorizable head words, then
        park the batch live (no writeback, no resumptions)."""
        items = q._items
        env = q.env
        arrivals = q._arrivals
        admit_times = q._admit_times
        pend = q._pending_admits
        neg_inf = float("-inf")
        while True:
            head = items[0]
            # Admit-tie comparison point: a staged free admit coinciding
            # with this release needs the schedule instant of the latest
            # completion stamp attaining t_r (the registered arrival
            # dicts are stale while the batch is live — st carries the
            # current stamps).
            es = neg_inf
            if admit_times[0] != t_r and (pend or q._staged):
                tie = q._has_admit_tie(t_r)
                if not tie:
                    staged = q._staged
                    tie = bool(staged
                               and q._stage_clock + staged[0][1] == t_r)
                if tie:
                    sel = st.t == t_r
                    if sel.any():
                        lc = st.lc
                        es = t_r - (lc if isinstance(lc, float)
                                    else float(lc[sel].min()))
            bv = None
            if q._stats_words == 0 and q._ls_stall_start is None:
                # Empty stats view going into this pop: the settle will
                # cross the event engine's empty->non-empty transition
                # and needs the batch's earliest live arrival stamp (and
                # the schedule instant of its charge event) for the
                # empty-stall latch — the registered dicts are stale
                # while the batch is live.
                amin = float(st.t.min())
                lc = st.lc
                if isinstance(lc, float):
                    asched = amin - lc
                else:
                    asched = amin - float(lc[st.t == amin].max())
                bv = (amin, asched)
            # Keep-mask pop: the PEs stay parked across the batch, so
            # their request/arrival slots are left registered instead of
            # being removed and rewritten identically every word.
            q._pop_head_vector(t_r, mask, es, bv)
            st.start_word(t_r, head.words)
            plan.commit(st)
            st.finish_word(head.payload.timecat, head.words)
            q.vectorized_instructions += 1
            self.last_release = t_r
            if not items:
                break
            nxt_head = items[0]
            nxt_payload = nxt_head.payload
            if nxt_payload is None or nxt_head.mask != mask:
                break
            nxt_plan = nxt_payload._vec_plan
            if nxt_plan is None:
                nxt_plan = compile_plan(nxt_payload)
            if nxt_plan is False:
                break
            # Inline _head_release_time: the next head's mask equals the
            # batch mask, whose arrivals are the completion stamps in st.t.
            nxt = admit_times[0]
            t_max = float(st.t.max())
            if t_max > nxt:
                nxt = t_max
            if nxt < t_r:
                nxt = t_r
            if nxt > env.now and (q._space_waiters or not nxt < env.peek()):
                break  # a foreign heap event precedes this release
            if not nxt_plan.precheck(st):
                break
            plan = nxt_plan
            t_r = nxt
        # Publish the final completion stamps: between batch runs the
        # queue's release path reads arrivals via _head_release_time.
        t_list = st.t.tolist()
        lc = st.lc
        scheds = q._scheds
        if isinstance(lc, float):
            for j, s in enumerate(slots):
                arrivals[s] = t_list[j]
                scheds[s] = t_list[j] - lc
        else:
            lc_list = lc.tolist()
            for j, s in enumerate(slots):
                arrivals[s] = t_list[j]
                scheds[s] = t_list[j] - lc_list[j]
        self._live = (mask, slots, st, evs)

    def flush(self, q) -> None:
        """Deliver the live batch: write the vector state back into the
        scalar PEs and resume each one once with a ``(None, t)`` sentinel
        (everything is already accounted; the PE just rebases its local
        clock and streams on).  No-op without a live batch."""
        live = self._live
        if live is None:
            return
        self._live = None
        mask, slots, st, evs = live
        q.vectorized_batches += 1
        q.lockstep_batch_pes += len(slots)
        requests, arrivals, inline = q._requests, q._arrivals, q._inline_slots
        scheds = q._scheds
        for s in slots:
            # pop, not del: a fail-stopped PE's request is already
            # withdrawn; its stale sentinel below is absorbed harmlessly.
            requests.pop(s, None)
            arrivals.pop(s, None)
            scheds.pop(s, None)
            inline.discard(s)
        st.writeback()
        t_list = st.t.tolist()
        for j in range(len(slots)):
            _fire(evs[j], (None, t_list[j]))


def _fire(ev, value) -> None:
    """Local alias of :func:`repro.sim.lockstep.fire_event` (import-cycle
    free; keep in sync)."""
    ev._value = value
    ev._ok = True
    callbacks = ev.callbacks
    ev.callbacks = None
    if callbacks:
        for cb in callbacks:
            cb(ev)
