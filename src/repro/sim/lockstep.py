"""Batched lockstep execution for SIMD-space rendezvous.

The third engine tier.  The local-time fast path (:mod:`repro.sim.localtime`)
removed heap events for *private* charges, but the SIMD broadcast fetch
remained event-bound: every enabled PE flushed its local clock (one sleep
event) and parked on a per-slot request event that the Fetch Unit Queue's
release then succeeded (a second heap event per PE).  Two heap events per
instruction fetch per PE is the reason the fast path gained only ~1.1x on
SIMD while SERIAL gained 2.3x.

The lockstep engine exploits the very structure the paper measures: a
broadcast instruction completes at the *max over the enabled PEs* of its
data-dependent cost, so the release time of a queue item is a pure function
of already-known quantities — it can be *computed* instead of discovered by
event rendezvous:

* a PE requesting from the queue does not flush; it passes its bus-true
  **arrival stamp** (``env.now + local clock``) with the request and zeroes
  the local clock (:meth:`FetchUnitQueue.request_at`);
* the queue releases the head item at ``T_r = max(admit time, max of the
  mask's arrival stamps)`` — the exact instant the pure-event schedule
  would have assembled the rendezvous;
* delivery is batched: one **carrier** event fires at ``T_r`` and resumes
  every waiting PE synchronously, so a p-PE broadcast step costs one heap
  event instead of ~2p.

Everything that is not a queue rendezvous — network transfer-register
traffic, status/timer sampling, MIMD-space execution, mask changes,
fault-plan machinery — still goes through the local-time/event path
unchanged, access by access.  There is no modal "driver": the handoff
granularity is a single bus operation, so mixed workloads (S-MIMD barriers
between MIMD phases, SIMD blocks with network transfers inside) fall back
and re-enter naturally.

Set ``REPRO_LOCKSTEP=0`` to disable the lockstep tier (the machine then
runs on the local-time tier; ``REPRO_PURE_EVENTS=1`` disables both).  The
lockstep engine requires the fast path: with pure events requested, the
flag resolves to off regardless.

The equivalence contract is the same as the fast path's: cycle counts,
per-PE finish times and category totals, result matrices, queue and MC
statistics are bit-identical across all three tiers (see
``tests/test_lockstep_differential.py``).
"""

from __future__ import annotations

import os

#: Environment variable that disables the lockstep tier when set to a
#: falsy value ("0", "false", "no", "off").  Default: enabled.
LOCKSTEP_ENV = "REPRO_LOCKSTEP"

_FALSY = ("0", "false", "no", "off")


def resolve_lockstep(flag: bool | None, fast_path: bool) -> bool:
    """Resolve the lockstep setting: needs fast path; flag > env > on.

    ``fast_path`` is the *resolved* fast-path setting of the machine: the
    lockstep tier builds on local-time clocks (arrival stamps are bus-true
    times), so with pure events requested it is unconditionally off.
    """
    if not fast_path:
        return False
    if flag is not None:
        return bool(flag)
    return os.environ.get(LOCKSTEP_ENV, "").strip().lower() not in _FALSY


def fire_event(ev, value) -> None:
    """Deliver ``ev`` with ``value`` synchronously, bypassing the heap.

    The batched-delivery primitive: semantically ``ev.succeed(value)``
    followed immediately by the kernel processing it, without the heap
    round-trip.  Callers must be executing inside an event callback at the
    intended delivery time (the carrier pattern), so ``env.now`` is
    already correct.
    """
    ev._value = value
    ev._ok = True
    callbacks = ev.callbacks
    ev.callbacks = None
    if callbacks:
        for cb in callbacks:
            cb(ev)
