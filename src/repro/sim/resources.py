"""Synchronization resources built on the event kernel.

* :class:`Store` — a bounded FIFO buffer (models the Fetch Unit Queue and
  the network transfer registers, which are 1-deep stores).
* :class:`Gate` — a level-triggered condition processes can wait on.
* :class:`Rendezvous` — an auto-resetting barrier for a fixed party count
  (models "release the SIMD instruction only after *all* enabled PEs have
  issued a request").
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event


class Store:
    """Bounded FIFO of items with blocking ``put`` and ``get`` events.

    ``capacity`` may be ``None`` for an unbounded store.  Waiters are served
    in FIFO order; an item put into an empty store with pending getters goes
    to the oldest getter directly.
    """

    def __init__(
        self, env: Environment, capacity: int | None = None, name: str = ""
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"store capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self.items

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once ``item`` is in the store."""
        ev = self.env.event(name=f"put:{self.name}")
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self) -> Event:
        """Return an event that succeeds with the oldest item."""
        ev = self.env.event(name=f"get:{self.name}")
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self.is_full and not self._getters:
            return False
        self.put(item)
        return True

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending get; returns False if it already fired.

        The event is left untriggered forever — a process waiting on it
        stays parked (used to retire network movers at circuit teardown).
        """
        for pending in self._getters:
            if pending is event:
                self._getters.remove(pending)
                return True
        return False

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and not self.is_full:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed()
                progressed = True
            while self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progressed = True


class Gate:
    """A level-triggered condition: ``wait()`` passes only while open."""

    def __init__(self, env: Environment, is_open: bool = False, name: str = "") -> None:
        self.env = env
        self.name = name
        self._open = is_open
        self._waiters: deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        """Open the gate, releasing all current waiters."""
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def close(self) -> None:
        self._open = False

    def wait(self) -> Event:
        """Return an event that succeeds immediately if open, else on open."""
        ev = self.env.event(name=f"gate:{self.name}")
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev


class Rendezvous:
    """Auto-resetting barrier for ``parties`` participants.

    Each participant calls :meth:`arrive` and waits on the returned event.
    When the last of ``parties`` participants arrives, every waiter is
    released with the rendezvous generation number, and the barrier resets
    for the next round.  ``parties`` may be changed between rounds (the PASM
    Fetch Unit mask register does exactly this when PEs are enabled or
    disabled).
    """

    def __init__(self, env: Environment, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ValueError(f"rendezvous needs >= 1 party, got {parties}")
        self.env = env
        self.name = name
        self._parties = parties
        self._waiting: list[Event] = []
        self.generation = 0

    @property
    def parties(self) -> int:
        return self._parties

    @parties.setter
    def parties(self, value: int) -> None:
        if value < 1:
            raise ValueError(f"rendezvous needs >= 1 party, got {value}")
        if self._waiting and value <= len(self._waiting):
            raise SimulationError(
                "cannot shrink rendezvous below the number of already-"
                f"arrived parties ({len(self._waiting)})"
            )
        self._parties = value

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    def arrive(self) -> Event:
        """Register arrival; the event fires when the round completes."""
        ev = self.env.event(name=f"rendezvous:{self.name}")
        self._waiting.append(ev)
        if len(self._waiting) >= self._parties:
            waiters = self._waiting
            self._waiting = []
            gen = self.generation
            self.generation += 1
            for w in waiters:
                w.succeed(gen)
        return ev
