"""Shared content-addressed result store: sqlite-indexed, fleet-safe.

This is the storage layer under :class:`repro.exec.ResultCache`, built
to be shared by N concurrent ``pasm-serve`` instances (separate OS
processes, possibly separate users of one mount):

* **payloads stay plain files** — ``<root>/<version>/<hash>.json``,
  written atomically (temp file + ``os.replace``), so a reader never
  sees a torn entry and the on-disk layout stays debuggable with
  ``cat`` and byte-identical to the pre-store cache;
* **the index is sqlite** — ``<root>/store.db`` in WAL mode with a
  busy timeout and bounded lock retries, so concurrent writers from
  many processes serialize on the index without corrupting it;
* **recency is a column, not an atime** — every hit updates a
  ``last_access`` column, and size-capped LRU eviction orders by that
  column.  ``noatime``/``relatime`` mounts (i.e. every production
  filesystem) therefore cannot starve or scramble the eviction order;
  file ``st_atime`` is never consulted;
* **integrity is content-addressed** — each entry records the
  package version it was computed by and the SHA-256 of its payload;
  a version mismatch or digest mismatch is a miss, never stale data.

The index is advisory: losing ``store.db`` loses recency ordering, not
results.  Files unknown to the index (foreign junk, entries written by
an older cache, a rebuilt database) are still counted against the size
cap and evicted by file mtime as a fallback, so eviction tolerates
everything loads tolerate.

The default root honours ``$REPRO_STORE`` so a fleet can point every
instance at one shared location with a single variable.
"""

from __future__ import annotations

import json
import os
import shutil
import sqlite3
import threading
import time
from pathlib import Path

#: Environment variable naming the shared store root for a whole fleet.
STORE_ENV = "REPRO_STORE"

#: Index filename under the store root.
INDEX_DB = "store.db"

#: How long one sqlite operation waits on a writer before failing over
#: to the retry loop (seconds).
BUSY_TIMEOUT_S = 5.0

#: Bounded retries around ``database is locked`` — WAL plus the busy
#: timeout makes these rare, but a fleet-wide prune storm can still
#: exhaust a timeout window.
LOCK_RETRIES = 8

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    version      TEXT NOT NULL,
    key          TEXT NOT NULL,
    payload_sha256 TEXT,
    size         INTEGER NOT NULL,
    created      REAL NOT NULL,
    last_access  REAL NOT NULL,
    PRIMARY KEY (version, key)
);
CREATE INDEX IF NOT EXISTS entries_last_access ON entries (last_access);
"""


def default_store_root() -> str:
    """``$REPRO_STORE`` or the conventional ``.repro_cache``."""
    return os.environ.get(STORE_ENV) or ".repro_cache"


def _content_hash_of(obj) -> str:
    # Deferred: repro.exec.spec imports machine/faults layers; keep the
    # store importable from anywhere without dragging those in eagerly.
    from repro.exec.spec import content_hash_of

    return content_hash_of(obj)


class SharedStore:
    """One version's view of a shared content-addressed result store.

    Multiple :class:`SharedStore` objects — across threads, processes
    and package versions — may point at the same root; they share one
    sqlite index and one payload tree.  All methods are safe under
    that concurrency: the worst outcome of any race is a miss or a
    double-evict, never corruption.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 version: str = "0") -> None:
        if root is None:
            root = default_store_root()
        self.root = Path(root)
        self.version = str(version)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Paths
    @property
    def db_path(self) -> Path:
        return self.root / INDEX_DB

    @property
    def dir(self) -> Path:
        """The directory holding this version's entries."""
        return self.root / self.version

    def path_for(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    # ------------------------------------------------------------------
    # Index plumbing
    def _conn(self) -> sqlite3.Connection:
        """A per-process, per-thread connection (fork- and thread-safe)."""
        local = self._local
        if getattr(local, "pid", None) != os.getpid() or \
                getattr(local, "conn", None) is None:
            self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.db_path, timeout=BUSY_TIMEOUT_S)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(BUSY_TIMEOUT_S * 1000)}")
            conn.executescript(_SCHEMA)
            local.conn, local.pid = conn, os.getpid()
        return local.conn

    def _retry(self, op):
        """Run ``op(conn)`` with bounded retries on a locked database."""
        for attempt in range(LOCK_RETRIES + 1):
            try:
                conn = self._conn()
                with conn:  # one transaction per op
                    return op(conn)
            except sqlite3.OperationalError as exc:
                text = str(exc).lower()
                if "locked" not in text and "busy" not in text:
                    raise
                if attempt == LOCK_RETRIES:
                    raise
                time.sleep(0.01 * (attempt + 1))

    # ------------------------------------------------------------------
    # Entries
    def put(self, key: str, payload: dict, *,
            spec_doc: dict | None = None) -> Path:
        """Atomically persist a payload and index it.

        Two processes racing to publish the same key both write a
        complete temp file and ``os.replace`` it into place — last
        writer wins and the loser's bytes are identical in meaning, so
        readers always see one intact entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": self.version,
            "payload": payload,
            "payload_sha256": _content_hash_of(payload),
        }
        if spec_doc is not None:
            entry["spec"] = spec_doc
        data = json.dumps(entry, sort_keys=True, indent=1).encode("utf-8")
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}"
                             f".{threading.get_ident()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        now = time.time()
        size = len(data)
        self._retry(lambda conn: conn.execute(
            "INSERT INTO entries (version, key, payload_sha256, size,"
            " created, last_access) VALUES (?, ?, ?, ?, ?, ?)"
            " ON CONFLICT (version, key) DO UPDATE SET"
            " payload_sha256=excluded.payload_sha256,"
            " size=excluded.size, last_access=excluded.last_access",
            (self.version, key, entry["payload_sha256"], size, now, now),
        ))
        return path

    def get(self, key: str) -> dict | None:
        """The entry document for a key, or ``None`` on any miss.

        A miss is anything less than a fully intact entry of this
        store's version: missing/corrupt file, foreign version, or a
        ``payload_sha256`` that no longer matches its payload (bit
        rot, truncated-but-parseable writes, chaos injection).  Hits
        refresh the ``last_access`` column — the LRU signal — with a
        best-effort write (a lock storm must never fail a read).
        """
        try:
            entry = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("version") != self.version:
            return None
        payload = entry.get("payload")
        digest = entry.get("payload_sha256")
        if digest is not None and digest != _content_hash_of(payload):
            return None
        try:
            self.touch(key)
        except sqlite3.Error:
            pass
        return entry

    def touch(self, key: str, when: float | None = None) -> None:
        """Refresh (or create) the recency record of one entry.

        Upserts so that files which predate the index — or survived an
        index rebuild — regain a recency record on first hit instead
        of being stuck in the mtime-fallback tier forever.
        """
        now = time.time() if when is None else when
        size = 0
        try:
            size = self.path_for(key).stat().st_size
        except OSError:
            pass
        self._retry(lambda conn: conn.execute(
            "INSERT INTO entries (version, key, size, created, last_access)"
            " VALUES (?, ?, ?, ?, ?)"
            " ON CONFLICT (version, key) DO UPDATE SET"
            " last_access=excluded.last_access",
            (self.version, key, size, now, now),
        ))

    def set_last_access(self, key: str, when: float) -> None:
        """Pin an entry's recency to an exact instant (tests, tools)."""
        self.touch(key, when)

    def last_access(self, key: str) -> float | None:
        row = self._retry(lambda conn: conn.execute(
            "SELECT last_access FROM entries WHERE version=? AND key=?",
            (self.version, key),
        ).fetchone())
        return row[0] if row else None

    # ------------------------------------------------------------------
    # Size bounding
    def _files(self) -> list[tuple[Path, int, float]]:
        """``(path, size, mtime)`` of every entry file under the root."""
        out = []
        try:
            paths = list(self.root.rglob("*.json"))
        except OSError:
            return []
        for path in paths:
            try:
                st = path.stat()
            except OSError:
                continue  # deleted by a concurrent pruner
            out.append((path, st.st_size, st.st_mtime))
        return out

    def size_bytes(self) -> int:
        """Total bytes of entry files under the root (all versions)."""
        return sum(size for _, size, _ in self._files())

    def _index_recency(self) -> dict[str, float]:
        """``relpath -> last_access`` for every indexed entry."""
        try:
            rows = self._retry(lambda conn: conn.execute(
                "SELECT version, key, last_access FROM entries"
            ).fetchall())
        except sqlite3.Error:
            return {}
        return {f"{version}/{key}.json": at for version, key, at in rows}

    def prune(self, cap_bytes: int) -> int:
        """Evict least-recently-accessed entries until under the cap.

        Ordering comes from the index's ``last_access`` column —
        **never** from file atimes — with file mtime as the fallback
        tier for files the index does not know (foreign junk, pre-index
        entries).  Races with concurrent pruners and loaders are
        tolerated the same way loads tolerate them: skip, never fail.
        """
        files = self._files()
        total = sum(size for _, size, _ in files)
        if total <= cap_bytes:
            return 0
        recency = self._index_recency()
        scored = []
        for path, size, mtime in files:
            try:
                rel = path.relative_to(self.root).as_posix()
            except ValueError:
                rel = path.name
            scored.append((recency.get(rel, mtime), str(path), path, size))
        evicted = 0
        # Oldest access first; path as tie-break keeps eviction stable.
        for _, _, path, size in sorted(scored, key=lambda e: (e[0], e[1])):
            if total <= cap_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue  # raced with another pruner: already gone
            total -= size
            evicted += 1
            self._forget(path)
        return evicted

    def _forget(self, path: Path) -> None:
        """Drop the index row of an evicted file (best effort)."""
        try:
            rel = path.relative_to(self.root)
        except ValueError:
            return
        if len(rel.parts) != 2:
            return  # foreign file outside the <version>/<key>.json layout
        version, name = rel.parts
        try:
            self._retry(lambda conn: conn.execute(
                "DELETE FROM entries WHERE version=? AND key=?",
                (version, name.removesuffix(".json")),
            ))
        except sqlite3.Error:
            pass

    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of entry files stored for this version."""
        try:
            return sum(1 for _ in self.dir.glob("*.json"))
        except OSError:
            return 0

    def clear(self) -> None:
        """Drop every entry (files and index rows) of this version."""
        shutil.rmtree(self.dir, ignore_errors=True)
        try:
            self._retry(lambda conn: conn.execute(
                "DELETE FROM entries WHERE version=?", (self.version,)
            ))
        except sqlite3.Error:
            pass

    def close(self) -> None:
        """Close this thread's index connection (tests, teardown)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
