"""Execution engine: parallel, cached scheduling of simulation jobs.

Every timed simulation the experiment layer needs — a ``(mode, n, p,
added_multiplies)`` matmul run on either substrate, a Table 1
instruction-rate measurement — is described by a :class:`SimJobSpec`
with a stable content hash.  Independent specs are embarrassingly
parallel (the decoupled-stream property the paper itself measures), so
the :class:`ExecutionEngine` fans them out across a process pool
(``--jobs N`` / ``$REPRO_JOBS``), memoises results in an on-disk
:class:`ResultCache` keyed by job hash + package version, and keeps
cache-hit/wall-time instrumentation (:class:`ExecStats`, the ``--stats``
table).

Layering: this package sits *below* :mod:`repro.core` (the study facade
routes through it) and above the substrates (:mod:`repro.machine`,
:mod:`repro.timing_model`); it must never import :mod:`repro.core` or
:mod:`repro.experiments`.
"""

from repro.errors import ExecError
from repro.exec.cache import (
    CACHE_MAX_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    resolve_cache_max_bytes,
)
from repro.exec.engine import ExecStats, ExecutionEngine
from repro.exec.jobs import (
    execute_job,
    faultsweep_spec,
    matmul_spec,
    mips_spec,
    timed_execute,
    traced_execute,
)
from repro.exec.pool import JOBS_ENV, resolve_jobs, run_parallel
from repro.exec.spec import SimJobSpec, canonical_json, content_hash_of
from repro.exec.store import STORE_ENV, SharedStore, default_store_root

__all__ = [
    "CACHE_MAX_ENV",
    "DEFAULT_CACHE_DIR",
    "ExecError",
    "ExecStats",
    "ExecutionEngine",
    "JOBS_ENV",
    "ResultCache",
    "STORE_ENV",
    "SharedStore",
    "SimJobSpec",
    "canonical_json",
    "content_hash_of",
    "default_store_root",
    "execute_job",
    "faultsweep_spec",
    "matmul_spec",
    "mips_spec",
    "resolve_cache_max_bytes",
    "resolve_jobs",
    "run_parallel",
    "timed_execute",
    "traced_execute",
]
