"""Process-pool scheduler: fan independent jobs out across cores.

Results come back in submission order regardless of completion order, so
pooled execution is a drop-in for the serial loop.  A worker crash (e.g.
a killed process taking the whole pool down) fails every in-flight
future; crashed/failed jobs are resubmitted to a fresh pool for as long
as attempts keep completing *something*, and only consecutive stalled
attempts surface as a structured :class:`~repro.errors.ExecError`.

The worker entry point runs :func:`repro.exec.jobs.traced_execute` — the
same function the serial path calls — so scheduling never changes
results.  For untraced specs (the default) it is exactly
``timed_execute``; a spec carrying a trace context additionally returns
the per-PE simulated-time events recorded inside the worker.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.errors import ConfigurationError, ExecError
from repro.exec.jobs import traced_execute
from repro.exec.spec import SimJobSpec
from repro.faults.chaos import maybe_crash_worker

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Resolve a ``--jobs`` value: explicit > $REPRO_JOBS > all cores.

    ``0`` or ``"auto"`` means one job per available core; that is also
    the default when neither an explicit count nor ``$REPRO_JOBS`` is
    given — independent simulation jobs have no reason to leave cores
    idle.  Set ``REPRO_JOBS=1`` to force serial in-process execution.

    Invalid values raise a structured error that names its source: a
    bad explicit argument is a :class:`~repro.errors.ConfigurationError`;
    a bad ``$REPRO_JOBS`` is an :class:`~repro.errors.ExecError` whose
    message names the environment variable — an env-var typo must never
    surface as a bare ``ValueError`` traceback.
    """
    from_env = False
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            jobs, from_env = env, True
        else:
            jobs = os.cpu_count() or 1
    if jobs in (0, "0", "auto"):
        jobs = os.cpu_count() or 1

    def _reject(problem: str):
        if from_env:
            raise ExecError(
                f"invalid {JOBS_ENV}={jobs!r}: {problem} "
                f"(unset {JOBS_ENV}, or use an integer >= 1, "
                f"or 0/'auto' for one per core)"
            ) from None
        raise ConfigurationError(f"invalid job count {jobs!r}: {problem}") \
            from None

    try:
        count = int(jobs)
    except (TypeError, ValueError):
        _reject("not an integer")
    if count < 1:
        _reject("job count must be >= 1")
    return count


def _worker(spec: SimJobSpec):
    """Pool worker entry point (top-level so it pickles).

    Returns ``(payload, wall)`` for untraced specs, ``(payload, wall,
    events)`` for traced ones — see :func:`repro.exec.jobs.traced_execute`.
    """
    maybe_crash_worker(spec.content_hash)  # no-op unless $REPRO_CHAOS armed
    return traced_execute(spec)


def run_parallel(
    specs: Sequence[SimJobSpec],
    *,
    jobs: int,
    retries: int = 1,
    on_retry: Callable[[Sequence[SimJobSpec]], None] | None = None,
) -> list[tuple[dict, float]]:
    """Execute specs across a process pool; deterministic result order.

    Returns ``[(payload, wall_seconds), ...]`` aligned with ``specs``.
    Failed jobs (worker crashes included) are resubmitted to a fresh
    pool as long as each attempt makes *progress* (completes at least
    one job) — one crashed worker breaks the whole pool and fails every
    pending future, so a fixed retry count would starve batches larger
    than the pool.  A stalled attempt (no job completed) can still have
    made invisible progress: the break fails sibling futures whose work
    finished but whose results were not yet drained, and kills workers
    that never reached their job (so e.g. a once-only injected fault was
    consumed without the parent seeing it).  The stall budget therefore
    grows by one per *sibling* — only after ``retries + len(pending) -
    1`` consecutive stalled attempts does a structured ExecError
    surface; a lone crashing job still fails after ``retries``
    resubmissions.  ``on_retry`` is called with the specs of each
    resubmitted batch (for the engine's instrumentation).
    """
    specs = list(specs)
    results: list[tuple[dict, float] | None] = [None] * len(specs)
    pending = list(enumerate(specs))
    attempt = 0
    stalled = 0  # consecutive attempts that completed nothing
    while pending:
        attempt += 1
        if attempt > 1 and on_retry is not None:
            on_retry([spec for _, spec in pending])
        failures: list[tuple[int, SimJobSpec, BaseException]] = []
        executor = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
        try:
            futures = [
                (i, spec, executor.submit(_worker, spec))
                for i, spec in pending
            ]
            for i, spec, future in futures:
                try:
                    results[i] = future.result()
                except Exception as exc:  # incl. BrokenProcessPool
                    failures.append((i, spec, exc))
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        stalled = stalled + 1 if len(failures) == len(pending) else 0
        pending = [(i, spec) for i, spec, _ in failures]
        if pending and stalled > retries + len(pending) - 1:
            index, spec, exc = failures[0]
            raise ExecError(
                f"{len(failures)} job(s) failed with no progress over "
                f"{stalled} consecutive attempts ({attempt} total); "
                f"first: {spec.label()} ({spec.content_hash[:12]}): {exc!r}",
                job=spec.to_dict(),
                attempts=attempt,
                cause=exc,
            )
    return results  # type: ignore[return-value]
